//! Inferring the HPU running parameters from a probe, then tuning with them
//! (Section 3.3 of the paper end to end).
//!
//! ```bash
//! cargo run -p crowdtune-bench --example parameter_inference
//! ```
//!
//! A probe campaign publishes trivially-fast tasks at several prices on the
//! simulated market; the acceptance epochs give maximum-likelihood estimates
//! of the on-hold rate per price; a least-squares fit of those estimates
//! recovers the Linearity Hypothesis parameters, which are then used to tune
//! a real job.

use crowdtune_core::prelude::*;
use crowdtune_market::{MarketConfig, MarketSimulator};
use std::sync::Arc;

fn main() {
    // The "true" market the probe is sampling — unknown to the requester.
    let true_market = LinearRate::new(0.8, 1.5).expect("valid model");
    println!("hidden market      : {}", RateModel::describe(&true_market));

    // 1. Probe: at each price publish one task with many sequential
    //    repetitions and no processing phase, so the acceptance epochs form a
    //    Poisson arrival trace at that price's rate.
    let plan = ProbePlan::new(vec![1, 3, 5, 8, 12], 40).expect("valid plan");
    println!(
        "probe plan         : {} prices × {} tasks = {} samples, {} units",
        plan.prices.len(),
        plan.tasks_per_price,
        plan.total_tasks(),
        plan.total_cost()
    );
    let mut observations = Vec::new();
    for (index, &price) in plan.prices.iter().enumerate() {
        let mut probe_tasks = TaskSet::new();
        let ty = probe_tasks.add_type("probe", 1000.0).expect("valid type");
        probe_tasks
            .add_task(ty, plan.tasks_per_price)
            .expect("valid task");
        let allocation =
            Allocation::uniform(&probe_tasks.repetition_counts(), Payment::units(price));
        let simulator = MarketSimulator::new(
            MarketConfig::independent(900 + index as u64).without_processing(),
        );
        let report = simulator
            .run(&probe_tasks, &allocation, &true_market)
            .expect("probe runs");
        observations.push(PriceObservation::new(
            price,
            report.acceptance_epochs(),
            report.processing_latencies(),
        ));
    }

    // 2. Infer the per-price rates and fit the Linearity Hypothesis.
    let campaign = ProbeCampaign::new(observations);
    for point in campaign.price_rate_points().expect("rates estimated") {
        println!(
            "  price {:>4.0} units → λ̂o = {:.3}",
            point.price, point.rate
        );
    }
    let fit = campaign.fit_linearity().expect("fit runs");
    println!(
        "fitted model       : λo(c) = {:.3}·c + {:.3} (R² = {:.3}, hypothesis {})",
        fit.k,
        fit.b,
        fit.r_squared,
        if fit.supports_hypothesis(0.9) {
            "supported"
        } else {
            "rejected"
        }
    );

    // 3. Tune a real job with the fitted model and compare the prediction
    //    against the true market.
    let mut job = TaskSet::new();
    let vote = job.add_type("comparison", 2.0).expect("valid type");
    job.add_tasks(vote, 3, 20).expect("valid tasks");
    job.add_tasks(vote, 5, 20).expect("valid tasks");

    let fitted_model: Arc<dyn RateModel> =
        Arc::new(fit.to_rate_model().expect("fitted model is monotone"));
    let tuner = Tuner::new(fitted_model);
    let plan = tuner.plan(job.clone(), Budget::units(800)).expect("tunes");
    println!(
        "tuned with fit     : strategy {}, predicted latency {:.2}",
        plan.result.strategy, plan.expected_latency
    );

    // Evaluate the chosen allocation under the *true* market.
    let estimator = JobLatencyEstimator::new(&job, &true_market);
    let realized = estimator
        .analytic_expected_latency(&plan.result.allocation, PhaseSelection::Both)
        .expect("estimate succeeds");
    println!(
        "under true market  : {:.2} expected latency ({:+.1}% vs prediction)",
        realized,
        100.0 * (realized - plan.expected_latency) / plan.expected_latency
    );
}

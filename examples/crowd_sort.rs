//! Crowd-powered sorting (the paper's Motivation Example 1, scaled up).
//!
//! ```bash
//! cargo run -p crowdtune-bench --example crowd_sort
//! ```
//!
//! Eight photographs must be ranked by visual appeal. The crowd-DB planner
//! decomposes the query into pairwise comparison votes (3 answers each), the
//! tuner allocates the budget, the market simulator measures wall-clock
//! latency, and the noisy crowd oracle provides the votes that are aggregated
//! back into a ranking.

use crowdtune_core::prelude::*;
use crowdtune_crowd_db::executor::{CrowdExecutor, ExecutorConfig};
use crowdtune_crowd_db::item::ItemSet;
use crowdtune_crowd_db::operators::CrowdSort;
use crowdtune_crowd_db::oracle::OracleConfig;
use std::sync::Arc;

fn main() {
    // Items with a latent "appeal" score the crowd observes through noise.
    let items = ItemSet::from_scores(vec![
        ("sunset over the bay", 9.1),
        ("blurry selfie", 1.3),
        ("mountain panorama", 7.8),
        ("cat on a keyboard", 6.2),
        ("empty parking lot", 2.4),
        ("street food market", 5.5),
        ("rainbow after rain", 8.4),
        ("out-of-focus tree", 3.0),
    ]);

    let config = ExecutorConfig {
        oracle: OracleConfig {
            reliability: 2.0,
            seed: 11,
        },
        ..ExecutorConfig::default()
    };
    let executor = CrowdExecutor::new(Arc::new(LinearRate::unit_slope()), config);

    let sort = CrowdSort::new(3).expect("three answers per comparison");
    let budget = Budget::units(400);
    let outcome = executor
        .run_sort(&items, sort, budget)
        .expect("the budget covers the plan");

    println!("strategy           : {}", outcome.strategy);
    println!(
        "budget spent       : {} / {} units",
        outcome.stats.spent_units,
        budget.as_units()
    );
    println!(
        "expected latency   : {:.2} time units",
        outcome.stats.expected_latency
    );
    println!(
        "simulated latency  : {:.2} time units",
        outcome.stats.simulated_latency
    );
    println!("\ncrowd ranking (best first):");
    for (position, id) in outcome.result.iter().enumerate() {
        let item = items.get(*id).expect("known item");
        println!("  {:>2}. {}", position + 1, item.label);
    }

    let agreement = CrowdSort::ranking_agreement(&outcome.result, &items.ground_truth_ranking());
    println!(
        "\nagreement with the latent ground truth: {:.0}% of item pairs ordered correctly",
        agreement * 100.0
    );
}

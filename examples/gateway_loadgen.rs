//! Gateway end-to-end smoke + load generator: the whole stack over a real
//! network boundary.
//!
//! 1. Start a `TuningService` behind a `Gateway` on an ephemeral loopback
//!    port, plus an identically configured in-process reference service.
//! 2. **Correctness pass** — replay a mixed EA/RA/HA multi-tenant catalogue
//!    synchronously (`POST /v1/jobs?wait=1`) and assert every HTTP-served
//!    plan is **bit-identical** (as rendered JSON) to an in-process `submit`
//!    of the same `JobRequestWire`; also drive the async submit → poll path
//!    and the `/v1/metrics` + `/healthz` endpoints.
//! 3. **Admission pass** — flood a tiny-admission service and require the
//!    per-tenant rejection to surface as HTTP 429.
//! 4. **Load pass** — multi-threaded keep-alive clients replay the
//!    catalogue over real sockets; medians and throughput go to
//!    `BENCH_gateway.json` (override with `BENCH_GATEWAY_JSON`), including
//!    `inprocess_vs_http_p50_ratio`, the in-run overhead ratio the CI
//!    regression guard watches.
//! 5. **Endpoint pass** — a single keep-alive client measures p50/p90/p99
//!    for each GET surface (`/v1/metrics` in both formats, `/v1/jobs/{id}`,
//!    `/v1/debug/slowest`, `/healthz`); the per-endpoint rows land in the
//!    bench JSON with their in-run `p99_vs_p50_ratio` (tail health, guarded
//!    with a ceiling by the CI regression script).
//! 6. **Overhead pass** — two fresh in-process services, telemetry on vs
//!    off, alternating warm cache-hit submits; `telemetry_off_vs_on_p50_ratio`
//!    (~1.0, guarded with a floor) is the cost of the per-job tracing and
//!    histogram instrumentation on the hottest path. A second pass repeats
//!    the pattern for causal span recording (tracing on vs off, telemetry on
//!    in both); `tracing_off_vs_on_p50_ratio` (~1.0, floor-guarded at 1.20x)
//!    proves the mostly-unsampled span path stays off the hot path. The
//!    correctness pass also submits one job with a W3C `traceparent` header
//!    and asserts the echoed header keeps the caller's trace id and the span
//!    tree is queryable at `GET /v1/debug/traces/{trace_id}`.
//! 7. **Fault-layer pass** — same in-run pattern over two durable services,
//!    chaos write-fault layer absent vs installed-but-disarmed;
//!    `fault_layer_off_vs_on_p50_ratio` (~1.0, guarded with a floor) proves
//!    fault injection support costs nothing on the fault-free hot path.
//! 8. **Idle-herd + open-loop pass** — parks thousands of idle keep-alive
//!    connections on the reactor (sized to the process fd limit), verifies
//!    the `connections_open` gauge reports the crowd, then drives
//!    **open-loop** arrivals (requests fire on a fixed schedule, latency
//!    measured from the scheduled send time — coordinated-omission-safe)
//!    from fresh connections while the herd stays parked. Emits
//!    `concurrent_connections`, `open_loop_http_p50_us`,
//!    `open_loop_http_throughput_rps`, and two in-run guard ratios:
//!    `idle_herd_held_ratio` (herd still registered after the pass, floor)
//!    and `open_loop_p50_vs_closed_p50_ratio` (parked herd must not tax
//!    latency, ceiling).
//!
//! Any plan byte-drift, non-2xx happy-path response, or missing 429 exits
//! non-zero. `CROWDTUNE_BENCH_QUICK=1` shrinks thread/round counts for CI.
//!
//! Run with `cargo run --release --example gateway_loadgen`.

use crowdtune_chaos::ChaosWriteFault;
use crowdtune_core::rate::{LinearRate, LogRate, RateSpec};
use crowdtune_core::task::TaskGroupSpec;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_gateway::{Gateway, GatewayConfig, JobRequestWire};
use crowdtune_serve::{AdmissionPolicy, ServiceConfig, StoreOptions, TuningService, WriteFault};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Minimal HTTP client (std-only, keep-alive)
// ---------------------------------------------------------------------------

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

struct HttpResponse {
    status: u16,
    traceparent: Option<String>,
    body: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to gateway");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> HttpResponse {
        self.request_with(method, target, &[], body)
    }

    fn request_with(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> HttpResponse {
        let mut text = format!("{method} {target} HTTP/1.1\r\nHost: loadgen\r\n");
        for (name, value) in headers {
            text.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            text.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        text.push_str("\r\n");
        if let Some(body) = body {
            text.push_str(body);
        }
        self.stream
            .write_all(text.as_bytes())
            .expect("send request");
        self.read_response()
    }

    fn read_response(&mut self) -> HttpResponse {
        let mut status_line = String::new();
        let n = self
            .reader
            .read_line(&mut status_line)
            .expect("status line");
        assert!(n > 0, "connection closed before a response");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        let mut traceparent = None;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content length value");
                } else if name.eq_ignore_ascii_case("traceparent") {
                    traceparent = Some(value.trim().to_owned());
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("response body");
        HttpResponse {
            status,
            traceparent,
            body: String::from_utf8(body).expect("utf-8 body"),
        }
    }
}

fn json_field<'v>(value: &'v Value, name: &str) -> &'v Value {
    value.field(name).unwrap_or_else(|e| panic!("{e}"))
}

fn json_str(value: &Value) -> &str {
    match value {
        Value::Str(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Workload catalogue: mixed EA / RA / HA tenants
// ---------------------------------------------------------------------------

fn group(name: &str, rate: f64, tasks: u64, repetitions: u32) -> TaskGroupSpec {
    TaskGroupSpec {
        name: name.to_owned(),
        processing_rate: rate,
        tasks,
        repetitions,
    }
}

/// The replayed catalogue: per tenant, Scenario I (EA), II (RA budget
/// ladder — exercises family reuse) and III (HA) jobs, plus a non-linear
/// rate model. Deliberately includes exact repeats (cache hits).
fn catalogue() -> Vec<JobRequestWire> {
    let linear = RateSpec::Linear(LinearRate::new(1.5, 0.5).unwrap());
    let steep = RateSpec::Linear(LinearRate::steep());
    let log = RateSpec::Log(LogRate::new(2.0).unwrap());
    let mut jobs = Vec::new();
    // EA tenant: homogeneous type, uniform repetitions (Scenario I).
    jobs.push(JobRequestWire {
        tenant: "ea-tenant".to_owned(),
        market: None,
        groups: vec![group("filter", 2.5, 8, 3)],
        budget: 60,
        rate: linear.clone(),
        strategy: StrategyChoice::Auto,
    });
    // RA tenant: one workload family across a budget ladder (Scenario II).
    for budget in [240u64, 120, 400, 240] {
        jobs.push(JobRequestWire {
            tenant: "ra-tenant".to_owned(),
            market: None,
            groups: vec![group("vote", 2.0, 5, 3), group("vote", 2.0, 5, 5)],
            budget,
            rate: linear.clone(),
            strategy: StrategyChoice::Auto,
        });
    }
    // HA tenant: heterogeneous difficulty (Scenario III).
    jobs.push(JobRequestWire {
        tenant: "ha-tenant".to_owned(),
        market: None,
        groups: vec![group("easy", 3.0, 4, 3), group("hard", 1.0, 4, 5)],
        budget: 160,
        rate: steep,
        strategy: StrategyChoice::Auto,
    });
    // Non-linear belief + forced RA override.
    jobs.push(JobRequestWire {
        tenant: "ra-tenant".to_owned(),
        market: None,
        groups: vec![group("vote", 2.0, 5, 3), group("vote", 2.0, 5, 5)],
        budget: 180,
        rate: log,
        strategy: StrategyChoice::RepetitionAlgorithm,
    });
    // Exact repeat of the EA job from a different tenant: cache hit.
    jobs.push(JobRequestWire {
        tenant: "ea-tenant-2".to_owned(),
        market: None,
        groups: vec![group("filter", 2.5, 8, 3)],
        budget: 60,
        rate: linear,
        strategy: StrategyChoice::Auto,
    });
    jobs
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Pulls the value of `name{labels}` out of a Prometheus text exposition.
fn prom_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let (metric, value) = line.rsplit_once(' ')?;
        (metric == name).then(|| value.parse().ok())?
    })
}

/// This process's soft open-files limit: the binding constraint on the
/// idle-herd size (client and server ends of every held connection live in
/// this one process, so each costs two descriptors).
fn open_files_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .unwrap_or_default()
        .lines()
        .find(|line| line.starts_with("Max open files"))
        .and_then(|line| line.split_whitespace().nth(3))
        .and_then(|soft| soft.parse().ok())
        .unwrap_or(1024)
}

fn main() {
    let quick = std::env::var("CROWDTUNE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut failures = 0u32;

    let service_config = ServiceConfig::default();
    let service = Arc::new(TuningService::start(service_config));
    let reference = TuningService::start(service_config);
    let gateway = Gateway::start(
        service.clone(),
        "127.0.0.1:0",
        GatewayConfig {
            // The idle-herd pass parks connections across several measurement
            // phases; the default 5s idle reaper would cull them mid-pass.
            keep_alive_timeout: Duration::from_secs(120),
            max_connections: 16_384,
            ..GatewayConfig::default()
        },
    )
    .expect("bind gateway");
    let addr = gateway.local_addr();
    println!("gateway_loadgen: serving on {addr} (quick={quick})");

    let jobs = catalogue();

    // -- Correctness pass: sync submits must be bit-identical to in-process.
    let mut client = Client::connect(addr);
    for (index, wire) in jobs.iter().enumerate() {
        let body = serde_json::to_string(wire).expect("serialize wire request");
        let response = client.request("POST", "/v1/jobs?wait=1", Some(&body));
        if response.status != 200 {
            eprintln!(
                "FAIL: job {index} answered {} on the happy path: {}",
                response.status, response.body
            );
            failures += 1;
            continue;
        }
        let json = serde_json::parse_value_str(&response.body).expect("response JSON");
        let source = json_str(json_field(&json, "source")).to_owned();
        let http_plan = serde_json::to_string(json_field(&json, "plan")).expect("render plan");
        let in_process = reference
            .tune(wire.to_request(1_000_000).expect("wire converts"))
            .expect("in-process submit");
        let reference_plan =
            serde_json::to_string(&*in_process.plan).expect("render reference plan");
        if http_plan != reference_plan {
            eprintln!(
                "FAIL: job {index} (tenant {}, budget {}) drifted over HTTP\n  http: {http_plan}\n  ref:  {reference_plan}",
                wire.tenant, wire.budget
            );
            failures += 1;
        } else {
            println!(
                "job {index:>2}: {:<12} budget {:>4} -> {source:<6} bit-identical over HTTP",
                wire.tenant, wire.budget
            );
        }
    }

    // -- Async path: submit, poll to completion, re-poll the retained result.
    let async_wire = &jobs[1];
    let body = serde_json::to_string(async_wire).expect("serialize wire request");
    let submitted = client.request("POST", "/v1/jobs", Some(&body));
    if submitted.status != 202 {
        eprintln!("FAIL: async submit answered {}", submitted.status);
        failures += 1;
    } else {
        let json = serde_json::parse_value_str(&submitted.body).expect("submit JSON");
        let job_id = match json_field(&json, "job_id") {
            Value::I64(v) => *v as u64,
            Value::U64(v) => *v,
            other => panic!("job_id not an integer: {other:?}"),
        };
        let target = format!("/v1/jobs/{job_id}");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let polled = client.request("GET", &target, None);
            let json = serde_json::parse_value_str(&polled.body).expect("poll JSON");
            match json_str(json_field(&json, "status")) {
                "pending" if Instant::now() < deadline => continue,
                "done" => {
                    println!("async job {job_id}: done via poll");
                    break;
                }
                other => {
                    eprintln!("FAIL: async job {job_id} ended as {other}");
                    failures += 1;
                    break;
                }
            }
        }
    }

    // -- Health + metrics surfaces.
    let health = client.request("GET", "/healthz", None);
    let metrics = client.request("GET", "/v1/metrics", None);
    if health.status != 200 || metrics.status != 200 {
        eprintln!(
            "FAIL: health/metrics answered {}/{}",
            health.status, metrics.status
        );
        failures += 1;
    } else if !metrics.body.contains("cache_hits") {
        eprintln!("FAIL: metrics body lacks counters: {}", metrics.body);
        failures += 1;
    }

    // -- Tracing pass: a sampled W3C traceparent joins the submit to the
    // caller's trace, the response echoes the gateway's root span under the
    // same trace id, and the span tree is queryable by that id.
    let trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
    let sent_traceparent = format!("00-{trace_id}-00f067aa0ba902b7-01");
    let body = serde_json::to_string(&jobs[0]).expect("serialize wire request");
    let traced = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("traceparent", sent_traceparent.as_str())],
        Some(&body),
    );
    if traced.status != 200 {
        eprintln!("FAIL: traced submit answered {}", traced.status);
        failures += 1;
    }
    match &traced.traceparent {
        Some(echo) if echo.starts_with(&format!("00-{trace_id}-")) => {
            println!("traceparent echoed under the caller's trace id: {echo}");
        }
        other => {
            eprintln!("FAIL: traced submit echoed {other:?}, want trace id {trace_id}");
            failures += 1;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let tree = client.request("GET", &format!("/v1/debug/traces/{trace_id}"), None);
        if tree.status == 200 {
            let json = serde_json::parse_value_str(&tree.body).expect("trace tree JSON");
            let spans = match json_field(&json, "spans") {
                Value::Arr(spans) => spans.len(),
                other => panic!("spans is not an array: {other:?}"),
            };
            println!("trace {trace_id}: {spans}-span tree queryable over the socket");
            if spans < 4 {
                eprintln!("FAIL: traced submit produced only {spans} spans");
                failures += 1;
            }
            break;
        }
        if Instant::now() >= deadline {
            eprintln!("FAIL: trace {trace_id} never reached the span store");
            failures += 1;
            break;
        }
        std::thread::yield_now();
    }
    drop(client);

    // -- Admission pass: a tiny-admission service must answer 429.
    {
        let tiny = Arc::new(TuningService::start(ServiceConfig {
            workers: 1,
            admission: AdmissionPolicy {
                max_pending: 64,
                max_pending_per_tenant: 1,
            },
            ..ServiceConfig::default()
        }));
        let tiny_gateway = Gateway::start(tiny, "127.0.0.1:0", GatewayConfig::default())
            .expect("bind tiny gateway");
        let mut client = Client::connect(tiny_gateway.local_addr());
        let mut saw_429 = false;
        for budget in 0..128u64 {
            let wire = JobRequestWire {
                tenant: "flood".to_owned(),
                market: None,
                groups: vec![group("vote", 2.0, 10, 3), group("vote", 2.0, 10, 5)],
                budget: 4000 + budget,
                rate: RateSpec::Linear(LinearRate::unit_slope()),
                strategy: StrategyChoice::Auto,
            };
            let body = serde_json::to_string(&wire).expect("serialize flood job");
            let response = client.request("POST", "/v1/jobs", Some(&body));
            match response.status {
                202 => continue,
                429 => {
                    saw_429 = true;
                    break;
                }
                other => {
                    eprintln!("FAIL: flood answered {other}: {}", response.body);
                    failures += 1;
                    break;
                }
            }
        }
        if saw_429 {
            println!("admission: per-tenant rejection surfaced as 429");
        } else {
            eprintln!("FAIL: flood never observed a 429");
            failures += 1;
        }
        drop(client);
        tiny_gateway.shutdown();
    }

    // -- Load pass: multi-threaded keep-alive clients, wait-mode submits.
    let threads = if quick { 4 } else { 8 };
    let rounds = if quick { 25 } else { 250 };
    let bodies: Arc<Vec<String>> = Arc::new(
        jobs.iter()
            .map(|wire| serde_json::to_string(wire).expect("serialize wire request"))
            .collect(),
    );
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let bodies = bodies.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut samples = Vec::with_capacity(rounds * bodies.len());
                    for _ in 0..rounds {
                        for body in bodies.iter() {
                            let sent = Instant::now();
                            let response = client.request("POST", "/v1/jobs?wait=1", Some(body));
                            let micros = sent.elapsed().as_secs_f64() * 1e6;
                            assert_eq!(
                                response.status, 200,
                                "load-pass happy path: {}",
                                response.body
                            );
                            samples.push(micros);
                        }
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total_requests = latencies.len();
    let http_p50 = percentile(&latencies, 0.50);
    let http_p90 = percentile(&latencies, 0.90);
    let http_p99 = percentile(&latencies, 0.99);
    let throughput = total_requests as f64 / elapsed;

    // -- Endpoint pass: per-endpoint percentiles over one keep-alive client.
    // Uses the warm post-load service so reads hit realistic state (filled
    // cache, populated registry and slowest ring).
    let ep_rounds = if quick { 60 } else { 300 };
    let mut endpoint_rows: Vec<(String, f64, f64, f64)> =
        vec![("post_jobs_wait".to_owned(), http_p50, http_p90, http_p99)];
    {
        let mut client = Client::connect(addr);
        let submitted = client.request(
            "POST",
            "/v1/jobs",
            Some(&serde_json::to_string(&jobs[0]).expect("serialize wire request")),
        );
        assert_eq!(submitted.status, 202, "endpoint-pass async submit");
        let poll_target = {
            let json = serde_json::parse_value_str(&submitted.body).expect("submit JSON");
            match json_field(&json, "job_id") {
                Value::I64(v) => format!("/v1/jobs/{v}"),
                Value::U64(v) => format!("/v1/jobs/{v}"),
                other => panic!("job_id not an integer: {other:?}"),
            }
        };
        let targets: [(&str, &str); 4] = [
            ("get_job", poll_target.as_str()),
            ("get_metrics_json", "/v1/metrics"),
            ("get_metrics_prometheus", "/v1/metrics?format=prometheus"),
            ("get_debug_slowest", "/v1/debug/slowest"),
        ];
        for (endpoint, target) in targets {
            let mut samples = Vec::with_capacity(ep_rounds);
            for _ in 0..ep_rounds {
                let sent = Instant::now();
                let response = client.request("GET", target, None);
                let micros = sent.elapsed().as_secs_f64() * 1e6;
                assert_eq!(response.status, 200, "endpoint pass {endpoint}");
                samples.push(micros);
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            endpoint_rows.push((
                endpoint.to_owned(),
                percentile(&samples, 0.50),
                percentile(&samples, 0.90),
                percentile(&samples, 0.99),
            ));
        }
    }
    for (endpoint, p50, p90, p99) in &endpoint_rows {
        println!("endpoint {endpoint:<22} p50 {p50:>8.1}µs p90 {p90:>8.1}µs p99 {p99:>8.1}µs");
    }

    // -- Idle-herd + open-loop pass: park an fd-limit-sized crowd of idle
    // keep-alive connections on the reactor, then drive open-loop arrivals
    // from fresh connections. Requests fire on a fixed schedule and latency
    // is measured from the *scheduled* send time, so a stalled server can't
    // hide behind coordinated omission.
    let herd_target = if quick { 1200 } else { 6000 };
    let herd_size = herd_target.min(open_files_limit().saturating_sub(512) / 2);
    let mut herd = Vec::with_capacity(herd_size);
    for _ in 0..herd_size {
        herd.push(TcpStream::connect(addr).expect("connect herd member"));
    }
    println!("idle herd: {herd_size} keep-alive connections parked (target {herd_target})");

    let open_loop_rate = if quick { 1000.0 } else { 4000.0 };
    let open_loop_secs = if quick { 2.0 } else { 5.0 };
    let open_loop_threads = if quick { 2 } else { 4 };
    let per_thread = open_loop_rate / open_loop_threads as f64;
    let shots = (per_thread * open_loop_secs) as usize;
    let open_started = Instant::now();
    let mut open_latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..open_loop_threads)
            .map(|_| {
                let bodies = bodies.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let interval = Duration::from_secs_f64(1.0 / per_thread);
                    let start = Instant::now();
                    let mut samples = Vec::with_capacity(shots);
                    for shot in 0..shots {
                        let scheduled = start + interval * shot as u32;
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let body = &bodies[shot % bodies.len()];
                        let response = client.request("POST", "/v1/jobs?wait=1", Some(body));
                        assert_eq!(
                            response.status, 200,
                            "open-loop happy path: {}",
                            response.body
                        );
                        samples.push(scheduled.elapsed().as_secs_f64() * 1e6);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("open-loop thread"))
            .collect()
    });
    let open_elapsed = open_started.elapsed().as_secs_f64();
    open_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let open_loop_p50 = percentile(&open_latencies, 0.50);
    let open_loop_p99 = percentile(&open_latencies, 0.99);
    let open_loop_throughput = open_latencies.len() as f64 / open_elapsed;

    // The herd must still be registered after the pass: the reactor held
    // every idle connection while serving the open-loop traffic.
    let exposition = Client::connect(addr)
        .request("GET", "/v1/metrics?format=prometheus", None)
        .body;
    let connections_open = prom_value(&exposition, "crowdtune_gateway_connections_open")
        .unwrap_or(0.0)
        .round() as u64;
    let herd_held_ratio = connections_open as f64 / herd_size as f64;
    if herd_held_ratio < 1.0 {
        eprintln!(
            "FAIL: only {connections_open} of {herd_size} idle connections survived the open-loop pass"
        );
        failures += 1;
    }
    println!(
        "open-loop: {} requests at {open_loop_rate:.0}/s target ({open_loop_throughput:.0} achieved) \
         with {connections_open} connections parked | p50 {open_loop_p50:.0}µs p99 {open_loop_p99:.0}µs",
        open_latencies.len()
    );
    drop(herd);

    // -- In-process comparison: the same requests straight into `submit`.
    let mut in_process: Vec<f64> = Vec::with_capacity(rounds.min(50) * jobs.len());
    for _ in 0..rounds.min(50) {
        for wire in &jobs {
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            service.tune(request).expect("in-process submit");
            in_process.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    in_process.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let inprocess_p50 = percentile(&in_process, 0.50);
    let ratio = inprocess_p50 / http_p50;
    let open_loop_vs_closed = open_loop_p50 / http_p50;

    println!(
        "load: {total_requests} requests over {threads} connections in {elapsed:.2}s \
         ({throughput:.0} req/s) | http p50 {http_p50:.0}µs p90 {http_p90:.0}µs \
         p99 {http_p99:.0}µs | in-process p50 {inprocess_p50:.0}µs | ratio {ratio:.3}"
    );

    // -- Overhead pass: what does the per-job tracing + histogram recording
    // cost on the hottest path? Two fresh services, telemetry on vs off,
    // warm caches, alternating submits so scheduler drift hits both sides
    // equally. The off/on p50 ratio sits near 1.0; a drop means the
    // instrumentation got expensive.
    let overhead_rounds = if quick { 150 } else { 600 };
    let telemetry_on = TuningService::start(ServiceConfig::default());
    let telemetry_off = TuningService::start(ServiceConfig {
        telemetry: false,
        ..ServiceConfig::default()
    });
    for wire in &jobs {
        let request = wire.to_request(1_000_000).expect("wire converts");
        telemetry_on.tune(request).expect("warm telemetry-on");
        let request = wire.to_request(1_000_000).expect("wire converts");
        telemetry_off.tune(request).expect("warm telemetry-off");
    }
    let mut on_samples = Vec::with_capacity(overhead_rounds * jobs.len());
    let mut off_samples = Vec::with_capacity(overhead_rounds * jobs.len());
    for _ in 0..overhead_rounds {
        for wire in &jobs {
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            telemetry_on.tune(request).expect("telemetry-on submit");
            on_samples.push(sent.elapsed().as_secs_f64() * 1e6);
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            telemetry_off.tune(request).expect("telemetry-off submit");
            off_samples.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    telemetry_on.shutdown();
    telemetry_off.shutdown();
    on_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    off_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let telemetry_on_p50 = percentile(&on_samples, 0.50);
    let telemetry_off_p50 = percentile(&off_samples, 0.50);
    let overhead_ratio = telemetry_off_p50 / telemetry_on_p50;
    println!(
        "telemetry overhead: on p50 {telemetry_on_p50:.2}µs, off p50 {telemetry_off_p50:.2}µs, \
         off/on ratio {overhead_ratio:.3} (overhead {:.1}%)",
        (telemetry_on_p50 / telemetry_off_p50 - 1.0) * 100.0
    );

    // -- Tracing overhead pass: same in-run pattern, telemetry on in both,
    // causal span recording on vs off. The unsampled path (head sampling
    // keeps 1-in-64 by default) must stay off the hot path: the off/on p50
    // ratio sits near 1.0 and is floor-guarded at 1.20x by CI.
    let tracing_on = TuningService::start(ServiceConfig::default());
    let tracing_off = TuningService::start(ServiceConfig {
        tracing: false,
        ..ServiceConfig::default()
    });
    for wire in &jobs {
        let request = wire.to_request(1_000_000).expect("wire converts");
        tracing_on.tune(request).expect("warm tracing-on");
        let request = wire.to_request(1_000_000).expect("wire converts");
        tracing_off.tune(request).expect("warm tracing-off");
    }
    let mut tracing_on_samples = Vec::with_capacity(overhead_rounds * jobs.len());
    let mut tracing_off_samples = Vec::with_capacity(overhead_rounds * jobs.len());
    for _ in 0..overhead_rounds {
        for wire in &jobs {
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            tracing_on.tune(request).expect("tracing-on submit");
            tracing_on_samples.push(sent.elapsed().as_secs_f64() * 1e6);
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            tracing_off.tune(request).expect("tracing-off submit");
            tracing_off_samples.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    tracing_on.shutdown();
    tracing_off.shutdown();
    tracing_on_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    tracing_off_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let tracing_on_p50 = percentile(&tracing_on_samples, 0.50);
    let tracing_off_p50 = percentile(&tracing_off_samples, 0.50);
    let tracing_ratio = tracing_off_p50 / tracing_on_p50;
    println!(
        "tracing overhead: on p50 {tracing_on_p50:.2}µs, off p50 {tracing_off_p50:.2}µs, \
         off/on ratio {tracing_ratio:.3} (overhead {:.1}%)",
        (tracing_on_p50 / tracing_off_p50 - 1.0) * 100.0
    );

    // -- Fault-layer pass: an *installed but disarmed* chaos write-fault must
    // cost nothing on the fault-free hot path. Two fresh durable services,
    // fault layer absent vs installed, warm caches, alternating submits (the
    // same in-run pattern as the telemetry pass). The hook only runs on the
    // background writer thread, so the off/on p50 ratio sits near 1.0.
    let fault_base =
        std::env::temp_dir().join(format!("crowdtune-loadgen-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fault_base);
    let fault_off = TuningService::recover(ServiceConfig::default(), fault_base.join("off"))
        .expect("open fault-off store");
    let fault_on = TuningService::recover_with(
        ServiceConfig::default(),
        fault_base.join("on"),
        StoreOptions {
            write_fault: Some(Arc::new(ChaosWriteFault::new()) as Arc<dyn WriteFault>),
            ..StoreOptions::default()
        },
    )
    .expect("open fault-on store");
    for wire in &jobs {
        let request = wire.to_request(1_000_000).expect("wire converts");
        fault_off.tune(request).expect("warm fault-off");
        let request = wire.to_request(1_000_000).expect("wire converts");
        fault_on.tune(request).expect("warm fault-on");
    }
    let mut fault_on_samples = Vec::with_capacity(overhead_rounds * jobs.len());
    let mut fault_off_samples = Vec::with_capacity(overhead_rounds * jobs.len());
    for _ in 0..overhead_rounds {
        for wire in &jobs {
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            fault_on.tune(request).expect("fault-on submit");
            fault_on_samples.push(sent.elapsed().as_secs_f64() * 1e6);
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            fault_off.tune(request).expect("fault-off submit");
            fault_off_samples.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    fault_off.shutdown();
    fault_on.shutdown();
    let _ = std::fs::remove_dir_all(&fault_base);
    fault_on_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    fault_off_samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let fault_on_p50 = percentile(&fault_on_samples, 0.50);
    let fault_off_p50 = percentile(&fault_off_samples, 0.50);
    let fault_ratio = fault_off_p50 / fault_on_p50;
    println!(
        "fault-layer overhead: installed p50 {fault_on_p50:.2}µs, absent p50 {fault_off_p50:.2}µs, \
         off/on ratio {fault_ratio:.3} (overhead {:.1}%)",
        (fault_on_p50 / fault_off_p50 - 1.0) * 100.0
    );

    let metrics = Client::connect(addr).request("GET", "/v1/metrics", None);
    println!("metrics: {}", metrics.body);
    // The Prometheus exposition after real load, for the CI format checker.
    let exposition = Client::connect(addr)
        .request("GET", "/v1/metrics?format=prometheus", None)
        .body;
    if let Ok(path) = std::env::var("PROM_EXPOSITION_OUT") {
        match std::fs::write(&path, &exposition) {
            Ok(()) => println!("gateway_loadgen: wrote exposition to {path}"),
            Err(err) => {
                eprintln!("FAIL: could not write {path}: {err}");
                failures += 1;
            }
        }
    }

    gateway.shutdown();
    // The gateway held the only other reference; dropping ours stops the
    // service (its Drop drains the queue and joins the workers).
    drop(service);
    reference.shutdown();

    // -- Bench artifact.
    let json_path = std::env::var("BENCH_GATEWAY_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_gateway.json").to_owned());
    let endpoint_json: Vec<String> = endpoint_rows
        .iter()
        .map(|(endpoint, p50, p90, p99)| {
            format!(
                "    {{\"endpoint\": \"{endpoint}\", \"p50_us\": {p50:.1}, \
                 \"p90_us\": {p90:.1}, \"p99_us\": {p99:.1}, \
                 \"p99_vs_p50_ratio\": {:.3}}}",
                p99 / p50
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"gateway_loadgen_mixed_tenants\",\n  \"quick\": {quick},\n  \
         \"threads\": {threads},\n  \"requests\": {total_requests},\n  \
         \"http_p50_us\": {http_p50:.1},\n  \"http_p90_us\": {http_p90:.1},\n  \
         \"http_p99_us\": {http_p99:.1},\n  \
         \"http_throughput_rps\": {throughput:.0},\n  \
         \"concurrent_connections\": {connections_open},\n  \
         \"idle_herd_held_ratio\": {herd_held_ratio:.4},\n  \
         \"open_loop_target_rps\": {open_loop_rate:.0},\n  \
         \"open_loop_http_p50_us\": {open_loop_p50:.1},\n  \
         \"open_loop_http_p99_us\": {open_loop_p99:.1},\n  \
         \"open_loop_http_throughput_rps\": {open_loop_throughput:.0},\n  \
         \"open_loop_p50_vs_closed_p50_ratio\": {open_loop_vs_closed:.4},\n  \
         \"inprocess_p50_us\": {inprocess_p50:.1},\n  \
         \"inprocess_vs_http_p50_ratio\": {ratio:.4},\n  \
         \"telemetry_on_p50_us\": {telemetry_on_p50:.2},\n  \
         \"telemetry_off_p50_us\": {telemetry_off_p50:.2},\n  \
         \"telemetry_off_vs_on_p50_ratio\": {overhead_ratio:.4},\n  \
         \"tracing_on_p50_us\": {tracing_on_p50:.2},\n  \
         \"tracing_off_p50_us\": {tracing_off_p50:.2},\n  \
         \"tracing_off_vs_on_p50_ratio\": {tracing_ratio:.4},\n  \
         \"fault_layer_on_p50_us\": {fault_on_p50:.2},\n  \
         \"fault_layer_off_p50_us\": {fault_off_p50:.2},\n  \
         \"fault_layer_off_vs_on_p50_ratio\": {fault_ratio:.4},\n  \
         \"endpoints\": [\n{}\n  ]\n}}\n",
        endpoint_json.join(",\n")
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("gateway_loadgen: wrote {json_path}"),
        Err(err) => {
            eprintln!("FAIL: could not write {json_path}: {err}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("gateway_loadgen: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("gateway_loadgen: all checks passed");
}

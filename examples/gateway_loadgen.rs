//! Gateway end-to-end smoke + load generator: the whole stack over a real
//! network boundary.
//!
//! 1. Start a `TuningService` behind a `Gateway` on an ephemeral loopback
//!    port, plus an identically configured in-process reference service.
//! 2. **Correctness pass** — replay a mixed EA/RA/HA multi-tenant catalogue
//!    synchronously (`POST /v1/jobs?wait=1`) and assert every HTTP-served
//!    plan is **bit-identical** (as rendered JSON) to an in-process `submit`
//!    of the same `JobRequestWire`; also drive the async submit → poll path
//!    and the `/v1/metrics` + `/healthz` endpoints.
//! 3. **Admission pass** — flood a tiny-admission service and require the
//!    per-tenant rejection to surface as HTTP 429.
//! 4. **Load pass** — multi-threaded keep-alive clients replay the
//!    catalogue over real sockets; medians and throughput go to
//!    `BENCH_gateway.json` (override with `BENCH_GATEWAY_JSON`), including
//!    `inprocess_vs_http_p50_ratio`, the in-run overhead ratio the CI
//!    regression guard watches.
//!
//! Any plan byte-drift, non-2xx happy-path response, or missing 429 exits
//! non-zero. `CROWDTUNE_BENCH_QUICK=1` shrinks thread/round counts for CI.
//!
//! Run with `cargo run --release --example gateway_loadgen`.

use crowdtune_core::rate::{LinearRate, LogRate, RateSpec};
use crowdtune_core::task::TaskGroupSpec;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_gateway::{Gateway, GatewayConfig, JobRequestWire};
use crowdtune_serve::{AdmissionPolicy, ServiceConfig, TuningService};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Minimal HTTP client (std-only, keep-alive)
// ---------------------------------------------------------------------------

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

struct HttpResponse {
    status: u16,
    body: String,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to gateway");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> HttpResponse {
        let mut text = format!("{method} {target} HTTP/1.1\r\nHost: loadgen\r\n");
        if let Some(body) = body {
            text.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        text.push_str("\r\n");
        if let Some(body) = body {
            text.push_str(body);
        }
        self.stream
            .write_all(text.as_bytes())
            .expect("send request");
        self.read_response()
    }

    fn read_response(&mut self) -> HttpResponse {
        let mut status_line = String::new();
        let n = self
            .reader
            .read_line(&mut status_line)
            .expect("status line");
        assert!(n > 0, "connection closed before a response");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content length value");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("response body");
        HttpResponse {
            status,
            body: String::from_utf8(body).expect("utf-8 body"),
        }
    }
}

fn json_field<'v>(value: &'v Value, name: &str) -> &'v Value {
    value.field(name).unwrap_or_else(|e| panic!("{e}"))
}

fn json_str(value: &Value) -> &str {
    match value {
        Value::Str(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Workload catalogue: mixed EA / RA / HA tenants
// ---------------------------------------------------------------------------

fn group(name: &str, rate: f64, tasks: u64, repetitions: u32) -> TaskGroupSpec {
    TaskGroupSpec {
        name: name.to_owned(),
        processing_rate: rate,
        tasks,
        repetitions,
    }
}

/// The replayed catalogue: per tenant, Scenario I (EA), II (RA budget
/// ladder — exercises family reuse) and III (HA) jobs, plus a non-linear
/// rate model. Deliberately includes exact repeats (cache hits).
fn catalogue() -> Vec<JobRequestWire> {
    let linear = RateSpec::Linear(LinearRate::new(1.5, 0.5).unwrap());
    let steep = RateSpec::Linear(LinearRate::steep());
    let log = RateSpec::Log(LogRate::new(2.0).unwrap());
    let mut jobs = Vec::new();
    // EA tenant: homogeneous type, uniform repetitions (Scenario I).
    jobs.push(JobRequestWire {
        tenant: "ea-tenant".to_owned(),
        groups: vec![group("filter", 2.5, 8, 3)],
        budget: 60,
        rate: linear.clone(),
        strategy: StrategyChoice::Auto,
    });
    // RA tenant: one workload family across a budget ladder (Scenario II).
    for budget in [240u64, 120, 400, 240] {
        jobs.push(JobRequestWire {
            tenant: "ra-tenant".to_owned(),
            groups: vec![group("vote", 2.0, 5, 3), group("vote", 2.0, 5, 5)],
            budget,
            rate: linear.clone(),
            strategy: StrategyChoice::Auto,
        });
    }
    // HA tenant: heterogeneous difficulty (Scenario III).
    jobs.push(JobRequestWire {
        tenant: "ha-tenant".to_owned(),
        groups: vec![group("easy", 3.0, 4, 3), group("hard", 1.0, 4, 5)],
        budget: 160,
        rate: steep,
        strategy: StrategyChoice::Auto,
    });
    // Non-linear belief + forced RA override.
    jobs.push(JobRequestWire {
        tenant: "ra-tenant".to_owned(),
        groups: vec![group("vote", 2.0, 5, 3), group("vote", 2.0, 5, 5)],
        budget: 180,
        rate: log,
        strategy: StrategyChoice::RepetitionAlgorithm,
    });
    // Exact repeat of the EA job from a different tenant: cache hit.
    jobs.push(JobRequestWire {
        tenant: "ea-tenant-2".to_owned(),
        groups: vec![group("filter", 2.5, 8, 3)],
        budget: 60,
        rate: linear,
        strategy: StrategyChoice::Auto,
    });
    jobs
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let quick = std::env::var("CROWDTUNE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut failures = 0u32;

    let service_config = ServiceConfig::default();
    let service = Arc::new(TuningService::start(service_config));
    let reference = TuningService::start(service_config);
    let gateway = Gateway::start(
        service.clone(),
        "127.0.0.1:0",
        GatewayConfig {
            workers: 16,
            ..GatewayConfig::default()
        },
    )
    .expect("bind gateway");
    let addr = gateway.local_addr();
    println!("gateway_loadgen: serving on {addr} (quick={quick})");

    let jobs = catalogue();

    // -- Correctness pass: sync submits must be bit-identical to in-process.
    let mut client = Client::connect(addr);
    for (index, wire) in jobs.iter().enumerate() {
        let body = serde_json::to_string(wire).expect("serialize wire request");
        let response = client.request("POST", "/v1/jobs?wait=1", Some(&body));
        if response.status != 200 {
            eprintln!(
                "FAIL: job {index} answered {} on the happy path: {}",
                response.status, response.body
            );
            failures += 1;
            continue;
        }
        let json = serde_json::parse_value_str(&response.body).expect("response JSON");
        let source = json_str(json_field(&json, "source")).to_owned();
        let http_plan = serde_json::to_string(json_field(&json, "plan")).expect("render plan");
        let in_process = reference
            .tune(wire.to_request(1_000_000).expect("wire converts"))
            .expect("in-process submit");
        let reference_plan =
            serde_json::to_string(&*in_process.plan).expect("render reference plan");
        if http_plan != reference_plan {
            eprintln!(
                "FAIL: job {index} (tenant {}, budget {}) drifted over HTTP\n  http: {http_plan}\n  ref:  {reference_plan}",
                wire.tenant, wire.budget
            );
            failures += 1;
        } else {
            println!(
                "job {index:>2}: {:<12} budget {:>4} -> {source:<6} bit-identical over HTTP",
                wire.tenant, wire.budget
            );
        }
    }

    // -- Async path: submit, poll to completion, re-poll the retained result.
    let async_wire = &jobs[1];
    let body = serde_json::to_string(async_wire).expect("serialize wire request");
    let submitted = client.request("POST", "/v1/jobs", Some(&body));
    if submitted.status != 202 {
        eprintln!("FAIL: async submit answered {}", submitted.status);
        failures += 1;
    } else {
        let json = serde_json::parse_value_str(&submitted.body).expect("submit JSON");
        let job_id = match json_field(&json, "job_id") {
            Value::I64(v) => *v as u64,
            Value::U64(v) => *v,
            other => panic!("job_id not an integer: {other:?}"),
        };
        let target = format!("/v1/jobs/{job_id}");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let polled = client.request("GET", &target, None);
            let json = serde_json::parse_value_str(&polled.body).expect("poll JSON");
            match json_str(json_field(&json, "status")) {
                "pending" if Instant::now() < deadline => continue,
                "done" => {
                    println!("async job {job_id}: done via poll");
                    break;
                }
                other => {
                    eprintln!("FAIL: async job {job_id} ended as {other}");
                    failures += 1;
                    break;
                }
            }
        }
    }

    // -- Health + metrics surfaces.
    let health = client.request("GET", "/healthz", None);
    let metrics = client.request("GET", "/v1/metrics", None);
    if health.status != 200 || metrics.status != 200 {
        eprintln!(
            "FAIL: health/metrics answered {}/{}",
            health.status, metrics.status
        );
        failures += 1;
    } else if !metrics.body.contains("cache_hits") {
        eprintln!("FAIL: metrics body lacks counters: {}", metrics.body);
        failures += 1;
    }
    drop(client);

    // -- Admission pass: a tiny-admission service must answer 429.
    {
        let tiny = Arc::new(TuningService::start(ServiceConfig {
            workers: 1,
            admission: AdmissionPolicy {
                max_pending: 64,
                max_pending_per_tenant: 1,
            },
            ..ServiceConfig::default()
        }));
        let tiny_gateway = Gateway::start(tiny, "127.0.0.1:0", GatewayConfig::default())
            .expect("bind tiny gateway");
        let mut client = Client::connect(tiny_gateway.local_addr());
        let mut saw_429 = false;
        for budget in 0..128u64 {
            let wire = JobRequestWire {
                tenant: "flood".to_owned(),
                groups: vec![group("vote", 2.0, 10, 3), group("vote", 2.0, 10, 5)],
                budget: 4000 + budget,
                rate: RateSpec::Linear(LinearRate::unit_slope()),
                strategy: StrategyChoice::Auto,
            };
            let body = serde_json::to_string(&wire).expect("serialize flood job");
            let response = client.request("POST", "/v1/jobs", Some(&body));
            match response.status {
                202 => continue,
                429 => {
                    saw_429 = true;
                    break;
                }
                other => {
                    eprintln!("FAIL: flood answered {other}: {}", response.body);
                    failures += 1;
                    break;
                }
            }
        }
        if saw_429 {
            println!("admission: per-tenant rejection surfaced as 429");
        } else {
            eprintln!("FAIL: flood never observed a 429");
            failures += 1;
        }
        drop(client);
        tiny_gateway.shutdown();
    }

    // -- Load pass: multi-threaded keep-alive clients, wait-mode submits.
    let threads = if quick { 4 } else { 8 };
    let rounds = if quick { 25 } else { 250 };
    let bodies: Arc<Vec<String>> = Arc::new(
        jobs.iter()
            .map(|wire| serde_json::to_string(wire).expect("serialize wire request"))
            .collect(),
    );
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let bodies = bodies.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut samples = Vec::with_capacity(rounds * bodies.len());
                    for _ in 0..rounds {
                        for body in bodies.iter() {
                            let sent = Instant::now();
                            let response = client.request("POST", "/v1/jobs?wait=1", Some(body));
                            let micros = sent.elapsed().as_secs_f64() * 1e6;
                            assert_eq!(
                                response.status, 200,
                                "load-pass happy path: {}",
                                response.body
                            );
                            samples.push(micros);
                        }
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total_requests = latencies.len();
    let http_p50 = percentile(&latencies, 0.50);
    let http_p90 = percentile(&latencies, 0.90);
    let throughput = total_requests as f64 / elapsed;

    // -- In-process comparison: the same requests straight into `submit`.
    let mut in_process: Vec<f64> = Vec::with_capacity(rounds.min(50) * jobs.len());
    for _ in 0..rounds.min(50) {
        for wire in &jobs {
            let request = wire.to_request(1_000_000).expect("wire converts");
            let sent = Instant::now();
            service.tune(request).expect("in-process submit");
            in_process.push(sent.elapsed().as_secs_f64() * 1e6);
        }
    }
    in_process.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let inprocess_p50 = percentile(&in_process, 0.50);
    let ratio = inprocess_p50 / http_p50;

    println!(
        "load: {total_requests} requests over {threads} connections in {elapsed:.2}s \
         ({throughput:.0} req/s) | http p50 {http_p50:.0}µs p90 {http_p90:.0}µs | \
         in-process p50 {inprocess_p50:.0}µs | ratio {ratio:.3}"
    );

    let metrics = Client::connect(addr).request("GET", "/v1/metrics", None);
    println!("metrics: {}", metrics.body);

    gateway.shutdown();
    // The gateway held the only other reference; dropping ours stops the
    // service (its Drop drains the queue and joins the workers).
    drop(service);
    reference.shutdown();

    // -- Bench artifact.
    let json_path = std::env::var("BENCH_GATEWAY_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_gateway.json").to_owned());
    let json = format!(
        "{{\n  \"bench\": \"gateway_loadgen_mixed_tenants\",\n  \"quick\": {quick},\n  \
         \"threads\": {threads},\n  \"requests\": {total_requests},\n  \
         \"http_p50_us\": {http_p50:.1},\n  \"http_p90_us\": {http_p90:.1},\n  \
         \"http_throughput_rps\": {throughput:.0},\n  \
         \"inprocess_p50_us\": {inprocess_p50:.1},\n  \
         \"inprocess_vs_http_p50_ratio\": {ratio:.4}\n}}\n"
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("gateway_loadgen: wrote {json_path}"),
        Err(err) => {
            eprintln!("FAIL: could not write {json_path}: {err}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("gateway_loadgen: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("gateway_loadgen: all checks passed");
}

//! Quickstart: tune the budget of a crowdsourcing job and inspect the plan.
//!
//! ```bash
//! cargo run -p crowdtune-bench --example quickstart
//! ```
//!
//! A requester has 30 pairwise-vote tasks that each need 5 independent
//! answers, a market where the uptake rate grows linearly with the payment,
//! and 600 payment units (cents) to spend. The tuner classifies the job as
//! Scenario I and applies the Even Allocation of Algorithm 1.

use crowdtune_core::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. Describe the job: one task type, 30 atomic tasks, 5 repetitions.
    let mut tasks = TaskSet::new();
    let vote = tasks
        .add_type("pairwise vote", 2.0)
        .expect("processing rate is positive");
    tasks
        .add_tasks(vote, 5, 30)
        .expect("task definitions are valid");

    // 2. Describe the market: λo(c) = 1·c + 1 (the Linearity Hypothesis).
    let market = Arc::new(LinearRate::new(1.0, 1.0).expect("valid rate model"));

    // 3. Tune a budget of 600 units.
    let tuner = Tuner::new(market);
    let plan = tuner
        .plan(tasks.clone(), Budget::units(600))
        .expect("the budget covers one unit per repetition");

    println!("strategy          : {}", plan.result.strategy);
    println!(
        "budget spent      : {} / 600 units",
        plan.result.allocation.total_spent()
    );
    println!(
        "per-repetition pay: {} .. {} units",
        plan.result.allocation.min_payment().unwrap().as_units(),
        plan.result.allocation.max_payment().unwrap().as_units()
    );
    println!(
        "expected latency  : {:.3} time units (both phases)",
        plan.expected_latency
    );
    println!(
        "on-hold only      : {:.3} time units",
        plan.expected_on_hold_latency
    );

    // 4. Compare against a deliberately biased allocation to see the value of
    //    tuning (Theorem 1 says even allocation is optimal here).
    let problem = tuner
        .problem(tasks, Budget::units(600))
        .expect("problem is feasible");
    let biased = BiasedAllocation::bias_2()
        .tune(&problem)
        .expect("baseline runs");
    let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
    let biased_latency = estimator
        .analytic_expected_latency(&biased.allocation, PhaseSelection::Both)
        .expect("estimate succeeds");
    println!(
        "biased baseline   : {:.3} time units ({:+.1}% vs tuned)",
        biased_latency,
        100.0 * (biased_latency - plan.expected_latency) / plan.expected_latency
    );
}

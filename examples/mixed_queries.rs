//! Heterogeneous workload tuning (the paper's Motivation Example 2 and
//! Scenario III): a database processes a sorting query and a filtering query
//! at the same time, with different difficulties and repetition requirements,
//! under one shared budget.
//!
//! ```bash
//! cargo run -p crowdtune-bench --example mixed_queries
//! ```

use crowdtune_core::prelude::*;
use crowdtune_market::{MarketConfig, MarketSimulator};
use std::sync::Arc;

fn main() {
    // Sorting votes: harder (λp = 2.0), 12 tasks × 5 repetitions.
    // Filter votes: easier (λp = 3.0), 20 tasks × 3 repetitions.
    let mut tasks = TaskSet::new();
    let sort_vote = tasks.add_type("sorting vote", 2.0).expect("valid type");
    let filter_vote = tasks.add_type("yes/no vote", 3.0).expect("valid type");
    tasks.add_tasks(sort_vote, 5, 12).expect("valid tasks");
    tasks.add_tasks(filter_vote, 3, 20).expect("valid tasks");

    let market: Arc<dyn RateModel> = Arc::new(LinearRate::moderate()); // λo = 3p + 3
    let budget = Budget::units(600);

    let problem = HTuningProblem::new(tasks, budget, market.clone()).expect("feasible problem");
    println!("scenario detected : {}", problem.scenario());

    let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
    let simulator = MarketSimulator::new(MarketConfig::independent(7));

    let strategies: Vec<(&str, Box<dyn TuningStrategy>)> = vec![
        ("HA (optimal)", Box::new(HeterogeneousAlgorithm::new())),
        ("task-even", Box::new(TaskEvenAllocation::new())),
        ("rep-even", Box::new(RepetitionEvenAllocation::new())),
        (
            "per-group uniform",
            Box::new(UniformPerGroupAllocation::new()),
        ),
    ];

    println!(
        "\n{:<18} {:>10} {:>14} {:>16}",
        "strategy", "spent", "E[latency]", "simulated (mean)"
    );
    for (label, strategy) in strategies {
        let result = strategy.tune(&problem).expect("strategy runs");
        let expected = estimator
            .analytic_expected_latency(&result.allocation, PhaseSelection::Both)
            .expect("estimate succeeds");
        let simulated = simulator
            .mean_job_latency(problem.task_set(), &result.allocation, &market, 200)
            .expect("simulation runs");
        println!(
            "{label:<18} {:>10} {expected:>14.3} {simulated:>16.3}",
            result.allocation.total_spent()
        );
    }

    println!(
        "\nThe Heterogeneous Algorithm trades budget between the two query types so that the \
         slow sorting votes do not dominate the job's completion time."
    );
}

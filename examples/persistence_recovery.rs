//! Restart-recovery smoke: the durable plan store end to end.
//!
//! 1. Start a durable `TuningService` on a fresh store directory and serve a
//!    small mixed workload (an RA budget ladder, a heterogeneous HA job, a
//!    homogeneous EA job, and exact repeats), recording the exact serialized
//!    bytes of every served plan.
//! 2. Stop the process ("kill"): the working set is flushed, then a torn
//!    half-record is appended to the journal the way a crash mid-write would
//!    leave it.
//! 3. `TuningService::recover` the directory and re-serve the same warm set.
//!
//! The smoke **fails** (non-zero exit) if any re-served plan differs from
//! its pre-restart bytes, if any cold solve occurs on the warm set, or if
//! the torn tail is not contained. It also drives the cross-budget path:
//! budgets never served before the restart must be answered by the
//! rehydrated family table — again without a cold solve.
//!
//! Run with `cargo run --release --example persistence_recovery`
//! (optionally passing a store directory as the first argument).

use crowdtune_core::money::Budget;
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_serve::{JobRequest, MarketId, PlanSource, ServiceConfig, TuningService};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

fn ra_ladder_set() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, 10).unwrap();
    set.add_tasks(ty, 5, 10).unwrap();
    set
}

fn ha_set() -> TaskSet {
    let mut set = TaskSet::new();
    let easy = set.add_type("easy", 3.0).unwrap();
    let hard = set.add_type("hard", 1.0).unwrap();
    set.add_tasks(easy, 3, 4).unwrap();
    set.add_tasks(hard, 5, 4).unwrap();
    set
}

fn ea_set() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("filter", 2.5).unwrap();
    set.add_tasks(ty, 3, 8).unwrap();
    set
}

/// The warm set: every request served (and asserted bit-stable) across the
/// restart. Exact repeats are deliberate — they must hit the cache both
/// before and after.
fn warm_set() -> Vec<(&'static str, JobRequest)> {
    let ra_model = Arc::new(LinearRate::new(1.5, 0.5).unwrap());
    let request = |label: &'static str, set: TaskSet, budget: u64, model: Arc<LinearRate>| {
        (
            label,
            JobRequest {
                tenant: "smoke".to_owned(),
                market: MarketId::DEFAULT,
                task_set: set,
                budget: Budget::units(budget),
                rate_model: model,
                strategy: StrategyChoice::Auto,
            },
        )
    };
    vec![
        request("ra budget 240", ra_ladder_set(), 240, ra_model.clone()),
        request("ra budget 120", ra_ladder_set(), 120, ra_model.clone()),
        request("ra budget 400", ra_ladder_set(), 400, ra_model.clone()),
        request("ra budget 240 (repeat)", ra_ladder_set(), 240, ra_model),
        request(
            "ha budget 160",
            ha_set(),
            160,
            Arc::new(LinearRate::new(1.0, 1.0).unwrap()),
        ),
        request(
            "ea budget 90",
            ea_set(),
            90,
            Arc::new(LinearRate::new(2.0, 0.25).unwrap()),
        ),
    ]
}

fn plan_bytes(plan: &crowdtune_core::tuner::TunedPlan) -> String {
    serde_json::to_string(plan).expect("plans serialize")
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("crowdtune-recovery-smoke-{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };

    // ---- Phase 1: serve the workload durably, record the exact bytes. ----
    let service = TuningService::recover(config, &dir).expect("open fresh store");
    let mut expected: Vec<(&'static str, String)> = Vec::new();
    for (label, request) in warm_set() {
        let served = service.tune(request).expect("pre-restart serve");
        expected.push((label, plan_bytes(&served.plan)));
        println!("pre-restart  {label:<22} -> {:?}", served.source);
    }
    let pre = service.metrics();
    println!(
        "pre-restart  metrics: {} cold, {} family, {} cache",
        pre.cold_solves, pre.family_hits, pre.cache_hits
    );
    service.shutdown(); // planned stop: flushes the working set

    // ---- "Kill": leave a torn half-record, as a crash mid-write would. ----
    let journal = dir.join("journal.log");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&journal)
        .expect("journal exists");
    file.write_all(b"deadbeefdeadbeef\t{\"Submitted\":{\"job_id\":99")
        .expect("append torn tail");
    drop(file);

    // ---- Phase 2: recover and verify. ----
    let service = TuningService::recover(config, &dir).expect("recover store");
    let recovery = service.recovery_stats().expect("durable service");
    println!(
        "recovered: {} plans, {} families, {} replayed jobs, {} corrupt tails",
        recovery.loaded_plans,
        recovery.loaded_families,
        recovery.replayed_jobs,
        recovery.corrupt_tails
    );
    assert_eq!(
        recovery.corrupt_tails, 1,
        "the torn journal tail must be detected and contained"
    );
    assert_eq!(recovery.corrupt_streams, 0);
    assert!(recovery.loaded_plans >= 5, "warm set must be on disk");

    for (label, bytes) in &expected {
        // Find the matching request again (same construction → same
        // fingerprint) and re-serve it.
        let (_, request) = warm_set()
            .into_iter()
            .find(|(l, _)| l == label)
            .expect("label");
        let served = service.tune(request).expect("post-restart serve");
        let reserved = plan_bytes(&served.plan);
        assert_eq!(
            &reserved, bytes,
            "{label}: re-served plan differs from its pre-restart bytes"
        );
        assert_eq!(
            served.source,
            PlanSource::CacheHit,
            "{label}: warm-set job must be answered from the recovered cache"
        );
        println!(
            "post-restart {label:<22} -> bit-identical ({:?})",
            served.source
        );
    }
    let metrics = service.metrics();
    assert_eq!(
        metrics.cold_solves, 0,
        "a cold solve occurred on the warm set: {metrics:?}"
    );

    // ---- Cross-budget: new budgets ride the rehydrated family table. ----
    let ra_model = Arc::new(LinearRate::new(1.5, 0.5).unwrap());
    for budget in [180u64, 520] {
        let served = service
            .tune(JobRequest {
                tenant: "smoke".to_owned(),
                market: MarketId::DEFAULT,
                task_set: ra_ladder_set(),
                budget: Budget::units(budget),
                rate_model: ra_model.clone(),
                strategy: StrategyChoice::Auto,
            })
            .expect("family serve");
        assert_eq!(
            served.source,
            PlanSource::FamilyHit,
            "budget {budget} was never served, yet the recovered family must answer it"
        );
        println!("post-restart ra budget {budget:<15} -> {:?}", served.source);
    }
    let metrics = service.metrics();
    assert_eq!(
        metrics.cold_solves, 0,
        "family rehydration must not cold-solve"
    );
    let families = service.family_stats();
    assert!(families.reloads >= 1, "family must have been rehydrated");

    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "recovery smoke passed: {} plans bit-identical across restart, 0 cold solves on the \
         warm set, torn tail contained",
        expected.len()
    );
}

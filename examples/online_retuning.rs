//! Online mid-flight re-tuning on a drifting market.
//!
//! A requester probes the market during a quiet period and tunes a job (a
//! wide group of short task chains plus two long chains) against a *flat*
//! rate curve: payment barely matters under that belief, so the plan parks
//! the wide group at the one-unit minimum and funnels the spare budget into
//! the long chains. Mid-job the market regime switches to a *steep* curve —
//! payment now strongly drives acceptance, the one-unit wide group becomes
//! the bottleneck — and the offline plan has no way to react.
//!
//! Two runs of the same job on the same drifting market:
//!
//! * **tune-once** — the paper's pipeline: solve, post, wait;
//! * **re-tuned** — the same initial plan, but with a
//!   [`Retuner`](crowdtune_serve::Retuner) subscribed to the market's event
//!   stream: it re-estimates the rate curve from observed acceptance delays,
//!   detects the drift, re-solves the H-Tuning problem for the remaining
//!   repetitions and budget, and re-prices everything not yet published.
//!
//! The re-tuned arm must be no slower on average, and in this regime is
//! typically markedly faster.
//!
//! Run with: `cargo run --release --example online_retuning`

use crowdtune_bench::{compare_tune_once_vs_retuned, DriftScenario};

fn main() {
    // The wide-and-deep scenario shared with the serve_throughput bench:
    // a flat probed belief parks the wide group at the one-unit minimum and
    // funnels spare budget into two deep chains; mid-job the market turns
    // steep and the wide group becomes the bottleneck.
    let scenario = DriftScenario::wide_and_deep();
    let plan = scenario.offline_plan().unwrap();
    println!(
        "offline plan ({}): expects {:.2}s under the believed market",
        plan.result.strategy, plan.expected_latency
    );

    let trials = 300;
    let comparison = compare_tune_once_vs_retuned(&scenario, trials).unwrap();
    println!("drifting market, {trials} trials:");
    println!(
        "  tune-once mean job latency: {:8.2}s",
        comparison.tune_once_mean
    );
    println!(
        "  re-tuned  mean job latency: {:8.2}s  ({:+.1}%)",
        comparison.retuned_mean,
        -100.0 * comparison.latency_change()
    );
    println!("  re-tunes per job: {:.2}", comparison.retunes_per_job);

    assert!(
        comparison.retuned_mean <= comparison.tune_once_mean * 1.02,
        "re-tuning must not slow the job down: {comparison:?}"
    );
    println!("OK: re-tuned job is no slower than tune-once under drift");
}

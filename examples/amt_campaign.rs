//! Running a tuned campaign against the AMT-like sandbox.
//!
//! ```bash
//! cargo run -p crowdtune-bench --example amt_campaign
//! ```
//!
//! The requester funds an account, creates dot-counting image-filter HITs of
//! two difficulty levels with a tuned reward split, executes the campaign on
//! the simulated marketplace, and reviews the assignments (workers are paid
//! only when their answers are correct, as in the paper's experiment).

use crowdtune_platform::dotimage::DotImageGenerator;
use crowdtune_platform::sandbox::{MturkSandbox, ReviewPolicy};
use crowdtune_platform::AmtCalibration;

fn main() {
    let calibration = AmtCalibration::paper();
    let fit = calibration.linearity_fit().expect("calibration fits");
    println!(
        "calibrated market: λo(c) = {:.5}·c + {:.5} (R² = {:.2})",
        fit.k, fit.b, fit.r_squared
    );

    // Fund the account with $20.00 and create two batches of HITs:
    // easy (4 votes) at $0.05 and hard (8 votes) at $0.08 — the higher reward
    // partially compensates the slower uptake of the harder tasks.
    let mut sandbox = MturkSandbox::new(2_000, 77);
    let mut generator = DotImageGenerator::new(3);
    let mut easy_hits = Vec::new();
    let mut hard_hits = Vec::new();
    for _ in 0..6 {
        let spec = generator.filter_hit(4, 12);
        easy_hits.push(sandbox.create_hit(spec, 5, 3).expect("funds reserved"));
    }
    for _ in 0..4 {
        let spec = generator.filter_hit(8, 12);
        hard_hits.push(sandbox.create_hit(spec, 8, 3).expect("funds reserved"));
    }
    println!(
        "created {} HITs; reserved {} cents of a {}-cent balance",
        sandbox.hits().len(),
        sandbox.account().reserved_cents,
        sandbox.account().balance_cents
    );

    // Execute the campaign on the simulated marketplace.
    let latency = sandbox.execute().expect("campaign executes");
    println!(
        "campaign finished after {:.1} simulated minutes ({} assignments collected)",
        latency / 60.0,
        sandbox.all_assignments().len()
    );

    // Per-difficulty latency summary.
    for (label, hits) in [
        ("easy (4 votes)", &easy_hits),
        ("hard (8 votes)", &hard_hits),
    ] {
        let mut on_hold = 0.0;
        let mut processing = 0.0;
        let mut count = 0usize;
        for hit in hits.iter() {
            for a in sandbox.list_assignments(*hit) {
                on_hold += a.on_hold_secs;
                processing += a.processing_secs;
                count += 1;
            }
        }
        println!(
            "{label:<16} mean on-hold {:.1} min, mean processing {:.0} s over {count} assignments",
            on_hold / count as f64 / 60.0,
            processing / count as f64
        );
    }

    // Review: pay only perfectly correct answer sets.
    let (approved, rejected) = sandbox
        .auto_review(ReviewPolicy::AccuracyAtLeast(1.0))
        .expect("review runs");
    println!(
        "review: {approved} approved, {rejected} rejected; paid {} cents, {} cents left",
        sandbox.account().paid_cents,
        sandbox.account().balance_cents
    );
}

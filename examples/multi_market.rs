//! Multi-market federation smoke: cross-market routing end to end.
//!
//! Two marketplaces with *crossing* on-hold rate curves are registered —
//! "amt" rewards high payments steeply, "prolific" is fast even at low pay —
//! and a mixed workload (a few deeply-replicated groups plus many shallow
//! ones) is routed across them:
//!
//! 1. **Phase 1** — the router splits the job's task groups across both
//!    markets and the routed objective must strictly beat the best
//!    *single*-market tune (verified against independent `Tuner` solves of
//!    the whole job on each market, not just the router's own bookkeeping).
//! 2. **Drift** — "prolific" flips regime mid-stream. A service-built
//!    [`Retuner`](crowdtune_serve::Retuner) watches a job's own repetitions
//!    and (with `ServiceConfig::feed_drift_evidence` on, the default)
//!    auto-forwards every censored acceptance observation into the
//!    registry's sliding-window MLE until drift is *confirmed* — no
//!    hand-wired `observe_acceptance` replay. A probe ladder (§3.3.1) is
//!    then priced and `relearn` replaces the belief with the curve fitted
//!    from the probe campaign. "amt" drifts the other way
//!    (operator-applied update, same effect).
//! 3. **Phase 2** — with the regimes swapped out of phase, routing flips:
//!    every group lands on the *other* market, and the split again beats
//!    the best single-market tune.
//!
//! Warm-path economics are measured too: once the per-market family tables
//! exist, a routed quote is pure prefix reads — the smoke times a cold
//! `route` against warm `quote`s and writes the ratio (plus the routed
//! improvement) to `BENCH_market.json` (override with `BENCH_MARKET_JSON`)
//! for the CI regression guard. `CROWDTUNE_BENCH_QUICK=1` shrinks rounds.
//!
//! The smoke **fails** (non-zero exit) if the router does not split, does
//! not beat the best single tune in either phase, or does not flip the
//! assignment after the regime swap.
//!
//! Run with `cargo run --release --example multi_market`.

use crowdtune_core::inference::{PriceObservation, ProbeCampaign};
use crowdtune_core::money::{Allocation, Budget, Payment};
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::{LinearRate, RateModel};
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, Tuner};
use crowdtune_market::control::{MarketController, MarketView};
use crowdtune_market::events::{Event, RepetitionId};
use crowdtune_market::time::SimTime;
use crowdtune_serve::{
    MarketId, MarketRegistry, RetunePolicy, RoutedPlan, ServiceConfig, TuningService,
};
use std::sync::Arc;
use std::time::Instant;

const AMT: MarketId = MarketId::DEFAULT;
const PROLIFIC: MarketId = MarketId(1);

/// Steep regime: payment buys a lot of speed (λ(c) = 5c + 0.5).
fn steep() -> Arc<dyn RateModel> {
    Arc::new(LinearRate::new(5.0, 0.5).unwrap())
}

/// Flat regime: fast even at minimum pay (λ(c) = 0.5c + 9).
fn flat() -> Arc<dyn RateModel> {
    Arc::new(LinearRate::new(0.5, 9.0).unwrap())
}

/// A workload whose groups *want* different markets: two deeply-replicated
/// tasks (speed per unit pay matters → steep regime) and eight shallow ones
/// (base speed matters → flat regime).
fn mixed_workload() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 5, 2).unwrap();
    set.add_tasks(ty, 2, 8).unwrap();
    set
}

/// The markets each group landed on, in group order, by market name.
fn assignment_names(plan: &RoutedPlan, registry: &MarketRegistry) -> Vec<String> {
    match plan {
        RoutedPlan::Split { groups, .. } => groups
            .iter()
            .map(|(a, _)| registry.name_of(a.market).unwrap_or("?").to_owned())
            .collect(),
        RoutedPlan::Single { market, .. } => {
            vec![registry.name_of(*market).unwrap_or("?").to_owned()]
        }
    }
}

/// Routes the workload and checks it splits *and* strictly beats an
/// independent whole-job `Tuner` solve on every single market. Returns the
/// per-group market names and the improvement factor (best single / routed).
fn route_and_check(
    phase: &str,
    service: &TuningService,
    set: &TaskSet,
    budget: Budget,
    failures: &mut u32,
) -> (Vec<String>, f64) {
    let registry = service.markets();
    let routed = service.route(set, budget).expect("route");
    let names = assignment_names(&routed, &registry);
    if !routed.is_split() {
        eprintln!("FAIL [{phase}]: router did not split the workload");
        *failures += 1;
    }
    // Independent ground truth: tune the whole job on each market's belief
    // with the production `Tuner` and take the best objective.
    let mut best_single = f64::INFINITY;
    let mut best_name = "?";
    for market in registry.markets() {
        let belief = registry.belief(market).expect("registered market");
        let plan = Tuner::new(belief)
            .plan(set.clone(), budget)
            .expect("single-market tune");
        let objective = plan.result.objective.expect("RA objective");
        println!(
            "  [{phase}] all-on-{:<9} objective {objective:.6}",
            registry.name_of(market).unwrap_or("?")
        );
        if objective < best_single {
            best_single = objective;
            best_name = registry.name_of(market).unwrap_or("?");
        }
    }
    let improvement = best_single / routed.objective();
    println!(
        "  [{phase}] routed ({}) objective {:.6} — {improvement:.4}x better than best single \
         (all-on-{best_name} at {best_single:.6})",
        names.join("+"),
        routed.objective()
    );
    if routed.objective() >= best_single {
        eprintln!("FAIL [{phase}]: routed plan does not beat the best single-market tune");
        *failures += 1;
    }
    (names, improvement)
}

/// Drives "prolific" through the full drift machinery: observations that
/// contradict the flat belief, confirmed drift, a probe ladder, and a
/// relearned steep belief.
///
/// The observations arrive through a *service-built* [`Retuner`] watching a
/// job's own repetitions: with `ServiceConfig::feed_drift_evidence` on (the
/// default), every acceptance the re-tuner sees is auto-forwarded into the
/// registry's drift detector — no hand-wired `observe_acceptance` replay.
fn drift_prolific_to_steep(service: &TuningService, failures: &mut u32) {
    let registry = service.markets();
    // The steep regime at price 6 accepts at λ = 5·6 + 0.5 = 30.5/s; the
    // standing flat belief predicts 12/s. 64 acceptances at the new pace
    // push the windowed censored MLE far outside the belief's band.
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).expect("task type");
    set.add_tasks(ty, 64, 1).expect("tasks");
    let problem =
        HTuningProblem::new(set, Budget::units(64 * 6), flat()).expect("re-tuned problem");
    let mut retuner = service.retuner(
        problem,
        StrategyChoice::Auto,
        RetunePolicy::default(),
        PROLIFIC,
    );
    let allocation = Allocation::uniform(&[64], Payment::units(6));
    let completed = vec![0u32; 1];
    let mut published = vec![0u32; 1];
    let mut committed = 0u64;
    let mut now = 0.0;
    for i in 0..64u32 {
        let rep = RepetitionId::new(0, i);
        published[0] = i + 1;
        committed += 6;
        let view = MarketView {
            completed: &completed,
            published: &published,
            committed_units: committed,
            allocation: &allocation,
        };
        retuner.on_event(SimTime::new(now), &Event::Publish(rep), &view);
        now += 1.0 / 30.5;
        retuner.on_event(
            SimTime::new(now),
            &Event::Accept {
                repetition: rep,
                worker: None,
            },
            &view,
        );
    }
    let evidence = registry.confirmed_drift(PROLIFIC).expect("drift check");
    if evidence.is_empty() {
        eprintln!("FAIL: regime flip on prolific was not confirmed as drift");
        *failures += 1;
        return;
    }
    println!(
        "  [drift] prolific confirmed at price {}: observed {:.2}/s vs believed {:.2}/s \
         over {} events",
        evidence[0].price, evidence[0].observed, evidence[0].believed, evidence[0].events
    );
    // §3.3.1: price a small off-plan probe ladder around the drifted prices
    // and relearn from campaign observations following the *true* new curve.
    let probe = registry.probe_plan(PROLIFIC, 4).expect("probe plan");
    println!("  [drift] probe ladder prices: {:?}", probe.prices);
    let observations = probe
        .prices
        .iter()
        .map(|&price| {
            let rate = 5.0 * price as f64 + 0.5;
            let epochs: Vec<f64> = (1..=24).map(|i| i as f64 / rate).collect();
            PriceObservation::new(price, epochs, vec![0.5; 24])
        })
        .collect();
    let relearned = registry
        .relearn(PROLIFIC, &ProbeCampaign::new(observations))
        .expect("relearn");
    println!(
        "  [drift] prolific relearned: {} (λ(6) ≈ {:.2}/s)",
        relearned.describe(),
        relearned.on_hold_rate(6.0)
    );
    if (relearned.on_hold_rate(6.0) - 30.5).abs() > 3.0 {
        eprintln!("FAIL: relearned prolific belief is far from the true steep curve");
        *failures += 1;
    }
}

fn main() {
    let quick = std::env::var("CROWDTUNE_BENCH_QUICK").is_ok_and(|v| v == "1");
    let mut failures = 0u32;

    let registry = Arc::new(
        MarketRegistry::new(vec![
            (AMT, "amt".to_owned(), steep()),
            (PROLIFIC, "prolific".to_owned(), flat()),
        ])
        .expect("registry"),
    );
    let service = TuningService::start_with_markets(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        registry.clone(),
    );
    let set = mixed_workload();
    let budget = Budget::units(60);

    // ---- Phase 1: steep amt + flat prolific → the job splits. ----
    println!("phase 1: amt=steep, prolific=flat");
    let cold = Instant::now();
    let (phase1, improvement) = route_and_check("phase 1", &service, &set, budget, &mut failures);
    let cold_ns = cold.elapsed().as_nanos() as f64;

    // ---- Warm quotes: the family tables now exist on both markets, so a
    // quote is pure prefix reads plus the group knapsack. ----
    let rounds = if quick { 100 } else { 1000 };
    let mut warm_ns = f64::INFINITY;
    for _ in 0..rounds {
        let started = Instant::now();
        let quote = service.router().quote(&set, budget).expect("warm quote");
        warm_ns = warm_ns.min(started.elapsed().as_nanos() as f64);
        assert!(quote.split, "warm quote must agree with the routed plan");
    }
    let families = service.family_stats();
    let warm_ratio = cold_ns / warm_ns;
    println!(
        "warm quotes: {rounds} rounds, best {:.1}µs vs cold route {:.1}µs ({warm_ratio:.1}x); \
         family tables: {} builds, {} extensions",
        warm_ns / 1e3,
        cold_ns / 1e3,
        families.builds,
        families.extensions
    );

    // ---- Drift: the markets swap regimes out of phase. ----
    drift_prolific_to_steep(&service, &mut failures);
    // amt's drift arrives as an operator-applied belief update (the same
    // mechanism retuning uses; the detection path was exercised above).
    registry.set_belief(AMT, flat()).expect("set amt belief");

    // ---- Phase 2: the routing must flip with the regimes. ----
    println!("phase 2: amt=flat, prolific=steep (regimes swapped)");
    let (phase2, _) = route_and_check("phase 2", &service, &set, budget, &mut failures);
    if phase1 == phase2 {
        eprintln!("FAIL: regime swap did not flip the routed assignment ({phase1:?})");
        failures += 1;
    }
    let splits = service.router().splits();
    println!("router split counter: {splits}");

    service.shutdown();

    // ---- Bench artifact for the CI regression guard. ----
    let json_path = std::env::var("BENCH_MARKET_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_market.json").to_owned());
    let json = format!(
        "{{\n  \"bench\": \"multi_market_router\",\n  \"quick\": {quick},\n  \
         \"router_vs_best_single_improvement\": {improvement:.4},\n  \
         \"warm_quote_vs_cold_route_ratio\": {warm_ratio:.1}\n}}\n"
    );
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("multi_market: wrote {json_path}"),
        Err(err) => {
            eprintln!("FAIL: could not write {json_path}: {err}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("multi_market smoke FAILED ({failures} check(s))");
        std::process::exit(1);
    }
    println!("multi_market smoke passed");
}

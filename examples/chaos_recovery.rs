//! Chaos-recovery smoke: the fault-tolerance layer end to end.
//!
//! A durable `TuningService` (with the chaos write-fault layer installed but
//! disarmed) serves a mixed EA/RA/HA workload while faults are injected one
//! at a time:
//!
//! 1. **Baseline** — every served plan must be bit-identical to a fault-free
//!    reference service, `/healthz` answers 200 `healthy`.
//! 2. **Store outage** (`fail_all`) — jobs keep being served bit-identically
//!    while the write path exhausts its retries; health must transition to
//!    `degraded` with reason `store-writes-failing` (200 at `/healthz`), and
//!    must flip back to `healthy` automatically after `heal`.
//! 3. **Disk full** (`StorageFull` errors) — same degrade/heal cycle.
//! 4. **Worker panic** (armed `ChaosRate`) — the poisoned job fails with the
//!    typed `WorkerPanic`; the worker thread survives (no restart) and the
//!    re-submitted job solves bit-identically. The panicked job runs under
//!    an explicit *unsampled* caller trace context, and its span tree must
//!    be error-tail-sampled and queryable over the gateway socket at
//!    `GET /v1/debug/traces/{trace_id}`.
//! 5. **Worker death** (`WorkerDeath` marker) — the observer gets
//!    `WorkerLost`, the supervisor respawns the thread, health returns to
//!    `healthy` once the pool is whole.
//! 6. **Restart recovery** — after a planned stop, `recover` must re-serve
//!    the whole warm set bit-identically with zero cold solves and zero
//!    replayed jobs (the panicked job was retired by its `Failed` journal
//!    record, not left to replay forever).
//! 7. **Poison-job quarantine** — a crafted journal whose pending job has
//!    exhausted its replay attempts must be quarantined (terminal `Failed`),
//!    and the following recovery must see an empty journal (no unretired
//!    growth).
//! 8. **Drain** — `/healthz` answers 503 `draining`.
//!
//! Exits non-zero on any violation. `CROWDTUNE_BENCH_QUICK=1` trims the
//! workload (CI smoke mode).

use crowdtune_chaos::{ChaosRate, ChaosWriteFault, WriteFault};
use crowdtune_core::money::Budget;
use crowdtune_core::rate::{LinearRate, RateModel, RateSpec};
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_gateway::{Gateway, GatewayConfig};
use crowdtune_obs::{SpanId, TraceContext, TraceId};
use crowdtune_serve::{
    HealthState, JobRequest, JournalRecord, MarketId, PlanSource, PlanStore, ServeError,
    ServiceConfig, StoreOptions, TuningService, REPLAY_ATTEMPT_LIMIT,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn quick_mode() -> bool {
    std::env::var("CROWDTUNE_BENCH_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn ra_set() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, 10).unwrap();
    set.add_tasks(ty, 5, 10).unwrap();
    set
}

fn ha_set() -> TaskSet {
    let mut set = TaskSet::new();
    let easy = set.add_type("easy", 3.0).unwrap();
    let hard = set.add_type("hard", 1.0).unwrap();
    set.add_tasks(easy, 3, 4).unwrap();
    set.add_tasks(hard, 5, 4).unwrap();
    set
}

fn ea_set() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("filter", 2.5).unwrap();
    set.add_tasks(ty, 3, 8).unwrap();
    set
}

fn request(set: TaskSet, budget: u64, model: Arc<dyn RateModel>) -> JobRequest {
    JobRequest {
        tenant: "chaos".to_owned(),
        market: MarketId::DEFAULT,
        task_set: set,
        budget: Budget::units(budget),
        rate_model: model,
        strategy: StrategyChoice::Auto,
    }
}

fn base_model() -> Arc<dyn RateModel> {
    Arc::new(LinearRate::new(1.5, 0.5).unwrap())
}

/// Inner curve of the panic-armed job — distinct from every other curve so
/// its plan/family keys never collide with healthy jobs.
fn panic_model() -> Arc<dyn RateModel> {
    Arc::new(LinearRate::new(1.25, 0.75).unwrap())
}

/// Inner curve of the worker-death job, distinct for the same reason.
fn death_model() -> Arc<dyn RateModel> {
    Arc::new(LinearRate::new(1.75, 0.25).unwrap())
}

/// The full catalogue of (label, request) pairs the smoke serves. Every one
/// of them is also served on a fault-free reference service first, and every
/// chaos-side answer must match that reference byte for byte.
fn catalogue(quick: bool) -> Vec<(&'static str, JobRequest)> {
    let mut jobs: Vec<(&'static str, JobRequest)> = vec![
        ("baseline ra 240", request(ra_set(), 240, base_model())),
        ("baseline ra 120", request(ra_set(), 120, base_model())),
        ("baseline ha 160", request(ha_set(), 160, base_model())),
        ("baseline ea 90", request(ea_set(), 90, base_model())),
        ("outage ra 300", request(ra_set(), 300, base_model())),
        ("outage ea 120", request(ea_set(), 120, base_model())),
        ("diskfull ra 520", request(ra_set(), 520, base_model())),
        ("heal probe ra 360", request(ra_set(), 360, base_model())),
        ("heal probe ra 440", request(ra_set(), 440, base_model())),
        ("panic retry ra 200", request(ra_set(), 200, panic_model())),
        ("death retry ra 220", request(ra_set(), 220, death_model())),
    ];
    if !quick {
        jobs.push(("baseline ra 400", request(ra_set(), 400, base_model())));
        jobs.push(("outage ra 180", request(ra_set(), 180, base_model())));
        jobs.push(("outage ha 200", request(ha_set(), 200, base_model())));
    }
    jobs
}

fn labelled(jobs: &[(&'static str, JobRequest)], prefix: &str) -> Vec<(String, JobRequest)> {
    jobs.iter()
        .filter(|(label, _)| label.starts_with(prefix))
        .map(|(label, request)| ((*label).to_owned(), request.clone()))
        .collect()
}

fn plan_bytes(plan: &crowdtune_core::tuner::TunedPlan) -> String {
    serde_json::to_string(plan).expect("plans serialize")
}

/// One-shot `GET` against the gateway (fresh connection per probe, the way a
/// load balancer's health check behaves).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to gateway");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// Serves `jobs` on the chaos service and asserts every answer is
/// bit-identical to the recorded fault-free reference.
fn serve_and_check(
    service: &TuningService,
    jobs: &[(String, JobRequest)],
    reference: &HashMap<String, String>,
    phase: &str,
) {
    for (label, job) in jobs {
        let served = service
            .tune(job.clone())
            .unwrap_or_else(|e| panic!("{phase}: {label} failed: {e}"));
        let bytes = plan_bytes(&served.plan);
        assert_eq!(
            &bytes, &reference[label],
            "{phase}: {label} diverged from the fault-free reference"
        );
        println!(
            "{phase:<12} {label:<22} -> bit-identical ({:?})",
            served.source
        );
    }
}

fn wait_for<F: Fn() -> bool>(what: &str, condition: F) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn is_degraded_by_store(service: &TuningService) -> bool {
    match service.health() {
        HealthState::Degraded { reasons } => {
            reasons.iter().any(|r| r.as_str() == "store-writes-failing")
        }
        _ => false,
    }
}

/// Arms a store fault, pushes a workload through it, and verifies the
/// degrade → heal health cycle (plans bit-identical throughout).
fn fault_cycle(
    service: &TuningService,
    fault: &ChaosWriteFault,
    arm: impl Fn(&ChaosWriteFault),
    jobs: &[(String, JobRequest)],
    heal_probe: &[(String, JobRequest)],
    reference: &HashMap<String, String>,
    phase: &str,
) {
    // Drain the write-behind queue first so records of *previous* phases
    // cannot be caught by this phase's fault (which would leave a journaled
    // job without its retirement record).
    service.flush_store();
    let injected_before = fault.injected();
    arm(fault);
    serve_and_check(service, jobs, reference, phase);
    wait_for(&format!("{phase}: degraded health"), || {
        is_degraded_by_store(service)
    });
    assert!(
        fault.injected() > injected_before,
        "{phase}: the fault never actually fired"
    );
    println!(
        "{phase:<12} health degraded (store-writes-failing) after {} injected faults",
        fault.injected() - injected_before
    );
    fault.heal();
    // A fresh record must flow through the healed path to flip health back.
    serve_and_check(service, heal_probe, reference, phase);
    wait_for(&format!("{phase}: healthy again"), || {
        service.health() == HealthState::Healthy
    });
    println!("{phase:<12} health back to healthy after heal");
}

fn main() {
    let quick = quick_mode();
    let dir = std::env::temp_dir().join(format!("crowdtune-chaos-smoke-{}", std::process::id()));
    let quarantine_dir = dir.join("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let jobs = catalogue(quick);

    // ---- Fault-free reference: the answers every chaos phase must match. --
    let reference_service = TuningService::start(config);
    let mut reference: HashMap<String, String> = HashMap::new();
    for (label, job) in &jobs {
        let served = reference_service
            .tune(job.clone())
            .expect("reference serve");
        reference.insert((*label).to_owned(), plan_bytes(&served.plan));
    }
    reference_service.shutdown();
    println!(
        "reference    {} fault-free answers recorded",
        reference.len()
    );

    // ---- The chaos service: durable, fault layer installed (disarmed). ----
    let fault = Arc::new(ChaosWriteFault::new());
    let service = Arc::new(
        TuningService::recover_with(
            config,
            &dir,
            StoreOptions {
                write_fault: Some(fault.clone() as Arc<dyn WriteFault>),
                ..StoreOptions::default()
            },
        )
        .expect("open durable chaos service"),
    );
    let gateway = Gateway::start(service.clone(), "127.0.0.1:0", GatewayConfig::default())
        .expect("bind gateway");
    let addr = gateway.local_addr();

    // ---- Phase 1: baseline (fault installed but disarmed). ----
    serve_and_check(
        &service,
        &labelled(&jobs, "baseline"),
        &reference,
        "baseline",
    );
    assert_eq!(service.health(), HealthState::Healthy);
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(
        (status, body.contains("\"healthy\"")),
        (200, true),
        "{body}"
    );
    println!("baseline     /healthz 200 healthy");

    // ---- Phase 2: store outage (every append fails until healed). ----
    fault_cycle(
        &service,
        &fault,
        |f| f.fail_all(),
        &labelled(&jobs, "outage"),
        &labelled(&jobs, "heal probe ra 360"),
        &reference,
        "outage",
    );
    // While degraded the gateway keeps answering 200 (the node still serves
    // bit-correct plans) — verified via a second short outage window.
    service.flush_store();
    fault.fail_all();
    service
        .tune(request(ra_set(), 333, base_model()))
        .expect("serve during probe outage");
    wait_for("probe outage: degraded", || is_degraded_by_store(&service));
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "degraded still routes traffic: {body}");
    assert!(body.contains("\"degraded\""), "{body}");
    assert!(body.contains("store-writes-failing"), "{body}");
    println!("outage       /healthz 200 degraded [store-writes-failing]");
    fault.heal();
    service
        .tune(request(ra_set(), 334, base_model()))
        .expect("serve after heal");
    wait_for("probe outage: healthy", || {
        service.health() == HealthState::Healthy
    });

    // ---- Phase 3: disk full. ----
    fault_cycle(
        &service,
        &fault,
        |f| f.disk_full(),
        &labelled(&jobs, "diskfull"),
        &labelled(&jobs, "heal probe ra 440"),
        &reference,
        "diskfull",
    );

    // ---- Phase 4: worker panic is contained to its job. ----
    // The armed solves below panic *by design*; keep the default hook's
    // backtrace out of the smoke log for exactly those two injections.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let restarts_before = service.metrics().worker_restarts;
    let panic_rate = Arc::new(ChaosRate::new(panic_model()));
    panic_rate.arm_panic();
    // Submit under an explicit *unsampled* caller trace context: only the
    // error-tail sampler can keep this trace, and it must be queryable by
    // the caller's id afterwards.
    let panic_context = TraceContext {
        trace_id: TraceId(0xdead_beef_cafe),
        parent: SpanId(0x51),
        sampled: false,
    };
    let err = service
        .submit_traced(
            request(ra_set(), 200, panic_rate.clone()),
            Some(panic_context),
        )
        .expect("panic job admitted")
        .wait()
        .expect_err("armed panic must fail the job");
    std::panic::set_hook(default_hook);
    assert!(
        matches!(err, ServeError::WorkerPanic { .. }),
        "expected WorkerPanic, got {err}"
    );
    // The panicked trace flushes asynchronously once the job retires; the
    // span tree must be tail-sampled (reason `tail_error`) and served over
    // the gateway socket by trace id.
    let panic_trace_path = format!("/v1/debug/traces/{}", panic_context.trace_id.to_hex());
    let deadline = Instant::now() + Duration::from_secs(10);
    let tree_body = loop {
        let (status, body) = http_get(addr, &panic_trace_path);
        if status == 200 {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "panicked trace never reached the span store: {status} {body}"
        );
        std::thread::yield_now();
    };
    assert!(
        tree_body.contains("\"sampled\": \"tail_error\"") || tree_body.contains("\"tail_error\""),
        "panicked trace must be error-tail-sampled: {tree_body}"
    );
    assert!(
        tree_body.contains("\"error\""),
        "panicked trace must carry error status: {tree_body}"
    );
    // A panicked solve never stamps its end, so the tree carries the job
    // and queue.wait spans with the panic recorded on the job span.
    assert!(
        tree_body.contains("queue.wait"),
        "panicked trace must include the queue.wait span: {tree_body}"
    );
    assert!(
        tree_body.contains("panicked"),
        "panicked trace must record the panic outcome: {tree_body}"
    );
    println!(
        "panic        trace {} tail-sampled (error) and queryable over the socket",
        panic_context.trace_id.to_hex()
    );
    assert!(service.metrics().worker_panics >= 1);
    assert_eq!(
        service.metrics().worker_restarts,
        restarts_before,
        "a contained panic must not kill the worker thread"
    );
    // The disarmed wrapper (same fingerprint as its inner curve) now solves
    // bit-identically to the fault-free reference of the inner model.
    serve_and_check(
        &service,
        &labelled(&jobs, "panic retry"),
        &reference,
        "panic",
    );
    println!("panic        contained: job failed typed, worker survived, retry bit-identical");

    // ---- Phase 5: worker death → typed error, supervised respawn. ----
    let death_rate = Arc::new(ChaosRate::new(death_model()));
    death_rate.arm_worker_death();
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = service
        .tune(request(ra_set(), 220, death_rate.clone()))
        .expect_err("worker death must fail the job");
    std::panic::set_hook(default_hook);
    assert!(
        matches!(err, ServeError::WorkerLost),
        "expected WorkerLost, got {err}"
    );
    wait_for("supervisor respawn", || {
        service.metrics().worker_restarts > restarts_before
    });
    wait_for("pool whole again", || {
        service.health() == HealthState::Healthy
    });
    serve_and_check(
        &service,
        &labelled(&jobs, "death retry"),
        &reference,
        "death",
    );
    println!(
        "death        worker respawned ({} restarts), retry bit-identical",
        service.metrics().worker_restarts
    );

    // ---- Phase 6: restart recovery after the whole chaos schedule. ----
    drop(gateway);
    let service = Arc::try_unwrap(service).unwrap_or_else(|_| panic!("gateway released"));
    service.shutdown(); // planned stop: flushes everything the faults dropped
    let service = TuningService::recover(config, &dir).expect("recover after chaos");
    let recovery = service.recovery_stats().expect("durable service");
    assert_eq!(
        recovery.replayed_jobs, 0,
        "every journaled job (the panicked one included) must be retired: {recovery:?}"
    );
    assert_eq!(recovery.quarantined, 0);
    assert_eq!(recovery.corrupt_streams, 0, "{recovery:?}");
    for (label, job) in &jobs {
        let served = service.tune(job.clone()).expect("post-restart serve");
        assert_eq!(
            plan_bytes(&served.plan),
            reference[*label],
            "{label}: post-restart answer diverged"
        );
        assert_eq!(
            served.source,
            PlanSource::CacheHit,
            "{label}: warm set must be answered from the recovered cache"
        );
    }
    assert_eq!(
        service.metrics().cold_solves,
        0,
        "no cold solve may occur on the warm set"
    );
    println!(
        "recovery     {} plans recovered, warm set bit-identical, 0 cold solves, 0 replays",
        recovery.loaded_plans
    );

    // ---- Phase 7: poison-job quarantine. ----
    {
        let (store, _) = PlanStore::open(&quarantine_dir).expect("open quarantine store");
        let submit = |job_id: u64, attempts: u32| JournalRecord::Submitted {
            job_id,
            tenant: "chaos".to_owned(),
            market: MarketId::DEFAULT,
            task_set: ea_set(),
            budget: 90,
            rate: RateSpec::Linear(LinearRate::new(1.5, 0.5).unwrap()),
            strategy: StrategyChoice::Auto,
            attempts,
        };
        // Job 1 has exhausted its replay budget (it kept killing the
        // process); job 2 is an ordinary in-flight job.
        store.record_journal(&submit(1, REPLAY_ATTEMPT_LIMIT));
        store.record_journal(&submit(2, 0));
        store.flush();
    }
    let quarantined_service =
        TuningService::recover(config, &quarantine_dir).expect("recover poisoned journal");
    let stats = quarantined_service.recovery_stats().expect("durable");
    assert_eq!(
        stats.quarantined, 1,
        "the poison job must be quarantined: {stats:?}"
    );
    assert_eq!(
        stats.replayed_jobs, 1,
        "the healthy job must replay: {stats:?}"
    );
    wait_for("replayed job completes", || {
        quarantined_service.metrics().completed() >= 1
    });
    quarantined_service.shutdown();
    // The next recovery proves the journal does not grow: the quarantined
    // job was terminally retired, the replayed one completed.
    let clean = TuningService::recover(config, &quarantine_dir).expect("second recovery");
    let stats = clean.recovery_stats().expect("durable");
    assert_eq!(
        (stats.replayed_jobs, stats.quarantined),
        (0, 0),
        "journal must be fully retired after quarantine + replay: {stats:?}"
    );
    clean.shutdown();
    println!("quarantine   poison job retired terminally, journal fully retired on re-recovery");

    // ---- Phase 8: drain surfaces as 503. ----
    let service = Arc::new(service);
    let gateway = Gateway::start(service.clone(), "127.0.0.1:0", GatewayConfig::default())
        .expect("bind drain gateway");
    let addr = gateway.local_addr();
    service.begin_drain();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "draining must take the node out: {body}");
    assert!(body.contains("\"draining\""), "{body}");
    println!("drain        /healthz 503 draining");
    gateway.shutdown();
    drop(service);

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "chaos smoke passed: {} catalogue jobs bit-identical under faults, degrade/heal cycles \
         observed, panic contained, worker respawned, poison job quarantined",
        jobs.len()
    );
}

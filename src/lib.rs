//! Umbrella crate for the crowdtune workspace: re-exports the five library
//! crates under one roof so examples and integration tests can depend on a
//! single package. See the workspace `README.md` for the architecture.

pub use crowdtune_bench as bench;
pub use crowdtune_core as core;
pub use crowdtune_crowd_db as crowd_db;
pub use crowdtune_market as market;
pub use crowdtune_platform as platform;
pub use crowdtune_serve as serve;

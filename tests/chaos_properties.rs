//! Seeded chaos property tests: random fault schedules interleaved with a
//! mixed EA/RA/HA workload must never change an answer, never wedge the
//! service, and never leave the journal growing without retirement.
//!
//! The offline build has no `proptest`, so the schedules are drawn from the
//! workspace's deterministic RNG (as in `tests/properties.rs`): every seed
//! replays the exact same interleaving of submissions, store faults
//! (fail-next / outage / disk-full / slow), worker panics and worker deaths.
//!
//! Invariants checked per schedule:
//!
//! 1. **Never a wrong plan** — every successfully served job is bit-compared
//!    against a fault-free reference service; a fault may fail a job with a
//!    typed error, it may never corrupt one.
//! 2. **No deadlock** — every blocking wait is deadline-bounded.
//! 3. **No unretired journal growth** — after the schedule, a restart replays
//!    whatever the faults left in flight, and a *second* restart must find a
//!    fully retired journal (zero replays, zero quarantines).

use crowdtune_chaos::{ChaosRate, ChaosWriteFault, WriteFault};
use crowdtune_core::money::Budget;
use crowdtune_core::rate::{LinearRate, RateModel};
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_serve::{
    JobRequest, MarketId, ServeError, ServiceConfig, StoreOptions, TuningService,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEEDS: u64 = 3;
const STEPS: usize = 40;

fn ra_set() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, 6).unwrap();
    set.add_tasks(ty, 5, 6).unwrap();
    set
}

fn ha_set() -> TaskSet {
    let mut set = TaskSet::new();
    let easy = set.add_type("easy", 3.0).unwrap();
    let hard = set.add_type("hard", 1.0).unwrap();
    set.add_tasks(easy, 3, 3).unwrap();
    set.add_tasks(hard, 5, 3).unwrap();
    set
}

fn ea_set() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("filter", 2.5).unwrap();
    set.add_tasks(ty, 3, 6).unwrap();
    set
}

fn request(set: TaskSet, budget: u64, model: Arc<dyn RateModel>) -> JobRequest {
    JobRequest {
        tenant: "chaos-prop".to_owned(),
        market: MarketId::DEFAULT,
        task_set: set,
        budget: Budget::units(budget),
        rate_model: model,
        strategy: StrategyChoice::Auto,
    }
}

/// The plain (never-armed) workload plus the inner curves of the two
/// chaos-wrapped models. References for *all* of them come from a fault-free
/// service; the chaos wrappers delegate their fingerprints to the inner
/// curves, so an armed job that survives must match the inner reference.
fn catalogue() -> Vec<(&'static str, JobRequest)> {
    let base: Arc<dyn RateModel> = Arc::new(LinearRate::new(1.5, 0.5).unwrap());
    let chaos_a: Arc<dyn RateModel> = Arc::new(LinearRate::new(1.25, 0.75).unwrap());
    let chaos_b: Arc<dyn RateModel> = Arc::new(LinearRate::new(1.75, 0.25).unwrap());
    vec![
        ("ra 160", request(ra_set(), 160, base.clone())),
        ("ra 240", request(ra_set(), 240, base.clone())),
        ("ha 120", request(ha_set(), 120, base.clone())),
        ("ha 180", request(ha_set(), 180, base.clone())),
        ("ea 70", request(ea_set(), 70, base.clone())),
        ("ea 110", request(ea_set(), 110, base)),
        ("chaos-a ra 200", request(ra_set(), 200, chaos_a)),
        ("chaos-b ha 150", request(ha_set(), 150, chaos_b)),
    ]
}

fn plan_bytes(plan: &crowdtune_core::tuner::TunedPlan) -> String {
    serde_json::to_string(plan).expect("plans serialize")
}

fn reference_answers(jobs: &[(&'static str, JobRequest)]) -> HashMap<&'static str, String> {
    let service = TuningService::start(ServiceConfig::default());
    let mut answers = HashMap::new();
    for (label, job) in jobs {
        let served = service.tune(job.clone()).expect("fault-free reference");
        answers.insert(*label, plan_bytes(&served.plan));
    }
    service.shutdown();
    answers
}

fn wait_for<F: Fn() -> bool>(what: &str, condition: F) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !condition() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "crowdtune-chaos-prop-{}-{seed}",
        std::process::id()
    ))
}

/// Runs one seeded fault schedule and checks the three invariants.
fn run_schedule(seed: u64) {
    let jobs = catalogue();
    let reference = reference_answers(&jobs);
    let dir = scratch_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);

    let config = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let fault = Arc::new(ChaosWriteFault::new());
    let chaos_rates: Vec<Arc<ChaosRate>> = jobs
        .iter()
        .filter(|(label, _)| label.starts_with("chaos"))
        .map(|(_, job)| Arc::new(ChaosRate::new(job.rate_model.clone())))
        .collect();
    let service = TuningService::recover_with(
        config,
        &dir,
        StoreOptions {
            write_fault: Some(fault.clone() as Arc<dyn WriteFault>),
            ..StoreOptions::default()
        },
    )
    .expect("open durable chaos service");

    // Armed solves panic by design; keep their backtraces out of test output.
    let silent_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut rng = StdRng::seed_from_u64(0xc4a0_5000 + seed);
    let plain: Vec<&(&'static str, JobRequest)> = jobs
        .iter()
        .filter(|(label, _)| !label.starts_with("chaos"))
        .collect();
    let armed_targets: Vec<&(&'static str, JobRequest)> = jobs
        .iter()
        .filter(|(label, _)| label.starts_with("chaos"))
        .collect();

    for step in 0..STEPS {
        match rng.gen_range(0u32..8) {
            // Plain submission under whatever fault is currently armed: the
            // store layer may be failing, the answer may not.
            0..=4 => {
                let (label, job) = plain[rng.gen_range(0..plain.len())];
                let served = service
                    .tune(job.clone())
                    .unwrap_or_else(|e| panic!("seed {seed} step {step}: {label} failed: {e}"));
                assert_eq!(
                    plan_bytes(&served.plan),
                    reference[label],
                    "seed {seed} step {step}: {label} diverged under faults"
                );
            }
            // Store fault action.
            5 => match rng.gen_range(0u32..4) {
                0 => fault.fail_next(rng.gen_range(1u32..4)),
                1 => fault.fail_all(),
                2 => fault.disk_full(),
                _ => fault.slow(Duration::from_micros(200)),
            },
            // Armed worker fault: the job must either fail with the typed
            // worker error or (if the arm was consumed elsewhere) serve the
            // bit-exact inner answer. Anything else is a violation.
            6 => {
                let index = rng.gen_range(0..armed_targets.len());
                let (label, job) = armed_targets[index];
                let rate = &chaos_rates[index];
                if rng.gen_range(0u32..2) == 0 {
                    rate.arm_panic();
                } else {
                    rate.arm_worker_death();
                }
                let mut armed_job = job.clone();
                armed_job.rate_model = rate.clone();
                match service.tune(armed_job) {
                    Err(ServeError::WorkerPanic { .. }) | Err(ServeError::WorkerLost) => {}
                    Err(other) => {
                        panic!("seed {seed} step {step}: {label} failed untyped: {other}")
                    }
                    Ok(served) => assert_eq!(
                        plan_bytes(&served.plan),
                        reference[label],
                        "seed {seed} step {step}: armed {label} served a wrong plan"
                    ),
                }
            }
            // Heal the store path.
            _ => fault.heal(),
        }
    }
    std::panic::set_hook(silent_hook);

    // Post-schedule sanity: healed, the full catalogue (chaos curves
    // included, disarmed) must serve bit-identically.
    fault.heal();
    for (label, job) in &jobs {
        let served = match service.tune(job.clone()) {
            Ok(served) => served,
            // A still-armed one-shot from the schedule may fire here once;
            // the retry must then succeed bit-exactly.
            Err(ServeError::WorkerPanic { .. }) | Err(ServeError::WorkerLost) => service
                .tune(job.clone())
                .unwrap_or_else(|e| panic!("seed {seed}: {label} retry failed: {e}")),
            Err(e) => panic!("seed {seed}: {label} failed after heal: {e}"),
        };
        assert_eq!(
            plan_bytes(&served.plan),
            reference[label],
            "seed {seed}: {label} diverged after heal"
        );
    }
    service.shutdown();

    // Restart #1: faults may have torn Submitted/Completed pairs — recovery
    // replays those jobs (bounded by the attempt cap). Let the replays
    // finish, then stop cleanly.
    let recovered = TuningService::recover(config, &dir).expect("first recovery");
    let stats = recovered.recovery_stats().expect("durable service");
    assert_eq!(
        stats.quarantined, 0,
        "seed {seed}: one replay round must never exhaust the attempt cap: {stats:?}"
    );
    let replayed = stats.replayed_jobs;
    wait_for("replayed jobs to finish", || {
        recovered.metrics().completed() + recovered.metrics().solve_errors >= replayed
    });
    // The warm set must have survived the schedule bit-exactly.
    for (label, job) in &jobs {
        let served = recovered
            .tune(job.clone())
            .unwrap_or_else(|e| panic!("seed {seed}: {label} failed post-restart: {e}"));
        assert_eq!(
            plan_bytes(&served.plan),
            reference[label],
            "seed {seed}: {label} diverged across the restart"
        );
    }
    recovered.shutdown();

    // Restart #2: the journal must be fully retired — no replays left, no
    // quarantine, i.e. no unretired journal growth from the whole schedule.
    let clean = TuningService::recover(config, &dir).expect("second recovery");
    let stats = clean.recovery_stats().expect("durable service");
    assert_eq!(
        (stats.replayed_jobs, stats.quarantined),
        (0, 0),
        "seed {seed}: journal not fully retired after replay round: {stats:?}"
    );
    clean.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn random_fault_schedules_never_corrupt_answers_or_journal() {
    for seed in 0..SEEDS {
        run_schedule(seed);
    }
}

//! Property-based tests (proptest) over the core invariants of the tuning
//! machinery: feasibility of every strategy on randomly generated problems,
//! monotonicity of the optimal objective in the budget, conservation of spread
//! budgets, and consistency of the statistical primitives.

use crowdtune_core::algorithms::{
    spread_evenly, EvenAllocation, HeterogeneousAlgorithm, RepetitionAlgorithm,
    RepetitionEvenAllocation, TaskEvenAllocation,
};
use crowdtune_core::latency::{JobLatencyEstimator, PhaseSelection};
use crowdtune_core::money::Budget;
use crowdtune_core::prelude::*;
use crowdtune_core::stats::{expected_max_erlang, harmonic, Erlang, Exponential};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy generating a random heterogeneous task set together with a
/// feasible budget.
fn arbitrary_problem() -> impl Strategy<Value = (TaskSet, u64)> {
    (
        1usize..6,          // tasks per group
        1usize..6,          // tasks in the second group
        1u32..5,            // repetitions group 1
        1u32..5,            // repetitions group 2
        1u32..40,           // extra budget per repetition slot
        0.5f64..5.0,        // processing rate 1
        0.5f64..5.0,        // processing rate 2
    )
        .prop_map(|(n1, n2, r1, r2, extra, lp1, lp2)| {
            let mut set = TaskSet::new();
            let t1 = set.add_type("t1", lp1).unwrap();
            let t2 = set.add_type("t2", lp2).unwrap();
            set.add_tasks(t1, r1, n1).unwrap();
            set.add_tasks(t2, r2, n2).unwrap();
            let slots = set.total_repetitions();
            let budget = slots + u64::from(extra) * slots / 2;
            (set, budget)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy produces a feasible allocation on every generated
    /// problem: covers all tasks, pays ≥1 unit per repetition, stays within
    /// budget.
    #[test]
    fn all_strategies_produce_feasible_allocations((set, budget) in arbitrary_problem()) {
        let problem = HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        ).unwrap();
        let strategies: Vec<Box<dyn TuningStrategy>> = vec![
            Box::new(EvenAllocation::new().without_objective()),
            Box::new(RepetitionAlgorithm::new()),
            Box::new(HeterogeneousAlgorithm::new()),
            Box::new(TaskEvenAllocation::new()),
            Box::new(RepetitionEvenAllocation::new()),
        ];
        for strategy in strategies {
            let result = strategy.tune(&problem).unwrap();
            problem.check_feasible(&result.allocation).unwrap();
        }
    }

    /// The optimal strategy's analytic expected latency never increases when
    /// the budget grows (on the same task set).
    #[test]
    fn optimal_latency_is_monotone_in_budget((set, budget) in arbitrary_problem()) {
        let model: Arc<dyn RateModel> = Arc::new(LinearRate::moderate());
        let small = HTuningProblem::new(set.clone(), Budget::units(budget), model.clone()).unwrap();
        let large = HTuningProblem::new(set, Budget::units(budget * 2), model).unwrap();
        let estimate = |problem: &HTuningProblem| {
            let strategy = crowdtune_core::algorithms::optimal_strategy_for(problem);
            let result = strategy.tune(problem).unwrap();
            let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
            estimator
                .analytic_expected_latency(&result.allocation, PhaseSelection::OnHoldOnly)
                .unwrap()
        };
        let small_latency = estimate(&small);
        let large_latency = estimate(&large);
        prop_assert!(large_latency <= small_latency * 1.001 + 1e-9,
            "doubling the budget must not slow the job: {small_latency} -> {large_latency}");
    }

    /// `spread_evenly` conserves the total and keeps slots within one unit of
    /// each other.
    #[test]
    fn spread_evenly_conserves_budget(total in 1u64..10_000, slots in 1usize..200) {
        prop_assume!(total >= slots as u64);
        let spread = spread_evenly(total, slots).unwrap();
        prop_assert_eq!(spread.iter().sum::<u64>(), total);
        let min = spread.iter().min().unwrap();
        let max = spread.iter().max().unwrap();
        prop_assert!(max - min <= 1);
        prop_assert!(*min >= 1);
    }

    /// Exponential order statistics: the expected maximum of n i.i.d.
    /// exponentials equals `H_n / λ` and grows with n.
    #[test]
    fn exponential_expected_max_matches_harmonic(n in 1u64..200, rate in 0.1f64..20.0) {
        let dist = Exponential::new(rate).unwrap();
        let expected = dist.expected_max(n);
        prop_assert!((expected - harmonic(n) / rate).abs() < 1e-9);
        prop_assert!(dist.expected_max(n + 1) >= expected);
    }

    /// Erlang CDF and survival always sum to one and the CDF is monotone.
    #[test]
    fn erlang_cdf_properties(shape in 1u32..30, rate in 0.1f64..10.0, t in 0.0f64..50.0) {
        let dist = Erlang::new(shape, rate).unwrap();
        let cdf = dist.cdf(t);
        prop_assert!((0.0..=1.0).contains(&cdf));
        prop_assert!((cdf + dist.survival(t) - 1.0).abs() < 1e-9);
        prop_assert!(dist.cdf(t + 0.5) + 1e-12 >= cdf);
    }

    /// The numerically integrated expected maximum of Erlang latencies is
    /// bounded between one task's mean and the group-size multiple of it, and
    /// is monotone in the group size.
    #[test]
    fn erlang_group_max_bounds(n in 1u64..12, shape in 1u32..6, rate in 0.2f64..5.0) {
        let mean = f64::from(shape) / rate;
        let value = expected_max_erlang(n, shape, rate).unwrap();
        prop_assert!(value + 1e-9 >= mean);
        prop_assert!(value <= mean * n as f64 + 1e-9);
        let larger = expected_max_erlang(n + 1, shape, rate).unwrap();
        prop_assert!(larger + 1e-9 >= value);
    }

    /// Payments arithmetic: an even allocation built from any repetition
    /// profile spends exactly what it reports and never less than one unit
    /// per repetition.
    #[test]
    fn uniform_allocation_accounting(reps in proptest::collection::vec(1u32..6, 1..20), pay in 1u64..50) {
        let allocation = Allocation::uniform(&reps, Payment::units(pay));
        let slots: u64 = reps.iter().map(|&r| u64::from(r)).sum();
        prop_assert_eq!(allocation.total_spent(), slots * pay);
        prop_assert!(allocation.all_positive());
        prop_assert_eq!(allocation.task_count(), reps.len());
    }
}

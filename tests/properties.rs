//! Property-based tests over the core invariants of the tuning machinery:
//! feasibility of every strategy on randomly generated problems, monotonicity
//! of the optimal objective in the budget, conservation of spread budgets,
//! and consistency of the statistical primitives.
//!
//! The offline build has no `proptest`, so the properties run over seeded
//! random cases drawn from the workspace's deterministic RNG: every failure
//! reproduces exactly, and each property checks the same invariant the
//! original proptest version expressed.

use crowdtune_core::algorithms::{
    spread_evenly, EvenAllocation, HeterogeneousAlgorithm, RepetitionAlgorithm,
    RepetitionEvenAllocation, TaskEvenAllocation,
};
use crowdtune_core::latency::{JobLatencyEstimator, PhaseSelection};
use crowdtune_core::money::Budget;
use crowdtune_core::prelude::*;
use crowdtune_core::stats::{expected_max_erlang, harmonic, Erlang, Exponential};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: u64 = 48;

/// Generates a random heterogeneous task set together with a feasible budget.
fn arbitrary_problem(rng: &mut StdRng) -> (TaskSet, u64) {
    let n1 = rng.gen_range(1usize..6);
    let n2 = rng.gen_range(1usize..6);
    let r1 = rng.gen_range(1u32..5);
    let r2 = rng.gen_range(1u32..5);
    let extra = rng.gen_range(1u32..40);
    let lp1 = rng.gen_range(0.5f64..5.0);
    let lp2 = rng.gen_range(0.5f64..5.0);

    let mut set = TaskSet::new();
    let t1 = set.add_type("t1", lp1).unwrap();
    let t2 = set.add_type("t2", lp2).unwrap();
    set.add_tasks(t1, r1, n1).unwrap();
    set.add_tasks(t2, r2, n2).unwrap();
    let slots = set.total_repetitions();
    let budget = slots + u64::from(extra) * slots / 2;
    (set, budget)
}

/// Every strategy produces a feasible allocation on every generated problem:
/// covers all tasks, pays ≥1 unit per repetition, stays within budget.
#[test]
fn all_strategies_produce_feasible_allocations() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (set, budget) = arbitrary_problem(&mut rng);
        let problem = HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap();
        let strategies: Vec<Box<dyn TuningStrategy>> = vec![
            Box::new(EvenAllocation::new().without_objective()),
            Box::new(RepetitionAlgorithm::new()),
            Box::new(HeterogeneousAlgorithm::new()),
            Box::new(TaskEvenAllocation::new()),
            Box::new(RepetitionEvenAllocation::new()),
        ];
        for strategy in strategies {
            let result = strategy.tune(&problem).unwrap();
            problem
                .check_feasible(&result.allocation)
                .unwrap_or_else(|e| panic!("seed {seed}, strategy {}: {e}", result.strategy));
        }
    }
}

/// The optimal strategy's analytic expected latency never increases when the
/// budget grows (on the same task set).
#[test]
fn optimal_latency_is_monotone_in_budget() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let (set, budget) = arbitrary_problem(&mut rng);
        let model: Arc<dyn RateModel> = Arc::new(LinearRate::moderate());
        let small = HTuningProblem::new(set.clone(), Budget::units(budget), model.clone()).unwrap();
        let large = HTuningProblem::new(set, Budget::units(budget * 2), model).unwrap();
        let estimate = |problem: &HTuningProblem| {
            let strategy = crowdtune_core::algorithms::optimal_strategy_for(problem);
            let result = strategy.tune(problem).unwrap();
            let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
            estimator
                .analytic_expected_latency(&result.allocation, PhaseSelection::OnHoldOnly)
                .unwrap()
        };
        let small_latency = estimate(&small);
        let large_latency = estimate(&large);
        assert!(
            large_latency <= small_latency * 1.001 + 1e-9,
            "seed {seed}: doubling the budget must not slow the job: \
             {small_latency} -> {large_latency}"
        );
    }
}

/// `spread_evenly` conserves the total and keeps slots within one unit of
/// each other.
#[test]
fn spread_evenly_conserves_budget() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2_000 + seed);
        let total = rng.gen_range(1u64..10_000);
        let slots = rng.gen_range(1usize..200);
        if total < slots as u64 {
            continue;
        }
        let spread = spread_evenly(total, slots).unwrap();
        assert_eq!(spread.iter().sum::<u64>(), total, "seed {seed}");
        let min = spread.iter().min().unwrap();
        let max = spread.iter().max().unwrap();
        assert!(max - min <= 1, "seed {seed}");
        assert!(*min >= 1, "seed {seed}");
    }
}

/// Exponential order statistics: the expected maximum of n i.i.d.
/// exponentials equals `H_n / λ` and grows with n.
#[test]
fn exponential_expected_max_matches_harmonic() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3_000 + seed);
        let n = rng.gen_range(1u64..200);
        let rate = rng.gen_range(0.1f64..20.0);
        let dist = Exponential::new(rate).unwrap();
        let expected = dist.expected_max(n);
        assert!(
            (expected - harmonic(n) / rate).abs() < 1e-9,
            "seed {seed}: n={n} rate={rate}"
        );
        assert!(dist.expected_max(n + 1) >= expected, "seed {seed}");
    }
}

/// Erlang CDF and survival always sum to one and the CDF is monotone.
#[test]
fn erlang_cdf_properties() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4_000 + seed);
        let shape = rng.gen_range(1u32..30);
        let rate = rng.gen_range(0.1f64..10.0);
        let t = rng.gen_range(0.0f64..50.0);
        let dist = Erlang::new(shape, rate).unwrap();
        let cdf = dist.cdf(t);
        assert!((0.0..=1.0).contains(&cdf), "seed {seed}");
        assert!(
            (cdf + dist.survival(t) - 1.0).abs() < 1e-9,
            "seed {seed}: shape={shape} rate={rate} t={t}"
        );
        assert!(dist.cdf(t + 0.5) + 1e-12 >= cdf, "seed {seed}");
    }
}

/// The numerically integrated expected maximum of Erlang latencies is bounded
/// between one task's mean and the group-size multiple of it, and is monotone
/// in the group size.
#[test]
fn erlang_group_max_bounds() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5_000 + seed);
        let n = rng.gen_range(1u64..12);
        let shape = rng.gen_range(1u32..6);
        let rate = rng.gen_range(0.2f64..5.0);
        let mean = f64::from(shape) / rate;
        let value = expected_max_erlang(n, shape, rate).unwrap();
        assert!(value + 1e-9 >= mean, "seed {seed}");
        assert!(value <= mean * n as f64 + 1e-9, "seed {seed}");
        let larger = expected_max_erlang(n + 1, shape, rate).unwrap();
        assert!(larger + 1e-9 >= value, "seed {seed}");
    }
}

/// Payments arithmetic: an even allocation built from any repetition profile
/// spends exactly what it reports and never less than one unit per
/// repetition.
#[test]
fn uniform_allocation_accounting() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6_000 + seed);
        let task_count = rng.gen_range(1usize..20);
        let reps: Vec<u32> = (0..task_count).map(|_| rng.gen_range(1u32..6)).collect();
        let pay = rng.gen_range(1u64..50);
        let allocation = Allocation::uniform(&reps, Payment::units(pay));
        let slots: u64 = reps.iter().map(|&r| u64::from(r)).sum();
        assert_eq!(allocation.total_spent(), slots * pay, "seed {seed}");
        assert!(allocation.all_positive(), "seed {seed}");
        assert_eq!(allocation.task_count(), reps.len(), "seed {seed}");
    }
}

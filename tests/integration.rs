//! Cross-crate integration tests: the tuner (`crowdtune-core`), the
//! marketplace simulator (`crowdtune-market`), the AMT-like platform
//! (`crowdtune-platform`) and the crowd-powered operators
//! (`crowdtune-crowd-db`) working together, exactly as the examples and the
//! figure binaries use them.

use crowdtune_bench::{run_panel, SyntheticConfig, SyntheticScenario};
use crowdtune_core::prelude::*;
use crowdtune_crowd_db::executor::{CrowdExecutor, ExecutorConfig};
use crowdtune_crowd_db::item::ItemSet;
use crowdtune_crowd_db::operators::{CrowdFilter, CrowdMax, CrowdSort};
use crowdtune_crowd_db::oracle::OracleConfig;
use crowdtune_market::{MarketConfig, MarketSimulator};
use crowdtune_platform::campaign::{Campaign, CampaignRunner, CampaignTaskSpec};
use crowdtune_platform::sandbox::{MturkSandbox, ReviewPolicy};
use crowdtune_platform::{AmtCalibration, DotImageGenerator};
use std::sync::Arc;

/// Tuned allocations should beat the baselines not only in the analytic
/// objective but also under full market simulation — the end-to-end claim of
/// Figure 2.
#[test]
fn tuned_allocation_beats_baselines_under_simulation() {
    let mut tasks = TaskSet::new();
    let ty = tasks.add_type("vote", 2.0).unwrap();
    tasks.add_tasks(ty, 3, 10).unwrap();
    tasks.add_tasks(ty, 5, 10).unwrap();
    let market: Arc<dyn RateModel> = Arc::new(LinearRate::unit_slope());
    let problem = HTuningProblem::new(tasks, Budget::units(400), market.clone()).unwrap();

    let optimal = RepetitionAlgorithm::new().tune(&problem).unwrap();
    let task_even = TaskEvenAllocation::new().tune(&problem).unwrap();

    let simulator = MarketSimulator::new(MarketConfig::independent(5));
    let trials = 400;
    let opt_latency = simulator
        .mean_job_latency(problem.task_set(), &optimal.allocation, &market, trials)
        .unwrap();
    let te_latency = simulator
        .mean_job_latency(problem.task_set(), &task_even.allocation, &market, trials)
        .unwrap();
    assert!(
        opt_latency <= te_latency * 1.05,
        "RA ({opt_latency:.3}) should not lose to task-even ({te_latency:.3}) by more than noise"
    );
}

/// The analytic estimator and the discrete-event simulator must agree on the
/// expected job latency for the same allocation.
#[test]
fn analytic_estimator_agrees_with_simulator() {
    let mut tasks = TaskSet::new();
    let easy = tasks.add_type("easy", 3.0).unwrap();
    let hard = tasks.add_type("hard", 1.5).unwrap();
    tasks.add_tasks(easy, 2, 6).unwrap();
    tasks.add_tasks(hard, 4, 4).unwrap();
    let market: Arc<dyn RateModel> = Arc::new(LinearRate::moderate());
    let allocation = Allocation::uniform(&tasks.repetition_counts(), Payment::units(3));

    let estimator = JobLatencyEstimator::new(&tasks, &market);
    let analytic = estimator
        .analytic_expected_latency(&allocation, PhaseSelection::Both)
        .unwrap();
    let simulator = MarketSimulator::new(MarketConfig::independent(11));
    let simulated = simulator
        .mean_job_latency(&tasks, &allocation, &market, 4_000)
        .unwrap();
    assert!(
        (analytic - simulated).abs() / simulated < 0.06,
        "analytic {analytic:.3} vs simulated {simulated:.3}"
    );
}

/// A probe campaign run on the simulated market recovers the market's true
/// linearity parameters well enough to support the hypothesis test.
#[test]
fn probe_recovers_market_parameters_end_to_end() {
    let true_market = LinearRate::new(0.5, 1.0).unwrap();
    let mut observations = Vec::new();
    for (index, price) in [2u64, 5, 9, 14].iter().enumerate() {
        let mut probe = TaskSet::new();
        let ty = probe.add_type("probe", 1000.0).unwrap();
        probe.add_task(ty, 60).unwrap();
        let allocation = Allocation::uniform(&probe.repetition_counts(), Payment::units(*price));
        let simulator = MarketSimulator::new(
            MarketConfig::independent(300 + index as u64).without_processing(),
        );
        let report = simulator.run(&probe, &allocation, &true_market).unwrap();
        observations.push(PriceObservation::new(
            *price,
            report.acceptance_epochs(),
            vec![],
        ));
    }
    let campaign = ProbeCampaign::new(observations);
    let fit = campaign.fit_linearity().unwrap();
    assert!(fit.supports_hypothesis(0.9), "R² = {}", fit.r_squared);
    assert!((fit.k - 0.5).abs() < 0.2, "slope {}", fit.k);
}

/// The full crowd-DB pipeline answers all three operator types correctly with
/// a reliable crowd and stays within budget.
#[test]
fn crowd_db_operators_end_to_end() {
    let items = ItemSet::from_scores(vec![
        ("a", 2.0),
        ("b", 9.0),
        ("c", 5.0),
        ("d", 7.0),
        ("e", 1.0),
        ("f", 4.0),
    ]);
    let config = ExecutorConfig {
        oracle: OracleConfig {
            reliability: 3.0,
            seed: 2,
        },
        market: MarketConfig::independent(2),
        ..ExecutorConfig::default()
    };
    let executor = CrowdExecutor::new(Arc::new(LinearRate::unit_slope()), config);

    let sort = executor
        .run_sort(&items, CrowdSort::new(5).unwrap(), Budget::units(500))
        .unwrap();
    let agreement = CrowdSort::ranking_agreement(&sort.result, &items.ground_truth_ranking());
    assert!(agreement >= 0.85, "sort agreement {agreement}");
    assert!(sort.stats.spent_units <= 500);

    let filter = executor
        .run_filter(
            &items,
            CrowdFilter::new(4.5, 5).unwrap(),
            Budget::units(200),
        )
        .unwrap();
    let truth = items.ground_truth_filter(4.5);
    let (precision, recall) = CrowdFilter::precision_recall(&filter.result, &truth);
    assert!(
        precision >= 0.6 && recall >= 0.6,
        "p={precision} r={recall}"
    );

    let max = executor
        .run_max(&items, CrowdMax::new(5).unwrap(), Budget::units(300))
        .unwrap();
    assert_eq!(Some(max.result), items.ground_truth_max());
}

/// The AMT-like sandbox behaves like a budget-conserving platform: reserved
/// funds never go negative and the paid total matches the approved
/// assignments.
#[test]
fn sandbox_accounting_is_consistent() {
    let mut sandbox = MturkSandbox::new(5_000, 9);
    let mut generator = DotImageGenerator::new(9);
    for _ in 0..5 {
        let spec = generator.filter_hit(4, 10);
        sandbox.create_hit(spec, 6, 4).unwrap();
    }
    sandbox.execute().unwrap();
    let total = sandbox.all_assignments().len();
    assert_eq!(total, 20);
    let (approved, rejected) = sandbox
        .auto_review(ReviewPolicy::AccuracyAtLeast(0.75))
        .unwrap();
    assert_eq!(approved + rejected, total);
    assert_eq!(sandbox.account().paid_cents, approved as u64 * 6);
    assert!(sandbox.account().balance_cents <= 5_000);
}

/// The calibrated campaign runner reproduces the qualitative shapes of
/// Figures 4 and 5: more money → faster uptake, more difficulty → slower
/// processing.
#[test]
fn calibrated_campaigns_have_paper_shapes() {
    let calibration = AmtCalibration::paper();
    assert!(calibration.on_hold_rate(12.0, 4).unwrap() > calibration.on_hold_rate(5.0, 4).unwrap());
    assert!(calibration.mean_processing_secs(8) > calibration.mean_processing_secs(4));

    let runner = CampaignRunner::new(33);
    let outcome = runner
        .run(&Campaign::new(
            vec![CampaignTaskSpec {
                count: 10,
                votes: 6,
                threshold: 10,
                reward_cents: 8,
                repetitions: 3,
            }],
            33,
        ))
        .unwrap();
    assert_eq!(outcome.assignments.len(), 30);
    assert!(outcome.mean_accuracy().unwrap() > 0.5);
    assert!(outcome.job_latency_secs > 0.0);
}

/// A reduced Figure 2 panel run through the bench harness keeps the paper's
/// headline result: the optimal strategy dominates the baselines.
#[test]
fn figure2_panel_smoke_test() {
    let config = SyntheticConfig {
        tasks: 16,
        budgets: vec![160, 320, 640],
    };
    for scenario in SyntheticScenario::ALL {
        let panel = run_panel(scenario, PaperRateModel::Moderate, &config).unwrap();
        assert!(
            panel.optimal_dominates(0.02),
            "{scenario:?}: {:?}",
            panel.rows
        );
    }
}

//! Property tests of the budget-indexed marginal DP over randomly generated
//! problems (seeded, so every failure reproduces):
//!
//! * the incremental separable path ([`marginal_budget_dp_separable`])
//!   returns **bit-identical** `DpOutcome`s to the generic closure path run
//!   on the equivalent summing objective — same payments, bit-equal
//!   objective, same spend — at every budget level and across warm-start
//!   extensions;
//! * the same holds with the real expected-group-latency terms RA optimises
//!   (numerical integrations behind a memo cache), not just synthetic
//!   functions.

use crowdtune_core::algorithms::{
    marginal_budget_dp, marginal_budget_dp_separable, DpOutcome, DpTable, GroupLatencyCache,
    MAX_TABLE_PAYMENT,
};
use crowdtune_core::latency::group_phase1_expected;
use crowdtune_core::money::Budget;
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::{LinearRate, RateModel};
use crowdtune_core::task::TaskSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: u64 = 48;

fn assert_bit_identical(closure: &DpOutcome, separable: &DpOutcome, context: &str) {
    assert_eq!(closure.payments, separable.payments, "{context}: payments");
    assert_eq!(
        closure.objective.to_bits(),
        separable.objective.to_bits(),
        "{context}: objective {} vs {}",
        closure.objective,
        separable.objective
    );
    assert_eq!(
        closure.extra_spent, separable.extra_spent,
        "{context}: extra_spent"
    );
}

/// A random but deterministic per-group term. Mixes convex decreasing curves
/// with occasional flat (plateau) and non-monotone shapes so the DP's
/// tie-breaking and non-greedy paths are both exercised.
fn synthetic_term(
    coeffs: &[(f64, f64, u8)],
) -> impl FnMut(usize, u64) -> crowdtune_core::error::Result<f64> + '_ {
    move |group: usize, payment: u64| {
        let (c, d, shape) = coeffs[group];
        let p = payment as f64;
        Ok(match shape {
            0 => c / (p + d),                            // convex decreasing (latency-like)
            1 => c,                                      // flat: every increment is a plateau
            _ => c / (p + d) + (p * d).sin() * 0.01 * c, // mildly non-monotone
        })
    }
}

#[test]
fn separable_dp_is_bit_identical_to_closure_dp_on_random_problems() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = rng.gen_range(1usize..6);
        let unit_costs: Vec<u64> = (0..groups).map(|_| rng.gen_range(1u64..9)).collect();
        let extra_budget = rng.gen_range(0u64..120);
        let coeffs: Vec<(f64, f64, u8)> = (0..groups)
            .map(|_| {
                (
                    rng.gen_range(0.1f64..10.0),
                    rng.gen_range(0.0f64..4.0),
                    rng.gen_range(0u32..4) as u8,
                )
            })
            .collect();

        let mut term = synthetic_term(&coeffs);
        let closure_table = DpTable::build(&unit_costs, extra_budget, |payments| {
            let mut sum = 0.0;
            for (i, &p) in payments.iter().enumerate() {
                sum += synthetic_term(&coeffs)(i, p)?;
            }
            Ok(sum)
        })
        .unwrap();
        let separable_table =
            DpTable::build_separable(&unit_costs, extra_budget, &mut term).unwrap();

        // Every prefix level must agree, not just the final budget.
        for level in 0..=extra_budget {
            assert_bit_identical(
                &closure_table.outcome_at(level).unwrap(),
                &separable_table.outcome_at(level).unwrap(),
                &format!("seed {seed} level {level}"),
            );
        }
    }
}

#[test]
fn separable_dp_warm_start_extensions_stay_bit_identical() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let groups = rng.gen_range(1usize..5);
        let unit_costs: Vec<u64> = (0..groups).map(|_| rng.gen_range(1u64..7)).collect();
        let first_budget = rng.gen_range(0u64..50);
        let second_budget = first_budget + rng.gen_range(1u64..60);
        let coeffs: Vec<(f64, f64, u8)> = (0..groups)
            .map(|_| {
                (
                    rng.gen_range(0.1f64..10.0),
                    rng.gen_range(0.0f64..4.0),
                    rng.gen_range(0u32..4) as u8,
                )
            })
            .collect();

        // Warm-started tables on both paths...
        let mut closure_warm = DpTable::build(&unit_costs, first_budget, |payments| {
            let mut sum = 0.0;
            for (i, &p) in payments.iter().enumerate() {
                sum += synthetic_term(&coeffs)(i, p)?;
            }
            Ok(sum)
        })
        .unwrap();
        closure_warm
            .extend_to(second_budget, |payments| {
                let mut sum = 0.0;
                for (i, &p) in payments.iter().enumerate() {
                    sum += synthetic_term(&coeffs)(i, p)?;
                }
                Ok(sum)
            })
            .unwrap();
        let mut separable_warm =
            DpTable::build_separable(&unit_costs, first_budget, synthetic_term(&coeffs)).unwrap();
        separable_warm
            .extend_to_separable(second_budget, synthetic_term(&coeffs))
            .unwrap();

        // ...must agree with a cold separable build at every level.
        let cold =
            DpTable::build_separable(&unit_costs, second_budget, synthetic_term(&coeffs)).unwrap();
        for level in 0..=second_budget {
            let context = format!("seed {seed} level {level}");
            assert_bit_identical(
                &closure_warm.outcome_at(level).unwrap(),
                &separable_warm.outcome_at(level).unwrap(),
                &context,
            );
            assert_bit_identical(
                &cold.outcome_at(level).unwrap(),
                &separable_warm.outcome_at(level).unwrap(),
                &context,
            );
        }
    }
}

/// The same bit-identity with RA's real objective: expected phase-1 group
/// latencies behind the memoizing cache, over random Scenario-II task sets.
#[test]
fn separable_dp_matches_closure_dp_on_real_latency_objectives() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let group_count = rng.gen_range(1usize..4);
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", rng.gen_range(0.5f64..4.0)).unwrap();
        let mut reps = 0u32;
        for _ in 0..group_count {
            reps += rng.gen_range(1u32..4);
            set.add_tasks(ty, reps, rng.gen_range(1usize..5)).unwrap();
        }
        let slots = set.total_repetitions();
        let budget = slots + rng.gen_range(0u64..20) * slots / 3;
        let slope = rng.gen_range(0.2f64..3.0);
        let intercept = rng.gen_range(0.0f64..2.0);
        let model = LinearRate::new(slope, intercept).unwrap();
        let problem = HTuningProblem::new(set, Budget::units(budget), Arc::new(model)).unwrap();

        let groups = problem.task_set().group_by_repetitions();
        let unit_costs: Vec<u64> = groups.iter().map(|g| g.unit_increment_cost()).collect();
        let extra_budget = problem.discretionary_budget();

        let closure_cache = GroupLatencyCache::new(&model, &groups);
        let closure = marginal_budget_dp(&unit_costs, extra_budget, |payments| {
            let mut sum = 0.0;
            for (i, &p) in payments.iter().enumerate() {
                sum += closure_cache.phase1(i, p)?;
            }
            Ok(sum)
        })
        .unwrap();

        let separable_cache = GroupLatencyCache::new(&model, &groups);
        let separable =
            marginal_budget_dp_separable(&unit_costs, extra_budget, |group, payment| {
                separable_cache.phase1(group, payment)
            })
            .unwrap();

        assert_bit_identical(&closure, &separable, &format!("seed {seed}"));
    }
}

/// The process-wide interned latency tables are **bit-equal** to hermetic
/// per-job evaluation — for every cache instance over the same curve, and
/// including payments above the shared-table cap (the private lazy spill).
#[test]
fn interned_latency_tables_match_hermetic_fills() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", rng.gen_range(0.5f64..4.0)).unwrap();
        let mut reps = 0u32;
        for _ in 0..rng.gen_range(1usize..4) {
            reps += rng.gen_range(1u32..4);
            set.add_tasks(ty, reps, rng.gen_range(1usize..4)).unwrap();
        }
        let groups = set.group_by_repetitions();
        let model =
            LinearRate::new(rng.gen_range(0.2f64..3.0), rng.gen_range(0.1f64..2.0)).unwrap();

        // Two independent caches over the same curve: the second reads what
        // the first computed through the shared store.
        let first = GroupLatencyCache::new(&model, &groups);
        let second = GroupLatencyCache::new(&model, &groups);
        for (g, group) in groups.iter().enumerate() {
            for payment in [
                1u64,
                2,
                7,
                63,
                MAX_TABLE_PAYMENT,
                MAX_TABLE_PAYMENT + 1,
                MAX_TABLE_PAYMENT + 911,
            ] {
                let hermetic = group_phase1_expected(
                    group.size() as u64,
                    group.repetitions,
                    model.on_hold_rate(payment as f64),
                )
                .unwrap();
                let via_first = first.phase1(g, payment).unwrap();
                let via_second = second.phase1(g, payment).unwrap();
                let context = format!("seed {seed} group {g} payment {payment}");
                assert_eq!(via_first.to_bits(), hermetic.to_bits(), "{context}");
                assert_eq!(via_second.to_bits(), hermetic.to_bits(), "{context}");
            }
        }
    }
}

/// Concurrent workers racing to fill the same interned table all observe the
/// hermetic value, bit-exactly — fills are idempotent because the value is a
/// deterministic function of the key.
#[test]
fn concurrent_interned_fills_are_bit_stable() {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 1.7).unwrap();
    set.add_tasks(ty, 3, 4).unwrap();
    set.add_tasks(ty, 5, 4).unwrap();
    let groups = set.group_by_repetitions();
    // A slope no other test uses, so every thread starts from a cold table.
    let model = LinearRate::new(1.618, 0.577).unwrap();

    let observed: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let groups = &groups;
                let model = &model;
                scope.spawn(move || {
                    let cache = GroupLatencyCache::new(model, groups);
                    let mut bits = Vec::new();
                    for g in 0..groups.len() {
                        for payment in 1..=40u64 {
                            bits.push(cache.phase1(g, payment).unwrap().to_bits());
                        }
                    }
                    bits
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut index = 0usize;
    for (g, group) in groups.iter().enumerate() {
        for payment in 1..=40u64 {
            let hermetic = group_phase1_expected(
                group.size() as u64,
                group.repetitions,
                model.on_hold_rate(payment as f64),
            )
            .unwrap()
            .to_bits();
            for (worker, bits) in observed.iter().enumerate() {
                assert_eq!(
                    bits[index], hermetic,
                    "worker {worker} group {g} payment {payment}"
                );
            }
            index += 1;
        }
    }
}

//! The probe protocol: data structures describing probe campaigns and the
//! estimators that turn probe observations into HPU running parameters.
//!
//! Section 3.3.1 describes a "probe" program that publishes trivially-fast
//! tasks at several prices so that their latency is dominated by the on-hold
//! phase; the acceptance epochs then identify the on-hold rate at each price.
//! A second probe with real (non-trivial) tasks identifies the overall rate,
//! and the processing rate is recovered as the difference.
//!
//! This module is market-agnostic: it defines the plan and observation types
//! plus the estimators. Executing a plan against the simulated marketplace
//! lives in the `crowdtune-market` / `crowdtune-platform` crates.

use crate::error::{CoreError, Result};
use crate::inference::linearity::{fit_linearity, LinearityFit, PriceRatePoint};
use crate::inference::mle::{
    estimate_rate_from_durations, estimate_rate_random_period, RateEstimate,
};
use serde::{Deserialize, Serialize};

/// A plan for probing the market: which prices to try and how many sample
/// tasks to publish at each price.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbePlan {
    /// Prices (in payment units) to probe.
    pub prices: Vec<u64>,
    /// Number of sample tasks to publish at each price.
    pub tasks_per_price: u32,
}

impl ProbePlan {
    /// Creates a plan, requiring at least two distinct prices (needed for the
    /// linearity fit) and at least one task per price.
    pub fn new(prices: Vec<u64>, tasks_per_price: u32) -> Result<Self> {
        if prices.len() < 2 {
            return Err(CoreError::InsufficientSamples {
                provided: prices.len(),
                required: 2,
            });
        }
        if tasks_per_price == 0 {
            return Err(CoreError::invalid_argument(
                "at least one task per price is required".to_owned(),
            ));
        }
        let mut sorted = prices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != prices.len() {
            return Err(CoreError::invalid_argument(
                "probe prices must be distinct".to_owned(),
            ));
        }
        Ok(ProbePlan {
            prices,
            tasks_per_price,
        })
    }

    /// Total number of probe tasks the plan will publish.
    pub fn total_tasks(&self) -> u64 {
        self.prices.len() as u64 * u64::from(self.tasks_per_price)
    }

    /// Total budget the plan will spend, in payment units.
    pub fn total_cost(&self) -> u64 {
        self.prices
            .iter()
            .map(|&p| p * u64::from(self.tasks_per_price))
            .sum()
    }
}

/// Observations collected at a single probe price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PriceObservation {
    /// Price in payment units.
    pub price: u64,
    /// Acceptance epochs (relative to publication) of the accepted tasks, in
    /// ascending order.
    pub acceptance_epochs: Vec<f64>,
    /// Observed processing durations (acceptance to submission) of completed
    /// tasks, if the probe tracked them.
    pub processing_durations: Vec<f64>,
}

impl PriceObservation {
    /// Creates an observation record.
    pub fn new(price: u64, acceptance_epochs: Vec<f64>, processing_durations: Vec<f64>) -> Self {
        PriceObservation {
            price,
            acceptance_epochs,
            processing_durations,
        }
    }

    /// On-hold rate estimate at this price (random-period MLE over the
    /// acceptance epochs).
    pub fn on_hold_rate(&self) -> Result<RateEstimate> {
        estimate_rate_random_period(&self.acceptance_epochs)
    }

    /// Processing rate estimate at this price (MLE over durations).
    pub fn processing_rate(&self) -> Result<RateEstimate> {
        estimate_rate_from_durations(&self.processing_durations)
    }
}

/// A full probe campaign result: one observation per probed price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ProbeCampaign {
    /// Observations, one per price.
    pub observations: Vec<PriceObservation>,
}

impl ProbeCampaign {
    /// Creates a campaign from per-price observations.
    pub fn new(observations: Vec<PriceObservation>) -> Self {
        ProbeCampaign { observations }
    }

    /// Estimates the on-hold rate at every probed price.
    pub fn price_rate_points(&self) -> Result<Vec<PriceRatePoint>> {
        self.observations
            .iter()
            .map(|obs| {
                let estimate = obs.on_hold_rate()?;
                Ok(PriceRatePoint::new(obs.price as f64, estimate.rate))
            })
            .collect()
    }

    /// Fits the Linearity Hypothesis over the campaign's price/rate points.
    pub fn fit_linearity(&self) -> Result<LinearityFit> {
        let points = self.price_rate_points()?;
        fit_linearity(&points)
    }

    /// Pooled processing-rate estimate across all prices (the processing
    /// phase is price-independent, so pooling is legitimate).
    pub fn pooled_processing_rate(&self) -> Result<RateEstimate> {
        let durations: Vec<f64> = self
            .observations
            .iter()
            .flat_map(|obs| obs.processing_durations.iter().copied())
            .collect();
        estimate_rate_from_durations(&durations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::exponential::Exponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_validation() {
        assert!(ProbePlan::new(vec![1], 5).is_err());
        assert!(ProbePlan::new(vec![1, 2], 0).is_err());
        assert!(ProbePlan::new(vec![1, 2, 2], 3).is_err());
        let plan = ProbePlan::new(vec![5, 8, 10, 12], 10).unwrap();
        assert_eq!(plan.total_tasks(), 40);
        assert_eq!(plan.total_cost(), (5 + 8 + 10 + 12) * 10);
    }

    #[test]
    fn observation_estimates_both_rates() {
        let obs = PriceObservation::new(5, vec![1.0, 2.0, 5.0], vec![0.5, 1.5]);
        let on_hold = obs.on_hold_rate().unwrap();
        assert!((on_hold.rate - 3.0 / 5.0).abs() < 1e-12);
        let processing = obs.processing_rate().unwrap();
        assert!((processing.rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_observation_errors() {
        let obs = PriceObservation::new(5, vec![], vec![]);
        assert!(obs.on_hold_rate().is_err());
        assert!(obs.processing_rate().is_err());
    }

    #[test]
    fn campaign_fits_linearity_from_synthetic_market() {
        // Simulate a market obeying λo(c) = 0.4c + 0.5 and check that the
        // probe pipeline recovers a supportive fit.
        let mut rng = StdRng::seed_from_u64(17);
        let mut observations = Vec::new();
        for price in [2u64, 4, 6, 8, 10] {
            let rate = 0.4 * price as f64 + 0.5;
            let exp = Exponential::new(rate).unwrap();
            let mut now = 0.0;
            let mut epochs = Vec::new();
            for _ in 0..2_000 {
                now += exp.sample(&mut rng);
                epochs.push(now);
            }
            // processing times at rate 2.0, price-independent
            let proc = Exponential::new(2.0).unwrap();
            let durations: Vec<f64> = (0..500).map(|_| proc.sample(&mut rng)).collect();
            observations.push(PriceObservation::new(price, epochs, durations));
        }
        let campaign = ProbeCampaign::new(observations);
        let points = campaign.price_rate_points().unwrap();
        assert_eq!(points.len(), 5);
        let fit = campaign.fit_linearity().unwrap();
        assert!((fit.k - 0.4).abs() < 0.05, "k = {}", fit.k);
        assert!((fit.b - 0.5).abs() < 0.3, "b = {}", fit.b);
        assert!(fit.supports_hypothesis(0.98));
        let pooled = campaign.pooled_processing_rate().unwrap();
        assert!((pooled.rate - 2.0).abs() < 0.2);
    }

    #[test]
    fn campaign_with_no_observations_errors() {
        let campaign = ProbeCampaign::default();
        assert!(campaign.fit_linearity().is_err());
        assert!(campaign.pooled_processing_rate().is_err());
    }
}

//! Maximum-likelihood estimation of Poisson/exponential clock rates.
//!
//! Section 3.3.1 and Appendix A of the paper: a "probe" program publishes
//! sample tasks and observes either
//!
//! * **Fixed period** — after a fixed observation window `T0` the number of
//!   accepted tasks `N` is recorded, or
//! * **Random period** — the probe waits until `N` tasks have been accepted
//!   and records the elapsed time `T0`.
//!
//! In both cases the ML estimator of the arrival rate is `λ̂ = N / T0`. For
//! the random-period design the estimator is biased; the unbiased corrected
//! estimator is `λ̃ = (N − 1)/N · λ̂ = (N − 1)/T0`.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Which probe design produced the observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeDesign {
    /// Observe for a fixed window and count acceptances.
    FixedPeriod,
    /// Wait for a fixed number of acceptances and record the elapsed time.
    RandomPeriod,
}

/// A rate estimate together with the evidence it was computed from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateEstimate {
    /// Point estimate of the rate (`λ̂` or `λ̃`).
    pub rate: f64,
    /// Number of events observed.
    pub events: u64,
    /// Length of the observation period.
    pub period: f64,
    /// The probe design used.
    pub design: ProbeDesign,
    /// Whether the small-sample bias correction was applied.
    pub bias_corrected: bool,
}

impl RateEstimate {
    /// Approximate standard error of the estimate, `λ̂ / sqrt(N)` (the Fisher
    /// information of an exponential sample of size `N`).
    pub fn standard_error(&self) -> f64 {
        if self.events == 0 {
            f64::INFINITY
        } else {
            self.rate / (self.events as f64).sqrt()
        }
    }

    /// A crude `±z·SE` confidence interval, clamped below at zero.
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        let half = z * self.standard_error();
        ((self.rate - half).max(0.0), self.rate + half)
    }
}

/// Fixed-period MLE: `λ̂ = N / T0`.
pub fn estimate_rate_fixed_period(events: u64, period: f64) -> Result<RateEstimate> {
    validate_period(period)?;
    Ok(RateEstimate {
        rate: events as f64 / period,
        events,
        period,
        design: ProbeDesign::FixedPeriod,
        bias_corrected: false,
    })
}

/// Random-period MLE from the raw arrival epochs `0 < t_1 < ... < t_N`:
/// `λ̂ = N / t_N`.
pub fn estimate_rate_random_period(arrival_epochs: &[f64]) -> Result<RateEstimate> {
    let n = arrival_epochs.len();
    if n == 0 {
        return Err(CoreError::InsufficientSamples {
            provided: 0,
            required: 1,
        });
    }
    validate_epochs(arrival_epochs)?;
    let period = arrival_epochs[n - 1];
    Ok(RateEstimate {
        rate: n as f64 / period,
        events: n as u64,
        period,
        design: ProbeDesign::RandomPeriod,
        bias_corrected: false,
    })
}

/// Bias-corrected random-period estimator `λ̃ = (N − 1) / T0` (Appendix A).
/// Requires at least two arrivals.
pub fn estimate_rate_random_period_unbiased(arrival_epochs: &[f64]) -> Result<RateEstimate> {
    let n = arrival_epochs.len();
    if n < 2 {
        return Err(CoreError::InsufficientSamples {
            provided: n,
            required: 2,
        });
    }
    validate_epochs(arrival_epochs)?;
    let period = arrival_epochs[n - 1];
    Ok(RateEstimate {
        rate: (n as f64 - 1.0) / period,
        events: n as u64,
        period,
        design: ProbeDesign::RandomPeriod,
        bias_corrected: true,
    })
}

/// MLE of an exponential rate from i.i.d. duration samples (e.g. observed
/// processing times): `λ̂ = N / Σ d_i`.
pub fn estimate_rate_from_durations(durations: &[f64]) -> Result<RateEstimate> {
    if durations.is_empty() {
        return Err(CoreError::InsufficientSamples {
            provided: 0,
            required: 1,
        });
    }
    let mut total = 0.0;
    for &d in durations {
        if !d.is_finite() || d < 0.0 {
            return Err(CoreError::invalid_argument(format!(
                "durations must be finite and non-negative, got {d}"
            )));
        }
        total += d;
    }
    validate_period(total)?;
    Ok(RateEstimate {
        rate: durations.len() as f64 / total,
        events: durations.len() as u64,
        period: total,
        design: ProbeDesign::RandomPeriod,
        bias_corrected: false,
    })
}

/// Estimates the processing rate `λp` as `λ − λo` given estimates of the
/// overall task rate and the on-hold rate, following the decomposition
/// described at the end of Section 3.3.1. Returns an error when the overall
/// rate does not exceed the on-hold rate (the decomposition is then
/// meaningless for exponential phases).
pub fn processing_rate_from_overall(overall_rate: f64, on_hold_rate: f64) -> Result<f64> {
    if !overall_rate.is_finite() || !on_hold_rate.is_finite() {
        return Err(CoreError::invalid_argument(
            "rates must be finite".to_owned(),
        ));
    }
    let diff = overall_rate - on_hold_rate;
    if diff <= 0.0 {
        return Err(CoreError::invalid_argument(format!(
            "overall rate {overall_rate} must exceed the on-hold rate {on_hold_rate}"
        )));
    }
    Ok(diff)
}

fn validate_period(period: f64) -> Result<()> {
    if !period.is_finite() || period <= 0.0 {
        return Err(CoreError::invalid_argument(format!(
            "observation period must be positive and finite, got {period}"
        )));
    }
    Ok(())
}

fn validate_epochs(epochs: &[f64]) -> Result<()> {
    let mut prev = 0.0;
    for &t in epochs {
        if !t.is_finite() || t <= 0.0 {
            return Err(CoreError::invalid_argument(format!(
                "arrival epochs must be positive and finite, got {t}"
            )));
        }
        if t < prev {
            return Err(CoreError::invalid_argument(
                "arrival epochs must be non-decreasing".to_owned(),
            ));
        }
        prev = t;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::exponential::Exponential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_period_is_count_over_period() {
        let est = estimate_rate_fixed_period(20, 4.0).unwrap();
        assert!((est.rate - 5.0).abs() < 1e-12);
        assert_eq!(est.design, ProbeDesign::FixedPeriod);
        assert!(!est.bias_corrected);
        assert!(estimate_rate_fixed_period(20, 0.0).is_err());
        assert!(estimate_rate_fixed_period(20, f64::NAN).is_err());
        // zero events is a legal (if uninformative) observation
        let zero = estimate_rate_fixed_period(0, 10.0).unwrap();
        assert_eq!(zero.rate, 0.0);
        assert_eq!(zero.standard_error(), f64::INFINITY);
    }

    #[test]
    fn random_period_uses_last_epoch() {
        let est = estimate_rate_random_period(&[0.5, 1.0, 2.0, 4.0]).unwrap();
        assert!((est.rate - 1.0).abs() < 1e-12);
        assert_eq!(est.events, 4);
        assert!((est.period - 4.0).abs() < 1e-12);
        assert!(estimate_rate_random_period(&[]).is_err());
        assert!(estimate_rate_random_period(&[1.0, 0.5]).is_err());
        assert!(estimate_rate_random_period(&[-1.0]).is_err());
    }

    #[test]
    fn unbiased_variant_shrinks_the_estimate() {
        let epochs = [0.5, 1.0, 2.0, 4.0];
        let biased = estimate_rate_random_period(&epochs).unwrap();
        let unbiased = estimate_rate_random_period_unbiased(&epochs).unwrap();
        assert!(unbiased.rate < biased.rate);
        assert!((unbiased.rate - 0.75).abs() < 1e-12);
        assert!(unbiased.bias_corrected);
        assert!(estimate_rate_random_period_unbiased(&[1.0]).is_err());
    }

    #[test]
    fn duration_mle_is_reciprocal_mean() {
        let est = estimate_rate_from_durations(&[1.0, 3.0, 2.0]).unwrap();
        assert!((est.rate - 0.5).abs() < 1e-12);
        assert!(estimate_rate_from_durations(&[]).is_err());
        assert!(estimate_rate_from_durations(&[1.0, -2.0]).is_err());
        assert!(estimate_rate_from_durations(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn processing_rate_decomposition() {
        assert!((processing_rate_from_overall(5.0, 2.0).unwrap() - 3.0).abs() < 1e-12);
        assert!(processing_rate_from_overall(2.0, 5.0).is_err());
        assert!(processing_rate_from_overall(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn confidence_interval_brackets_the_estimate() {
        let est = estimate_rate_fixed_period(100, 10.0).unwrap();
        let (lo, hi) = est.confidence_interval(1.96);
        assert!(lo < est.rate && est.rate < hi);
        assert!(lo >= 0.0);
        assert!((est.standard_error() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mle_recovers_true_rate_from_simulated_arrivals() {
        // Simulate Poisson arrivals at rate 0.8 and check the estimators
        // recover the truth within a few percent.
        let true_rate = 0.8;
        let exp = Exponential::new(true_rate).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        let mut epochs = Vec::with_capacity(5_000);
        let mut now = 0.0;
        for _ in 0..5_000 {
            now += exp.sample(&mut rng);
            epochs.push(now);
        }
        let est = estimate_rate_random_period(&epochs).unwrap();
        assert!(
            (est.rate - true_rate).abs() / true_rate < 0.05,
            "estimate {} too far from {true_rate}",
            est.rate
        );
        let fixed =
            estimate_rate_fixed_period(epochs.len() as u64, *epochs.last().unwrap()).unwrap();
        assert!((fixed.rate - est.rate).abs() < 1e-12);
    }
}

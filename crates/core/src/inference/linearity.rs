//! Fitting the Linearity Hypothesis (Hypothesis 1).
//!
//! Section 3.3.2: within the narrow price range of micro-tasks, the on-hold
//! clock rate is well approximated by `λo(c) = k·c + b`. Given observed
//! `(price, rate)` pairs — typically produced by running the probe of
//! Section 3.3.1 at several price points, as in Figure 4 — this module fits
//! `k` and `b` by ordinary least squares and reports the fit quality so the
//! caller can decide whether the hypothesis holds for the current market.

use crate::error::{CoreError, Result};
use crate::rate::LinearRate;
use serde::{Deserialize, Serialize};

/// One probe observation: the price offered and the rate estimated at that
/// price.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceRatePoint {
    /// Price in payment units.
    pub price: f64,
    /// Estimated on-hold rate at that price.
    pub rate: f64,
}

impl PriceRatePoint {
    /// Convenience constructor.
    pub fn new(price: f64, rate: f64) -> Self {
        PriceRatePoint { price, rate }
    }
}

/// The result of fitting `λo(c) = k·c + b` by least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearityFit {
    /// Estimated slope `k`.
    pub k: f64,
    /// Estimated intercept `b`.
    pub b: f64,
    /// Coefficient of determination `R²` of the fit (1 = perfectly linear).
    pub r_squared: f64,
    /// Number of observations used.
    pub observations: usize,
}

impl LinearityFit {
    /// Predicted rate at a price.
    pub fn predict(&self, price: f64) -> f64 {
        self.k * price + self.b
    }

    /// Whether the fit supports the Linearity Hypothesis at the given `R²`
    /// threshold (0.9 is a reasonable default for the paper's setting).
    pub fn supports_hypothesis(&self, r_squared_threshold: f64) -> bool {
        self.r_squared >= r_squared_threshold
    }

    /// Converts the fit into a [`LinearRate`] model usable by the tuning
    /// algorithms. Fails if the fitted model is non-positive or decreasing on
    /// the observed range.
    pub fn to_rate_model(&self) -> Result<LinearRate> {
        LinearRate::new(self.k.max(0.0), self.b)
    }
}

/// Fits the Linearity Hypothesis by ordinary least squares. At least two
/// observations with distinct prices are required.
pub fn fit_linearity(points: &[PriceRatePoint]) -> Result<LinearityFit> {
    if points.len() < 2 {
        return Err(CoreError::InsufficientSamples {
            provided: points.len(),
            required: 2,
        });
    }
    for p in points {
        if !p.price.is_finite() || !p.rate.is_finite() {
            return Err(CoreError::invalid_argument(
                "price/rate observations must be finite".to_owned(),
            ));
        }
    }
    let n = points.len() as f64;
    let mean_x = points.iter().map(|p| p.price).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.rate).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for p in points {
        let dx = p.price - mean_x;
        let dy = p.rate - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if sxx <= 0.0 {
        return Err(CoreError::DegenerateRegression);
    }
    let k = sxy / sxx;
    let b = mean_y - k * mean_x;
    // R² = 1 − SS_res / SS_tot; when all rates are identical (syy == 0) the
    // fit is exact and R² is defined as 1.
    let r_squared = if syy <= f64::MIN_POSITIVE {
        1.0
    } else {
        let ss_res: f64 = points
            .iter()
            .map(|p| {
                let e = p.rate - (k * p.price + b);
                e * e
            })
            .sum();
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    Ok(LinearityFit {
        k,
        b,
        r_squared,
        observations: points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_data_is_recovered() {
        // λ = 3p + 2
        let points: Vec<PriceRatePoint> = (1..=6)
            .map(|p| PriceRatePoint::new(p as f64, 3.0 * p as f64 + 2.0))
            .collect();
        let fit = fit_linearity(&points).unwrap();
        assert!((fit.k - 3.0).abs() < 1e-10);
        assert!((fit.b - 2.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(fit.observations, 6);
        assert!(fit.supports_hypothesis(0.95));
        assert!((fit.predict(10.0) - 32.0).abs() < 1e-9);
        let model = fit.to_rate_model().unwrap();
        assert!((crate::rate::RateModel::on_hold_rate(&model, 4.0) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_linear_data_still_supports_hypothesis() {
        // Small deterministic perturbations around λ = 2p + 1.
        let noise = [0.05, -0.03, 0.04, -0.02, 0.01, -0.05];
        let points: Vec<PriceRatePoint> = (1..=6)
            .map(|p| PriceRatePoint::new(p as f64, 2.0 * p as f64 + 1.0 + noise[(p - 1) as usize]))
            .collect();
        let fit = fit_linearity(&points).unwrap();
        assert!((fit.k - 2.0).abs() < 0.05);
        assert!((fit.b - 1.0).abs() < 0.15);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn strongly_nonlinear_data_is_flagged() {
        // λ = p² has a poor linear fit once the range is wide enough.
        let points: Vec<PriceRatePoint> = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&p| PriceRatePoint::new(p, p * p))
            .collect();
        let fit = fit_linearity(&points).unwrap();
        assert!(fit.r_squared < 0.97);
        assert!(!fit.supports_hypothesis(0.99));
    }

    #[test]
    fn paper_figure_4_rates_are_close_to_linear() {
        // Figure 4 / Section 5.2.2: rewards $0.05–$0.12 produced estimated
        // rates 0.0038, 0.0062, 0.0121, 0.0131 s⁻¹, which the paper reads as
        // supporting the hypothesis.
        let points = [
            PriceRatePoint::new(5.0, 0.0038),
            PriceRatePoint::new(8.0, 0.0062),
            PriceRatePoint::new(10.0, 0.0121),
            PriceRatePoint::new(12.0, 0.0131),
        ];
        let fit = fit_linearity(&points).unwrap();
        assert!(fit.k > 0.0, "rate must increase with reward");
        assert!(fit.r_squared > 0.85, "r² = {}", fit.r_squared);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(fit_linearity(&[]).is_err());
        assert!(fit_linearity(&[PriceRatePoint::new(1.0, 2.0)]).is_err());
        // identical prices
        let same_price = [PriceRatePoint::new(2.0, 1.0), PriceRatePoint::new(2.0, 3.0)];
        assert_eq!(
            fit_linearity(&same_price).unwrap_err(),
            CoreError::DegenerateRegression
        );
        let nan = [
            PriceRatePoint::new(1.0, f64::NAN),
            PriceRatePoint::new(2.0, 3.0),
        ];
        assert!(fit_linearity(&nan).is_err());
    }

    #[test]
    fn constant_rates_yield_zero_slope_and_perfect_fit() {
        let points = [
            PriceRatePoint::new(1.0, 4.0),
            PriceRatePoint::new(2.0, 4.0),
            PriceRatePoint::new(3.0, 4.0),
        ];
        let fit = fit_linearity(&points).unwrap();
        assert!(fit.k.abs() < 1e-12);
        assert!((fit.b - 4.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        // A flat market still converts to a valid (constant) rate model.
        let model = fit.to_rate_model().unwrap();
        assert!((crate::rate::RateModel::on_hold_rate(&model, 7.0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn negative_slope_is_clamped_when_converting_to_model() {
        let points = [
            PriceRatePoint::new(1.0, 5.0),
            PriceRatePoint::new(2.0, 4.0),
            PriceRatePoint::new(3.0, 3.0),
        ];
        let fit = fit_linearity(&points).unwrap();
        assert!(fit.k < 0.0);
        // Conversion clamps the slope at zero so the model remains monotone.
        let model = fit.to_rate_model().unwrap();
        let r1 = crate::rate::RateModel::on_hold_rate(&model, 1.0);
        let r2 = crate::rate::RateModel::on_hold_rate(&model, 10.0);
        assert!(r2 >= r1);
    }
}

//! Real-time inference of the HPU running parameters (Section 3.3).
//!
//! * [`mle`] — maximum-likelihood estimators of the on-hold / processing
//!   clock rates from fixed-period and random-period probes (Appendix A).
//! * [`linearity`] — least-squares fit of the Linearity Hypothesis
//!   `λo(c) = k·c + b` (Hypothesis 1) from `(price, rate)` observations.
//! * [`probe`] — the probe-campaign data model tying the two together.

pub mod linearity;
pub mod mle;
pub mod probe;

pub use linearity::{fit_linearity, LinearityFit, PriceRatePoint};
pub use mle::{
    estimate_rate_fixed_period, estimate_rate_from_durations, estimate_rate_random_period,
    estimate_rate_random_period_unbiased, processing_rate_from_overall, ProbeDesign, RateEstimate,
};
pub use probe::{PriceObservation, ProbeCampaign, ProbePlan};

//! Convenience re-exports of the types most users need.
//!
//! ```
//! use crowdtune_core::prelude::*;
//! use std::sync::Arc;
//!
//! let mut tasks = TaskSet::new();
//! let vote = tasks.add_type("pairwise vote", 2.0).unwrap();
//! tasks.add_tasks(vote, 5, 10).unwrap();
//!
//! let tuner = Tuner::new(Arc::new(LinearRate::unit_slope()));
//! let plan = tuner.plan(tasks, Budget::units(500)).unwrap();
//! assert!(plan.expected_latency > 0.0);
//! ```

pub use crate::algorithms::{
    optimal_strategy_for, BiasedAllocation, ClosenessNorm, EvenAllocation, HeterogeneousAlgorithm,
    RepetitionAlgorithm, RepetitionEvenAllocation, TaskEvenAllocation, UniformPerGroupAllocation,
};
pub use crate::error::{CoreError, Result};
pub use crate::inference::{
    estimate_rate_fixed_period, estimate_rate_random_period, fit_linearity, LinearityFit,
    PriceObservation, PriceRatePoint, ProbeCampaign, ProbePlan,
};
pub use crate::latency::{JobLatencyEstimator, PhaseSelection};
pub use crate::money::{Allocation, Budget, Payment};
pub use crate::problem::{HTuningProblem, LatencyTarget, Scenario, TuningResult, TuningStrategy};
pub use crate::rate::{
    FnRate, LinearRate, LogRate, PaperRateModel, QuadraticRate, RateModel, TabulatedRate,
};
pub use crate::task::{AtomicTask, TaskGroup, TaskId, TaskSet, TaskType, TaskTypeId};
pub use crate::tuner::{StrategyChoice, TunedPlan, Tuner};

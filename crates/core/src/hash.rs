//! A stable, platform-independent content hasher.
//!
//! The reuse layers key shared state by *content* — rate curves
//! ([`RateModel::curve_fingerprint`](crate::rate::RateModel::curve_fingerprint)),
//! canonical problem shapes (the serving layer's plan and family
//! fingerprints) — so the hash must be deterministic across runs, platforms
//! and processes, which `std::collections::hash_map::DefaultHasher` does not
//! guarantee. One shared implementation keeps every fingerprint in the
//! workspace on the same primitive.

/// 64-bit FNV-1a.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` bit-exactly (via its IEEE-754 bit pattern).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Standard FNV-1a test vectors.
        let digest = |bytes: &[u8]| {
            let mut h = Fnv1a::new();
            h.write_bytes(bytes);
            h.finish()
        };
        assert_eq!(digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn numeric_writes_are_byte_exact() {
        let mut by_value = Fnv1a::new();
        by_value.write_u64(0x0102_0304_0506_0708);
        let mut by_bytes = Fnv1a::new();
        by_bytes.write_bytes(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(by_value.finish(), by_bytes.finish());

        let mut float = Fnv1a::new();
        float.write_f64(1.5);
        let mut bits = Fnv1a::new();
        bits.write_u64(1.5f64.to_bits());
        assert_eq!(float.finish(), bits.finish());
        assert_eq!(Fnv1a::default().finish(), Fnv1a::new().finish());
    }
}

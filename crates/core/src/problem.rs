//! The H-Tuning problem definition (Section 4.1 of the paper).
//!
//! > **Definition 3 (H-Tuning Problem).** Given a set of atomic tasks
//! > `T = {t1, ..., tN}`, a discrete budget `B`, find an optimal budget
//! > allocation strategy so that the Latency Target `L*` is minimised without
//! > exceeding the budget `B`.
//!
//! A [`HTuningProblem`] bundles the task set, the budget and the on-hold rate
//! model that captures the current market condition. Tuning strategies
//! (Section 4.2–4.4) implement the [`TuningStrategy`] trait and return a
//! [`TuningResult`] containing the allocation plus the objective value that
//! the strategy optimised.

use crate::error::{CoreError, Result};
use crate::money::{Allocation, Budget};
use crate::rate::RateModel;
use crate::task::TaskSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The three practical scenarios studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario I — identical difficulty, identical repetitions.
    Homogeneous,
    /// Scenario II — identical difficulty, different repetitions.
    Repetition,
    /// Scenario III — different difficulty and different repetitions.
    Heterogeneous,
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scenario::Homogeneous => "Scenario I (Homogeneity)",
            Scenario::Repetition => "Scenario II (Repetition)",
            Scenario::Heterogeneous => "Scenario III (Heterogeneous)",
        };
        f.write_str(name)
    }
}

/// The stochastic objective a strategy minimises (Definition 2, "Latency
/// Target"). The concrete instantiation differs per scenario, which the
/// variants document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyTarget {
    /// The expected maximum phase-1 latency of all atomic tasks (Scenario I).
    ExpectedMaxOnHold,
    /// The sum of the expected phase-1 latencies of the task groups — the
    /// upper-bound approximation of Section 4.3.1 (Scenario II).
    GroupSumOnHold,
    /// The bi-objective Compromise target of Scenario III: minimise the
    /// first-order distance ("Closeness") between the objective point
    /// `(O1, O2)` and the Utopia Point.
    Compromise,
}

impl fmt::Display for LatencyTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LatencyTarget::ExpectedMaxOnHold => "expected max on-hold latency",
            LatencyTarget::GroupSumOnHold => "sum of group on-hold latencies",
            LatencyTarget::Compromise => "closeness to the utopia point",
        };
        f.write_str(name)
    }
}

/// An instance of the H-Tuning problem.
#[derive(Clone)]
pub struct HTuningProblem {
    task_set: TaskSet,
    budget: Budget,
    rate_model: Arc<dyn RateModel>,
}

impl fmt::Debug for HTuningProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HTuningProblem")
            .field("tasks", &self.task_set.len())
            .field("budget", &self.budget)
            .field("rate_model", &self.rate_model.describe())
            .finish()
    }
}

impl HTuningProblem {
    /// Creates a problem instance, validating that the task set is non-empty
    /// and the budget can cover at least one payment unit per repetition.
    pub fn new(
        task_set: TaskSet,
        budget: Budget,
        rate_model: Arc<dyn RateModel>,
    ) -> Result<Self> {
        task_set.validate()?;
        let required = task_set.total_repetitions();
        if !budget.covers(required) {
            return Err(CoreError::InsufficientBudget {
                provided: budget.as_units(),
                required,
            });
        }
        Ok(HTuningProblem {
            task_set,
            budget,
            rate_model,
        })
    }

    /// The task set being tuned.
    pub fn task_set(&self) -> &TaskSet {
        &self.task_set
    }

    /// The total budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The on-hold rate model describing the current market condition.
    pub fn rate_model(&self) -> &Arc<dyn RateModel> {
        &self.rate_model
    }

    /// The minimum budget any feasible allocation requires (one unit per
    /// repetition of every task).
    pub fn minimum_budget(&self) -> u64 {
        self.task_set.total_repetitions()
    }

    /// Budget left after paying the mandatory one unit per repetition — the
    /// `B'` of Algorithms 2 and 3.
    pub fn discretionary_budget(&self) -> u64 {
        self.budget.as_units() - self.minimum_budget()
    }

    /// Classifies the instance into the paper's scenarios based on the task
    /// set structure.
    pub fn scenario(&self) -> Scenario {
        if !self.task_set.is_homogeneous_type() {
            Scenario::Heterogeneous
        } else if self.task_set.is_uniform_repetitions() {
            Scenario::Homogeneous
        } else {
            Scenario::Repetition
        }
    }

    /// The latency target the paper associates with this instance's
    /// scenario.
    pub fn default_target(&self) -> LatencyTarget {
        match self.scenario() {
            Scenario::Homogeneous => LatencyTarget::ExpectedMaxOnHold,
            Scenario::Repetition => LatencyTarget::GroupSumOnHold,
            Scenario::Heterogeneous => LatencyTarget::Compromise,
        }
    }

    /// Returns an error unless `allocation` is feasible for this problem:
    /// covers every task, pays at least one unit per repetition and stays
    /// within budget.
    pub fn check_feasible(&self, allocation: &Allocation) -> Result<()> {
        if allocation.task_count() != self.task_set.len() {
            return Err(CoreError::invalid_argument(format!(
                "allocation covers {} tasks, expected {}",
                allocation.task_count(),
                self.task_set.len()
            )));
        }
        for (index, task) in self.task_set.tasks().iter().enumerate() {
            let payments = allocation.task_payments(index);
            if payments.len() != task.repetitions as usize {
                return Err(CoreError::invalid_argument(format!(
                    "task {index}: expected {} payments, got {}",
                    task.repetitions,
                    payments.len()
                )));
            }
        }
        if !allocation.all_positive() {
            return Err(CoreError::invalid_argument(
                "every repetition must receive at least one payment unit".to_owned(),
            ));
        }
        if !allocation.within_budget(self.budget) {
            return Err(CoreError::InsufficientBudget {
                provided: self.budget.as_units(),
                required: allocation.total_spent(),
            });
        }
        Ok(())
    }
}

/// The output of a tuning strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// Name of the strategy that produced the allocation (e.g. `"EA"`).
    pub strategy: String,
    /// The budget allocation.
    pub allocation: Allocation,
    /// The objective value the strategy optimised, if it computed one.
    pub objective: Option<f64>,
    /// The latency target the objective refers to.
    pub target: LatencyTarget,
}

impl TuningResult {
    /// Convenience constructor.
    pub fn new(
        strategy: impl Into<String>,
        allocation: Allocation,
        objective: Option<f64>,
        target: LatencyTarget,
    ) -> Self {
        TuningResult {
            strategy: strategy.into(),
            allocation,
            objective,
            target,
        }
    }
}

/// A budget-allocation strategy: the optimal algorithms (EA, RA, HA), the
/// baselines of Section 5.1, or an exhaustive search.
pub trait TuningStrategy {
    /// Short identifier used in experiment output (e.g. `"EA"`, `"bias_1"`).
    fn name(&self) -> &str;

    /// Computes a feasible allocation for the problem.
    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Payment;
    use crate::rate::LinearRate;

    fn problem(tasks: &[(u32, f64)], reps: &[u32], budget: u64) -> HTuningProblem {
        // tasks: (count, processing_rate) per type; reps aligned per type
        let mut set = TaskSet::new();
        for (i, &(count, lp)) in tasks.iter().enumerate() {
            let ty = set.add_type(format!("type{i}"), lp).unwrap();
            set.add_tasks(ty, reps[i], count as usize).unwrap();
        }
        HTuningProblem::new(set, Budget::units(budget), Arc::new(LinearRate::unit_slope()))
            .unwrap()
    }

    #[test]
    fn construction_checks_budget_and_tasks() {
        let mut set = TaskSet::new();
        let ty = set.add_type("t", 1.0).unwrap();
        set.add_tasks(ty, 3, 4).unwrap();
        let model: Arc<dyn RateModel> = Arc::new(LinearRate::unit_slope());
        // 12 repetition slots -> budget 11 is insufficient
        let err = HTuningProblem::new(set.clone(), Budget::units(11), model.clone()).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientBudget { required: 12, .. }));
        assert!(HTuningProblem::new(set, Budget::units(12), model.clone()).is_ok());
        // empty task set
        let err = HTuningProblem::new(TaskSet::new(), Budget::units(10), model).unwrap_err();
        assert_eq!(err, CoreError::EmptyTaskSet);
    }

    #[test]
    fn scenario_detection() {
        let homo = problem(&[(5, 2.0)], &[3], 100);
        assert_eq!(homo.scenario(), Scenario::Homogeneous);
        assert_eq!(homo.default_target(), LatencyTarget::ExpectedMaxOnHold);

        let mut set = TaskSet::new();
        let ty = set.add_type("t", 2.0).unwrap();
        set.add_tasks(ty, 3, 2).unwrap();
        set.add_tasks(ty, 5, 2).unwrap();
        let repe = HTuningProblem::new(
            set,
            Budget::units(100),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap();
        assert_eq!(repe.scenario(), Scenario::Repetition);
        assert_eq!(repe.default_target(), LatencyTarget::GroupSumOnHold);

        let heter = problem(&[(2, 2.0), (2, 3.0)], &[3, 5], 100);
        assert_eq!(heter.scenario(), Scenario::Heterogeneous);
        assert_eq!(heter.default_target(), LatencyTarget::Compromise);
    }

    #[test]
    fn budget_accessors() {
        let p = problem(&[(4, 2.0)], &[5], 100);
        assert_eq!(p.minimum_budget(), 20);
        assert_eq!(p.discretionary_budget(), 80);
        assert_eq!(p.budget(), Budget::units(100));
        assert_eq!(p.task_set().len(), 4);
        assert!(format!("{p:?}").contains("HTuningProblem"));
    }

    #[test]
    fn feasibility_checks() {
        let p = problem(&[(2, 2.0)], &[2], 10);
        // correct shape, within budget
        let good = Allocation::uniform(&[2, 2], Payment::units(2));
        p.check_feasible(&good).unwrap();
        // over budget
        let over = Allocation::uniform(&[2, 2], Payment::units(3));
        assert!(p.check_feasible(&over).is_err());
        // wrong task count
        let wrong_tasks = Allocation::uniform(&[2], Payment::units(1));
        assert!(p.check_feasible(&wrong_tasks).is_err());
        // wrong repetition count
        let wrong_reps = Allocation::uniform(&[2, 3], Payment::units(1));
        assert!(p.check_feasible(&wrong_reps).is_err());
        // zero payment
        let zero = Allocation::from_matrix(vec![
            vec![Payment::units(2), Payment::units(0)],
            vec![Payment::units(2), Payment::units(2)],
        ]);
        assert!(p.check_feasible(&zero).is_err());
    }

    #[test]
    fn display_strings() {
        assert!(Scenario::Homogeneous.to_string().contains("Scenario I"));
        assert!(Scenario::Repetition.to_string().contains("Scenario II"));
        assert!(Scenario::Heterogeneous.to_string().contains("Scenario III"));
        assert!(!LatencyTarget::ExpectedMaxOnHold.to_string().is_empty());
        assert!(!LatencyTarget::GroupSumOnHold.to_string().is_empty());
        assert!(!LatencyTarget::Compromise.to_string().is_empty());
    }

    #[test]
    fn tuning_result_constructor() {
        let alloc = Allocation::uniform(&[1], Payment::units(1));
        let r = TuningResult::new("EA", alloc.clone(), Some(1.5), LatencyTarget::ExpectedMaxOnHold);
        assert_eq!(r.strategy, "EA");
        assert_eq!(r.allocation, alloc);
        assert_eq!(r.objective, Some(1.5));
    }
}

//! The H-Tuning problem definition (Section 4.1 of the paper).
//!
//! > **Definition 3 (H-Tuning Problem).** Given a set of atomic tasks
//! > `T = {t1, ..., tN}`, a discrete budget `B`, find an optimal budget
//! > allocation strategy so that the Latency Target `L*` is minimised without
//! > exceeding the budget `B`.
//!
//! A [`HTuningProblem`] bundles the task set, the budget and the on-hold rate
//! model that captures the current market condition. Tuning strategies
//! (Section 4.2–4.4) implement the [`TuningStrategy`] trait and return a
//! [`TuningResult`] containing the allocation plus the objective value that
//! the strategy optimised.

use crate::error::{CoreError, Result};
use crate::money::{Allocation, Budget};
use crate::rate::RateModel;
use crate::task::TaskSet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The three practical scenarios studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Scenario I — identical difficulty, identical repetitions.
    Homogeneous,
    /// Scenario II — identical difficulty, different repetitions.
    Repetition,
    /// Scenario III — different difficulty and different repetitions.
    Heterogeneous,
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Scenario::Homogeneous => "Scenario I (Homogeneity)",
            Scenario::Repetition => "Scenario II (Repetition)",
            Scenario::Heterogeneous => "Scenario III (Heterogeneous)",
        };
        f.write_str(name)
    }
}

/// The stochastic objective a strategy minimises (Definition 2, "Latency
/// Target"). The concrete instantiation differs per scenario, which the
/// variants document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyTarget {
    /// The expected maximum phase-1 latency of all atomic tasks (Scenario I).
    ExpectedMaxOnHold,
    /// The sum of the expected phase-1 latencies of the task groups — the
    /// upper-bound approximation of Section 4.3.1 (Scenario II).
    GroupSumOnHold,
    /// The bi-objective Compromise target of Scenario III: minimise the
    /// first-order distance ("Closeness") between the objective point
    /// `(O1, O2)` and the Utopia Point.
    Compromise,
}

impl LatencyTarget {
    /// Whether the target decomposes as a sum of independent per-group terms
    /// `Σ_i f_i(p_i)`. Separable targets qualify for the incremental DP
    /// candidate evaluation
    /// ([`marginal_budget_dp_separable`](crate::algorithms::marginal_budget_dp_separable)):
    /// raising one group's payment changes exactly one term, so each of the
    /// `O(n·B')` candidates is scored in O(1). Non-separable targets (an
    /// expected *max*, or the utopia-point distance) couple the groups and
    /// take the O(n)-per-candidate closure path.
    pub fn is_separable(self) -> bool {
        match self {
            // A sum over groups: the DP objective of RA (and of HA's O1).
            LatencyTarget::GroupSumOnHold => true,
            // An expected maximum over tasks (EA solves this in closed form
            // without the DP) and a distance in (O1, O2) space — both couple
            // the groups.
            LatencyTarget::ExpectedMaxOnHold | LatencyTarget::Compromise => false,
        }
    }
}

impl fmt::Display for LatencyTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LatencyTarget::ExpectedMaxOnHold => "expected max on-hold latency",
            LatencyTarget::GroupSumOnHold => "sum of group on-hold latencies",
            LatencyTarget::Compromise => "closeness to the utopia point",
        };
        f.write_str(name)
    }
}

/// An instance of the H-Tuning problem.
#[derive(Clone)]
pub struct HTuningProblem {
    task_set: TaskSet,
    budget: Budget,
    rate_model: Arc<dyn RateModel>,
}

impl fmt::Debug for HTuningProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HTuningProblem")
            .field("tasks", &self.task_set.len())
            .field("budget", &self.budget)
            .field("rate_model", &self.rate_model.describe())
            .finish()
    }
}

impl HTuningProblem {
    /// Creates a problem instance, validating that the task set is non-empty
    /// and the budget can cover at least one payment unit per repetition.
    pub fn new(task_set: TaskSet, budget: Budget, rate_model: Arc<dyn RateModel>) -> Result<Self> {
        task_set.validate()?;
        let required = task_set.total_repetitions();
        if !budget.covers(required) {
            return Err(CoreError::InsufficientBudget {
                provided: budget.as_units(),
                required,
            });
        }
        Ok(HTuningProblem {
            task_set,
            budget,
            rate_model,
        })
    }

    /// The task set being tuned.
    pub fn task_set(&self) -> &TaskSet {
        &self.task_set
    }

    /// The total budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The on-hold rate model describing the current market condition.
    pub fn rate_model(&self) -> &Arc<dyn RateModel> {
        &self.rate_model
    }

    /// The minimum budget any feasible allocation requires (one unit per
    /// repetition of every task).
    pub fn minimum_budget(&self) -> u64 {
        self.task_set.total_repetitions()
    }

    /// Budget left after paying the mandatory one unit per repetition — the
    /// `B'` of Algorithms 2 and 3.
    pub fn discretionary_budget(&self) -> u64 {
        self.budget.as_units() - self.minimum_budget()
    }

    /// Classifies the instance into the paper's scenarios based on the task
    /// set structure.
    pub fn scenario(&self) -> Scenario {
        if !self.task_set.is_homogeneous_type() {
            Scenario::Heterogeneous
        } else if self.task_set.is_uniform_repetitions() {
            Scenario::Homogeneous
        } else {
            Scenario::Repetition
        }
    }

    /// The latency target the paper associates with this instance's
    /// scenario.
    pub fn default_target(&self) -> LatencyTarget {
        match self.scenario() {
            Scenario::Homogeneous => LatencyTarget::ExpectedMaxOnHold,
            Scenario::Repetition => LatencyTarget::GroupSumOnHold,
            Scenario::Heterogeneous => LatencyTarget::Compromise,
        }
    }

    /// Returns a copy of the problem under a different market condition
    /// (on-hold rate model). Used by the online re-tuner when probe
    /// re-estimation detects drift.
    pub fn with_rate_model(&self, rate_model: Arc<dyn RateModel>) -> Self {
        HTuningProblem {
            task_set: self.task_set.clone(),
            budget: self.budget,
            rate_model,
        }
    }

    /// Builds the *remaining* tuning problem after part of the job has
    /// completed: the sub-problem over the repetitions still outstanding and
    /// the budget still unspent — the input to mid-flight re-tuning.
    ///
    /// * `completed[i]` — number of repetitions of task `i` already finished
    ///   (and paid for);
    /// * `spent_units` — budget units already committed to those completed
    ///   repetitions.
    ///
    /// Tasks whose repetitions are all complete drop out of the remaining
    /// set; the returned [`RemainingProblem::task_indices`] maps each
    /// remaining task back to its index in the original task set. Returns
    /// `Ok(None)` when every repetition is complete. Errors if the progress
    /// report is inconsistent with the problem, or if the unspent budget can
    /// no longer cover one unit per outstanding repetition.
    pub fn remaining_after(
        &self,
        completed: &[u32],
        spent_units: u64,
    ) -> Result<Option<RemainingProblem>> {
        if completed.len() != self.task_set.len() {
            return Err(CoreError::invalid_argument(format!(
                "progress covers {} tasks, expected {}",
                completed.len(),
                self.task_set.len()
            )));
        }
        if spent_units > self.budget.as_units() {
            return Err(CoreError::invalid_argument(format!(
                "spent {spent_units} units exceeds the budget of {}",
                self.budget.as_units()
            )));
        }

        let mut remaining_set = TaskSet::new();
        for ty in self.task_set.types() {
            remaining_set.add_type(ty.name.clone(), ty.processing_rate)?;
        }
        let mut task_indices = Vec::new();
        for (index, task) in self.task_set.tasks().iter().enumerate() {
            let done = completed[index];
            if done > task.repetitions {
                return Err(CoreError::invalid_argument(format!(
                    "task {index}: {done} repetitions reported complete, only {} required",
                    task.repetitions
                )));
            }
            let left = task.repetitions - done;
            if left > 0 {
                remaining_set.add_task(task.task_type, left)?;
                task_indices.push(index);
            }
        }
        if remaining_set.is_empty() {
            return Ok(None);
        }

        let remaining_budget = Budget::units(self.budget.as_units() - spent_units);
        let problem =
            HTuningProblem::new(remaining_set, remaining_budget, self.rate_model.clone())?;
        Ok(Some(RemainingProblem {
            problem,
            task_indices,
        }))
    }

    /// Returns an error unless `allocation` is feasible for this problem:
    /// covers every task, pays at least one unit per repetition and stays
    /// within budget.
    pub fn check_feasible(&self, allocation: &Allocation) -> Result<()> {
        if allocation.task_count() != self.task_set.len() {
            return Err(CoreError::invalid_argument(format!(
                "allocation covers {} tasks, expected {}",
                allocation.task_count(),
                self.task_set.len()
            )));
        }
        for (index, task) in self.task_set.tasks().iter().enumerate() {
            let payments = allocation.task_payments(index);
            if payments.len() != task.repetitions as usize {
                return Err(CoreError::invalid_argument(format!(
                    "task {index}: expected {} payments, got {}",
                    task.repetitions,
                    payments.len()
                )));
            }
        }
        if !allocation.all_positive() {
            return Err(CoreError::invalid_argument(
                "every repetition must receive at least one payment unit".to_owned(),
            ));
        }
        if !allocation.within_budget(self.budget) {
            return Err(CoreError::InsufficientBudget {
                provided: self.budget.as_units(),
                required: allocation.total_spent(),
            });
        }
        Ok(())
    }
}

/// The sub-problem left over after part of a job has completed, produced by
/// [`HTuningProblem::remaining_after`].
#[derive(Debug, Clone)]
pub struct RemainingProblem {
    /// The tuning problem over the outstanding repetitions and the unspent
    /// budget.
    pub problem: HTuningProblem,
    /// For each task of the remaining problem (in order), the index of the
    /// corresponding task in the original task set.
    pub task_indices: Vec<usize>,
}

/// The output of a tuning strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// Name of the strategy that produced the allocation (e.g. `"EA"`).
    pub strategy: String,
    /// The budget allocation.
    pub allocation: Allocation,
    /// The objective value the strategy optimised, if it computed one.
    pub objective: Option<f64>,
    /// The latency target the objective refers to.
    pub target: LatencyTarget,
}

impl TuningResult {
    /// Convenience constructor.
    pub fn new(
        strategy: impl Into<String>,
        allocation: Allocation,
        objective: Option<f64>,
        target: LatencyTarget,
    ) -> Self {
        TuningResult {
            strategy: strategy.into(),
            allocation,
            objective,
            target,
        }
    }
}

/// A budget-allocation strategy: the optimal algorithms (EA, RA, HA), the
/// baselines of Section 5.1, or an exhaustive search.
pub trait TuningStrategy {
    /// Short identifier used in experiment output (e.g. `"EA"`, `"bias_1"`).
    fn name(&self) -> &str;

    /// Computes a feasible allocation for the problem.
    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Payment;
    use crate::rate::LinearRate;

    fn problem(tasks: &[(u32, f64)], reps: &[u32], budget: u64) -> HTuningProblem {
        // tasks: (count, processing_rate) per type; reps aligned per type
        let mut set = TaskSet::new();
        for (i, &(count, lp)) in tasks.iter().enumerate() {
            let ty = set.add_type(format!("type{i}"), lp).unwrap();
            set.add_tasks(ty, reps[i], count as usize).unwrap();
        }
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_budget_and_tasks() {
        let mut set = TaskSet::new();
        let ty = set.add_type("t", 1.0).unwrap();
        set.add_tasks(ty, 3, 4).unwrap();
        let model: Arc<dyn RateModel> = Arc::new(LinearRate::unit_slope());
        // 12 repetition slots -> budget 11 is insufficient
        let err = HTuningProblem::new(set.clone(), Budget::units(11), model.clone()).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InsufficientBudget { required: 12, .. }
        ));
        assert!(HTuningProblem::new(set, Budget::units(12), model.clone()).is_ok());
        // empty task set
        let err = HTuningProblem::new(TaskSet::new(), Budget::units(10), model).unwrap_err();
        assert_eq!(err, CoreError::EmptyTaskSet);
    }

    #[test]
    fn scenario_detection() {
        let homo = problem(&[(5, 2.0)], &[3], 100);
        assert_eq!(homo.scenario(), Scenario::Homogeneous);
        assert_eq!(homo.default_target(), LatencyTarget::ExpectedMaxOnHold);

        let mut set = TaskSet::new();
        let ty = set.add_type("t", 2.0).unwrap();
        set.add_tasks(ty, 3, 2).unwrap();
        set.add_tasks(ty, 5, 2).unwrap();
        let repe = HTuningProblem::new(set, Budget::units(100), Arc::new(LinearRate::unit_slope()))
            .unwrap();
        assert_eq!(repe.scenario(), Scenario::Repetition);
        assert_eq!(repe.default_target(), LatencyTarget::GroupSumOnHold);

        let heter = problem(&[(2, 2.0), (2, 3.0)], &[3, 5], 100);
        assert_eq!(heter.scenario(), Scenario::Heterogeneous);
        assert_eq!(heter.default_target(), LatencyTarget::Compromise);
    }

    #[test]
    fn budget_accessors() {
        let p = problem(&[(4, 2.0)], &[5], 100);
        assert_eq!(p.minimum_budget(), 20);
        assert_eq!(p.discretionary_budget(), 80);
        assert_eq!(p.budget(), Budget::units(100));
        assert_eq!(p.task_set().len(), 4);
        assert!(format!("{p:?}").contains("HTuningProblem"));
    }

    #[test]
    fn feasibility_checks() {
        let p = problem(&[(2, 2.0)], &[2], 10);
        // correct shape, within budget
        let good = Allocation::uniform(&[2, 2], Payment::units(2));
        p.check_feasible(&good).unwrap();
        // over budget
        let over = Allocation::uniform(&[2, 2], Payment::units(3));
        assert!(p.check_feasible(&over).is_err());
        // wrong task count
        let wrong_tasks = Allocation::uniform(&[2], Payment::units(1));
        assert!(p.check_feasible(&wrong_tasks).is_err());
        // wrong repetition count
        let wrong_reps = Allocation::uniform(&[2, 3], Payment::units(1));
        assert!(p.check_feasible(&wrong_reps).is_err());
        // zero payment
        let zero = Allocation::from_matrix(vec![
            vec![Payment::units(2), Payment::units(0)],
            vec![Payment::units(2), Payment::units(2)],
        ]);
        assert!(p.check_feasible(&zero).is_err());
    }

    #[test]
    fn separability_follows_the_target_structure() {
        assert!(LatencyTarget::GroupSumOnHold.is_separable());
        assert!(!LatencyTarget::ExpectedMaxOnHold.is_separable());
        assert!(!LatencyTarget::Compromise.is_separable());
    }

    #[test]
    fn display_strings() {
        assert!(Scenario::Homogeneous.to_string().contains("Scenario I"));
        assert!(Scenario::Repetition.to_string().contains("Scenario II"));
        assert!(Scenario::Heterogeneous.to_string().contains("Scenario III"));
        assert!(!LatencyTarget::ExpectedMaxOnHold.to_string().is_empty());
        assert!(!LatencyTarget::GroupSumOnHold.to_string().is_empty());
        assert!(!LatencyTarget::Compromise.to_string().is_empty());
    }

    #[test]
    fn remaining_after_reduces_tasks_and_budget() {
        // 3 tasks of 4 reps each, budget 60.
        let p = problem(&[(3, 2.0)], &[4], 60);
        // Task 0 fully done, task 1 half done, task 2 untouched; 10 units
        // spent so far.
        let remaining = p.remaining_after(&[4, 2, 0], 10).unwrap().unwrap();
        assert_eq!(remaining.task_indices, vec![1, 2]);
        assert_eq!(remaining.problem.task_set().len(), 2);
        assert_eq!(remaining.problem.task_set().repetition_counts(), vec![2, 4]);
        assert_eq!(remaining.problem.budget(), Budget::units(50));
        // Types carry over.
        assert_eq!(remaining.problem.task_set().types().len(), 1);
        assert!((remaining.problem.task_set().types()[0].processing_rate - 2.0).abs() < 1e-12);
    }

    #[test]
    fn remaining_after_complete_job_is_none() {
        let p = problem(&[(2, 1.0)], &[2], 20);
        assert!(p.remaining_after(&[2, 2], 20).unwrap().is_none());
    }

    #[test]
    fn remaining_after_validates_progress() {
        let p = problem(&[(2, 1.0)], &[3], 30);
        // Wrong task count.
        assert!(p.remaining_after(&[1], 5).is_err());
        // More completions than repetitions.
        assert!(p.remaining_after(&[4, 0], 5).is_err());
        // Overspent.
        assert!(p.remaining_after(&[1, 1], 31).is_err());
        // Budget left cannot cover the outstanding repetitions.
        assert!(matches!(
            p.remaining_after(&[1, 0], 27),
            Err(CoreError::InsufficientBudget { .. })
        ));
    }

    #[test]
    fn with_rate_model_swaps_market_only() {
        let p = problem(&[(2, 2.0)], &[2], 30);
        let swapped = p.with_rate_model(Arc::new(LinearRate::steep()));
        assert_eq!(swapped.budget(), p.budget());
        assert_eq!(swapped.task_set(), p.task_set());
        assert_ne!(
            swapped.rate_model().on_hold_rate(5.0),
            p.rate_model().on_hold_rate(5.0)
        );
    }

    #[test]
    fn tuning_result_constructor() {
        let alloc = Allocation::uniform(&[1], Payment::units(1));
        let r = TuningResult::new(
            "EA",
            alloc.clone(),
            Some(1.5),
            LatencyTarget::ExpectedMaxOnHold,
        );
        assert_eq!(r.strategy, "EA");
        assert_eq!(r.allocation, alloc);
        assert_eq!(r.objective, Some(1.5));
    }
}

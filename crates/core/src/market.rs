//! Market identity: which crowdsourcing marketplace a job is tuned against.
//!
//! The paper tunes every job against a single marketplace; a federated
//! deployment straddles several (AMT, Prolific, an internal workforce, ...),
//! each with its own price → on-hold-rate regime. A [`MarketId`] names one
//! of them. It is deliberately a tiny copyable token: every layer of the
//! stack (requests, fingerprints, the journal, telemetry labels) carries it,
//! and the set of valid ids is owned by the market registry, not by this
//! type.
//!
//! ## Wire and persistence compatibility
//!
//! `MarketId` serializes as a bare integer. Everywhere it appears in a
//! persisted or wire format, the field is **optional on decode**: records
//! and requests written before markets existed carry no market id and decode
//! onto [`MarketId::DEFAULT`], which by construction behaves exactly like
//! the pre-market single-market world (default-market fingerprints hash
//! identically to the pre-market scheme).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one crowdsourcing marketplace.
///
/// Serializes as a bare integer (the newtype wrapper is transparent on the
/// wire). The default market — id 0 — is what every pre-market record,
/// request, and fingerprint maps onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MarketId(pub u16);

impl MarketId {
    /// The default market: the single marketplace the stack tuned against
    /// before federation. Absent market fields on the wire and in the
    /// journal decode to this, and default-market fingerprints are
    /// bit-identical to pre-market fingerprints.
    pub const DEFAULT: MarketId = MarketId(0);

    /// Whether this is the default market.
    pub fn is_default(self) -> bool {
        self == Self::DEFAULT
    }

    /// The raw id.
    pub fn as_u16(self) -> u16 {
        self.0
    }
}

impl Default for MarketId {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl fmt::Display for MarketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "market-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_market_is_id_zero() {
        assert_eq!(MarketId::default(), MarketId::DEFAULT);
        assert!(MarketId::DEFAULT.is_default());
        assert!(!MarketId(3).is_default());
        assert_eq!(MarketId(7).as_u16(), 7);
    }

    #[test]
    fn serializes_as_a_bare_integer() {
        let json = serde_json::to_string(&MarketId(5)).unwrap();
        assert_eq!(json, "5");
        let back: MarketId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, MarketId(5));
    }
}

//! Error types for the `crowdtune-core` crate.
//!
//! All fallible public APIs in this crate return [`Result<T>`](Result) with
//! [`CoreError`] as the error type. The enum is deliberately small and
//! non-exhaustive so downstream crates can match on the cases they care about
//! while remaining forward compatible.

use std::fmt;

/// Convenience result alias used throughout `crowdtune-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by the HPU model, the statistics helpers and the tuning
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The provided budget cannot cover the minimum payment (one unit per
    /// repetition of every atomic task). Mirrors the "budget is not enough"
    /// branch of Algorithm 1 (Even Allocation) in the paper.
    InsufficientBudget {
        /// Budget that was provided, in payment units.
        provided: u64,
        /// Minimum budget required to give every repetition one unit.
        required: u64,
    },
    /// A task set was empty where at least one task is required.
    EmptyTaskSet,
    /// A task declared zero repetitions; every atomic task must be executed
    /// at least once.
    ZeroRepetitions {
        /// Identifier of the offending task.
        task_id: u64,
    },
    /// A rate model evaluated to a non-positive or non-finite clock rate,
    /// which would make the exponential latency model ill-defined.
    InvalidRate {
        /// Payment (in units) at which the rate was evaluated.
        payment: u64,
        /// The offending rate value.
        rate: f64,
    },
    /// A distribution parameter was invalid (e.g. non-positive rate or zero
    /// shape for an Erlang variable).
    InvalidDistribution {
        /// Human readable description of the violated constraint.
        reason: String,
    },
    /// Numerical integration failed to converge to the requested tolerance.
    IntegrationDidNotConverge {
        /// Tolerance that was requested.
        tolerance: f64,
        /// Estimate of the achieved error.
        achieved: f64,
    },
    /// Parameter inference was asked to run on an empty or degenerate sample.
    InsufficientSamples {
        /// Number of samples provided.
        provided: usize,
        /// Minimum number of samples required.
        required: usize,
    },
    /// A linear regression (Linearity Hypothesis fit) was attempted on
    /// degenerate data, e.g. all price points identical.
    DegenerateRegression,
    /// Generic invalid-argument error for conditions not covered above.
    InvalidArgument {
        /// Human readable description of what was wrong.
        reason: String,
    },
}

impl CoreError {
    /// Shorthand constructor for [`CoreError::InvalidArgument`].
    pub fn invalid_argument(reason: impl Into<String>) -> Self {
        CoreError::InvalidArgument {
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`CoreError::InvalidDistribution`].
    pub fn invalid_distribution(reason: impl Into<String>) -> Self {
        CoreError::InvalidDistribution {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InsufficientBudget { provided, required } => write!(
                f,
                "budget of {provided} unit(s) is insufficient: at least {required} unit(s) are \
                 required to pay one unit per repetition"
            ),
            CoreError::EmptyTaskSet => write!(f, "the task set is empty"),
            CoreError::ZeroRepetitions { task_id } => {
                write!(f, "task {task_id} declares zero repetitions")
            }
            CoreError::InvalidRate { payment, rate } => write!(
                f,
                "rate model produced an invalid clock rate {rate} at payment {payment}"
            ),
            CoreError::InvalidDistribution { reason } => {
                write!(f, "invalid distribution parameter: {reason}")
            }
            CoreError::IntegrationDidNotConverge {
                tolerance,
                achieved,
            } => write!(
                f,
                "numerical integration did not converge: requested tolerance {tolerance}, \
                 achieved {achieved}"
            ),
            CoreError::InsufficientSamples { provided, required } => write!(
                f,
                "insufficient samples for inference: {provided} provided, {required} required"
            ),
            CoreError::DegenerateRegression => write!(
                f,
                "linearity fit requires at least two distinct price points"
            ),
            CoreError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_insufficient_budget_mentions_both_quantities() {
        let err = CoreError::InsufficientBudget {
            provided: 3,
            required: 10,
        };
        let msg = err.to_string();
        assert!(msg.contains('3'));
        assert!(msg.contains("10"));
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            CoreError::InsufficientBudget {
                provided: 1,
                required: 2,
            },
            CoreError::EmptyTaskSet,
            CoreError::ZeroRepetitions { task_id: 7 },
            CoreError::InvalidRate {
                payment: 4,
                rate: -1.0,
            },
            CoreError::invalid_distribution("rate must be positive"),
            CoreError::IntegrationDidNotConverge {
                tolerance: 1e-9,
                achieved: 1e-3,
            },
            CoreError::InsufficientSamples {
                provided: 0,
                required: 1,
            },
            CoreError::DegenerateRegression,
            CoreError::invalid_argument("whatever"),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&CoreError::EmptyTaskSet);
    }

    #[test]
    fn constructors_build_expected_variants() {
        match CoreError::invalid_argument("x") {
            CoreError::InvalidArgument { reason } => assert_eq!(reason, "x"),
            other => panic!("unexpected variant {other:?}"),
        }
        match CoreError::invalid_distribution("y") {
            CoreError::InvalidDistribution { reason } => assert_eq!(reason, "y"),
            other => panic!("unexpected variant {other:?}"),
        }
    }
}

//! # crowdtune-core
//!
//! A from-scratch Rust implementation of the HPU model and budget-tuning
//! algorithms of *"Tuning Crowdsourced Human Computation"* (Cao, Liu, Chen,
//! Jagadish — ICDE 2017).
//!
//! The paper treats each crowd worker as an **HPU** (Human Processing Unit)
//! whose "clock rate" is stochastic and, for the on-hold (acceptance) phase,
//! controllable through the promised payment. Given a job decomposed into
//! atomic tasks — each with a repetition requirement and a difficulty class —
//! and a fixed discrete budget, the **H-Tuning problem** asks for the budget
//! allocation that minimises the job's expected wall-clock latency.
//!
//! ## Crate layout
//!
//! | module | content | paper sections |
//! |---|---|---|
//! | [`task`] | tasks, types, groups | §3 (definitions) |
//! | [`money`] | discrete payments, budgets, allocations | §1, §4.1 |
//! | [`rate`] | price → on-hold clock-rate models (linearity hypothesis and the Figure 2 catalogue) | §3.1.2, §3.3.2 |
//! | [`stats`] | exponential / Erlang / two-phase distributions, order statistics, quadrature | §3.2, §4.3.1, Appendix |
//! | [`latency`] | expected group and job latencies, analytic + Monte-Carlo estimators | §3.2.1, §4.3.1 |
//! | [`problem`] | the H-Tuning problem, latency targets, the `TuningStrategy` trait | §4.1 |
//! | [`algorithms`] | EA (Alg. 1), RA (Alg. 2), HA (Alg. 3), baselines, DP machinery | §4.2–4.4, §5.1 |
//! | [`inference`] | probe-based MLE of λo/λp, linearity fit | §3.3, Appendix A |
//! | [`tuner`] | high-level facade | — |
//!
//! ## Quick start
//!
//! ```
//! use crowdtune_core::prelude::*;
//! use std::sync::Arc;
//!
//! // A job: 20 pairwise-vote tasks, 3 answers each, plus 10 harder
//! // comparison tasks needing 5 answers each.
//! let mut tasks = TaskSet::new();
//! let filter = tasks.add_type("yes/no vote", 3.0).unwrap();
//! let sort = tasks.add_type("sorting vote", 2.0).unwrap();
//! tasks.add_tasks(filter, 3, 20).unwrap();
//! tasks.add_tasks(sort, 5, 10).unwrap();
//!
//! // Market condition: the on-hold rate grows linearly with the payment.
//! let market = Arc::new(LinearRate::new(1.0, 1.0).unwrap());
//!
//! // Tune a budget of 500 payment units.
//! let tuner = Tuner::new(market);
//! let plan = tuner.plan(tasks, Budget::units(500)).unwrap();
//! println!(
//!     "strategy {} expects the job to finish in {:.2} time units",
//!     plan.result.strategy, plan.expected_latency
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod algorithms;
pub mod error;
pub mod hash;
pub mod inference;
pub mod latency;
pub mod market;
pub mod money;
pub mod prelude;
pub mod problem;
pub mod rate;
pub mod stats;
pub mod task;
pub mod tuner;

pub use error::{CoreError, Result};
pub use market::MarketId;
pub use money::{Allocation, Budget, Payment};
pub use problem::{HTuningProblem, RemainingProblem, Scenario, TuningResult, TuningStrategy};
pub use rate::{LinearRate, PaperRateModel, RateModel, RateSpec};
pub use task::{TaskSet, TaskType};
pub use tuner::{TunedPlan, Tuner};

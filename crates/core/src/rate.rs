//! Price-to-rate models for the on-hold phase.
//!
//! Section 3.1.2 of the paper derives that a task's acceptance (on-hold)
//! latency is exponential with joint rate `λc = λ·p(c)` where `λ` is the
//! worker-arrival rate and `p(c)` the acceptance probability at price `c`.
//! Section 3.3.2 proposes the **Linearity Hypothesis**: within the small
//! price range relevant to micro-tasks, `λo(c) = k·c + b`.
//!
//! The synthetic experiments of Section 5.1 additionally exercise non-linear
//! models (`λ = 1 + p²`, `λ = log(1 + p)`) to test robustness, so this module
//! provides a [`RateModel`] trait with the full catalogue of models used in
//! Figure 2, plus an empirical table-driven model and a generic closure
//! adapter.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

use crate::hash::Fnv1a;

/// Maps a per-repetition payment (in units) to the on-hold clock rate
/// `λo(payment)`.
///
/// Implementations must return strictly positive, finite, and non-decreasing
/// rates for payments `>= 1`; [`validate_over`](RateModel::validate_over) can
/// be used to check those properties over a payment range.
pub trait RateModel: Send + Sync {
    /// On-hold clock rate at the given payment, expressed in units.
    fn on_hold_rate(&self, payment_units: f64) -> f64;

    /// A serializable description of this model, if it has one.
    ///
    /// Trait objects cannot be serialized directly, so durable stores persist
    /// a model through this hook and rebuild it with [`RateSpec::build`].
    /// Implementations must uphold **exact round-tripping**: the rebuilt
    /// model evaluates `on_hold_rate` bit-identically to the original (and
    /// therefore shares its [`curve_fingerprint`](RateModel::curve_fingerprint)).
    /// The default returns `None` — models without a spec (e.g. ad-hoc
    /// closures) are simply not persisted, which degrades to a cold solve
    /// after a restart, never to a wrong plan.
    fn to_spec(&self) -> Option<RateSpec> {
        None
    }

    /// Short human readable description (used in experiment output headers).
    fn describe(&self) -> String {
        "rate model".to_owned()
    }

    /// Stable 64-bit fingerprint of the response curve, the key under which
    /// latency tables derived from this curve may be shared across jobs (see
    /// [`LatencyTableStore`](crate::algorithms::common::LatencyTableStore))
    /// and plan families grouped in the serving layer.
    ///
    /// **Contract**: two models may return the same fingerprint only if they
    /// agree (bit-exactly) on `on_hold_rate(p)` for every integer payment
    /// `p` in `[1, MAX_TABLE_PAYMENT]` — exactly the grid the shared latency
    /// tables cover, so equal fingerprints imply bit-identical table fills.
    /// The default implementation samples that entire grid plus the
    /// [`describe`](RateModel::describe) label; parametric models override it
    /// with a hash of their parameters (same guarantee, no sampling loop).
    /// As with every content hash, distinct curves collide with probability
    /// ~2⁻⁶⁴; the callers accept that risk in exchange for O(1) reuse.
    fn curve_fingerprint(&self) -> u64 {
        let mut hash = Fnv1a::new();
        hash.write_bytes(self.describe().as_bytes());
        for payment in 1..=crate::algorithms::common::MAX_TABLE_PAYMENT {
            hash.write_f64(self.on_hold_rate(payment as f64));
        }
        hash.finish()
    }

    /// Checks that the model produces valid (positive, finite) rates for
    /// every integral payment in `[min_payment, max_payment]` and that the
    /// rate is non-decreasing over that range.
    fn validate_over(&self, min_payment: u64, max_payment: u64) -> Result<()> {
        let mut prev = 0.0_f64;
        for p in min_payment..=max_payment {
            let rate = self.on_hold_rate(p as f64);
            if !rate.is_finite() || rate <= 0.0 {
                return Err(CoreError::InvalidRate { payment: p, rate });
            }
            if p > min_payment && rate + 1e-12 < prev {
                return Err(CoreError::invalid_argument(format!(
                    "rate model is decreasing between payments {} and {p}",
                    p - 1
                )));
            }
            prev = rate;
        }
        Ok(())
    }
}

/// The serializable catalogue of persistable rate models — the durable-store
/// image of a [`RateModel`] trait object (see [`RateModel::to_spec`]).
///
/// Every variant wraps the concrete model verbatim, so a spec that
/// round-trips through `serde_json` rebuilds a model with bit-identical
/// parameters: same response curve, same
/// [`curve_fingerprint`](RateModel::curve_fingerprint), same plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateSpec {
    /// A [`LinearRate`].
    Linear(LinearRate),
    /// A [`QuadraticRate`].
    Quadratic(QuadraticRate),
    /// A [`LogRate`].
    Log(LogRate),
    /// A [`TabulatedRate`].
    Tabulated(TabulatedRate),
}

impl RateSpec {
    /// Rebuilds the described model, re-running the constructor validation
    /// (corrupt or hand-edited specs with invalid parameters are rejected
    /// instead of producing a model that panics mid-solve).
    pub fn build(&self) -> Result<Arc<dyn RateModel>> {
        Ok(match self {
            RateSpec::Linear(m) => Arc::new(LinearRate::new(m.k, m.b)?),
            RateSpec::Quadratic(m) => Arc::new(QuadraticRate::new(m.a, m.b)?),
            RateSpec::Log(m) => Arc::new(LogRate::new(m.scale)?),
            RateSpec::Tabulated(m) => Arc::new(TabulatedRate::new(m.points.clone())?),
        })
    }
}

/// The Linearity Hypothesis model: `λo(c) = k·c + b` (Hypothesis 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearRate {
    /// Slope `k` — sensitivity of the on-hold rate to price.
    pub k: f64,
    /// Intercept `b` — base attractiveness of the task at zero price.
    pub b: f64,
}

impl LinearRate {
    /// Creates a linear rate model. The slope must be non-negative and the
    /// model must be positive at payment one.
    pub fn new(k: f64, b: f64) -> Result<Self> {
        if !k.is_finite() || !b.is_finite() || k < 0.0 {
            return Err(CoreError::invalid_argument(format!(
                "linear rate parameters must be finite with k >= 0 (k={k}, b={b})"
            )));
        }
        if k + b <= 0.0 {
            return Err(CoreError::InvalidRate {
                payment: 1,
                rate: k + b,
            });
        }
        Ok(LinearRate { k, b })
    }

    /// The model `λ = 1 + p` used in panels (a), (g), (m) of Figure 2.
    pub fn unit_slope() -> Self {
        LinearRate { k: 1.0, b: 1.0 }
    }

    /// The model `λ = 10p + 1` (price-sensitive) of panels (b), (h), (n).
    pub fn steep() -> Self {
        LinearRate { k: 10.0, b: 1.0 }
    }

    /// The model `λ = 0.1p + 10` (price-insensitive) of panels (c), (i), (o).
    pub fn flat() -> Self {
        LinearRate { k: 0.1, b: 10.0 }
    }

    /// The model `λ = 3p + 3` of panels (d), (j), (p).
    pub fn moderate() -> Self {
        LinearRate { k: 3.0, b: 3.0 }
    }
}

impl RateModel for LinearRate {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        self.k * payment_units + self.b
    }

    fn describe(&self) -> String {
        format!("λo(p) = {}·p + {}", self.k, self.b)
    }

    fn curve_fingerprint(&self) -> u64 {
        // Parametric fast path: the curve is fully determined by (k, b), so
        // hashing them (plus a type tag) upholds the trait contract without
        // sampling the grid.
        let mut hash = Fnv1a::new();
        hash.write_bytes(b"LinearRate");
        hash.write_f64(self.k);
        hash.write_f64(self.b);
        hash.finish()
    }

    fn to_spec(&self) -> Option<RateSpec> {
        Some(RateSpec::Linear(*self))
    }
}

/// Quadratic model `λo(c) = a·c² + b`, used in the robustness panels (e), (k),
/// (q) of Figure 2 with `a = 1`, `b = 1` (`λ = 1 + p²`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuadraticRate {
    /// Quadratic coefficient.
    pub a: f64,
    /// Constant offset.
    pub b: f64,
}

impl QuadraticRate {
    /// Creates a quadratic model with validation.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !a.is_finite() || !b.is_finite() || a < 0.0 {
            return Err(CoreError::invalid_argument(format!(
                "quadratic rate parameters must be finite with a >= 0 (a={a}, b={b})"
            )));
        }
        if a + b <= 0.0 {
            return Err(CoreError::InvalidRate {
                payment: 1,
                rate: a + b,
            });
        }
        Ok(QuadraticRate { a, b })
    }

    /// The paper's `λ = 1 + p²` model.
    pub fn paper() -> Self {
        QuadraticRate { a: 1.0, b: 1.0 }
    }
}

impl RateModel for QuadraticRate {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        self.a * payment_units * payment_units + self.b
    }

    fn describe(&self) -> String {
        format!("λo(p) = {}·p² + {}", self.a, self.b)
    }

    fn curve_fingerprint(&self) -> u64 {
        let mut hash = Fnv1a::new();
        hash.write_bytes(b"QuadraticRate");
        hash.write_f64(self.a);
        hash.write_f64(self.b);
        hash.finish()
    }

    fn to_spec(&self) -> Option<RateSpec> {
        Some(RateSpec::Quadratic(*self))
    }
}

/// Logarithmic model `λo(c) = scale·ln(1 + c)`, the paper's `λ = log(1 + p)`
/// robustness model of panels (f), (l), (r).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogRate {
    /// Multiplicative scale in front of the logarithm.
    pub scale: f64,
}

impl LogRate {
    /// Creates a log model with validation.
    pub fn new(scale: f64) -> Result<Self> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(CoreError::invalid_argument(format!(
                "log rate scale must be positive and finite, got {scale}"
            )));
        }
        Ok(LogRate { scale })
    }

    /// The paper's `λ = log(1 + p)` model.
    pub fn paper() -> Self {
        LogRate { scale: 1.0 }
    }
}

impl RateModel for LogRate {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        self.scale * (1.0 + payment_units).ln()
    }

    fn describe(&self) -> String {
        format!("λo(p) = {}·ln(1 + p)", self.scale)
    }

    fn curve_fingerprint(&self) -> u64 {
        let mut hash = Fnv1a::new();
        hash.write_bytes(b"LogRate");
        hash.write_f64(self.scale);
        hash.finish()
    }

    fn to_spec(&self) -> Option<RateSpec> {
        Some(RateSpec::Log(*self))
    }
}

/// Table-driven model built from empirical `(payment, rate)` observations,
/// such as Table 1 of the paper. Rates between observed price points are
/// linearly interpolated; outside the observed range the nearest segment is
/// extrapolated (clamped below to stay positive).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TabulatedRate {
    /// `(payment_units, rate)` pairs sorted by payment.
    points: Vec<(f64, f64)>,
}

impl TabulatedRate {
    /// Builds a tabulated model from observation pairs. At least two points
    /// with distinct payments are required; rates must be positive.
    pub fn new(mut points: Vec<(f64, f64)>) -> Result<Self> {
        if points.len() < 2 {
            return Err(CoreError::InsufficientSamples {
                provided: points.len(),
                required: 2,
            });
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("payments must not be NaN"));
        for w in points.windows(2) {
            if (w[1].0 - w[0].0).abs() < 1e-12 {
                return Err(CoreError::DegenerateRegression);
            }
        }
        for &(p, r) in &points {
            if !p.is_finite() || !r.is_finite() || r <= 0.0 {
                return Err(CoreError::InvalidRate {
                    payment: p.max(0.0) as u64,
                    rate: r,
                });
            }
        }
        Ok(TabulatedRate { points })
    }

    /// The observation points backing this model.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Samples an arbitrary model onto the integer payment grid
    /// `1..=max_payment` (at least `1..=2`), producing a serializable
    /// stand-in for models that have no [`RateSpec`] of their own (ad-hoc
    /// closures).
    ///
    /// At every integer payment inside the grid the sampled table returns
    /// the original model's rate **bit-exactly** (knot hits bypass
    /// interpolation), so for budgets whose DP never explores payments past
    /// `max_payment` a re-solve against the sampled table reproduces the
    /// original plan bit-identically. Payments beyond the grid extrapolate
    /// the last segment — an approximation, which is why callers cap the
    /// grid at the largest payment the job's budget can reach.
    pub fn sampled_from(model: &dyn RateModel, max_payment: u64) -> Result<Self> {
        let max_payment = max_payment.max(2);
        let points = (1..=max_payment)
            .map(|p| (p as f64, model.on_hold_rate(p as f64)))
            .collect();
        TabulatedRate::new(points)
    }
}

impl RateModel for TabulatedRate {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        let pts = &self.points;
        let n = pts.len();
        // A payment that hits a table knot exactly returns the tabulated
        // rate verbatim: interpolating `r_lo + slope·Δ` across a full
        // segment can be off by an ulp, and the sampled-fallback journal
        // path (`TabulatedRate::sampled_from`) relies on knot hits being
        // bit-exact. Also turns the common integer-grid lookup into a
        // binary search instead of the linear segment scan below.
        if let Ok(idx) = pts.binary_search_by(|(p, _)| {
            p.partial_cmp(&payment_units)
                .expect("payments must not be NaN")
        }) {
            return pts[idx].1.max(f64::MIN_POSITIVE);
        }
        // Locate the segment to interpolate on (clamping to the outermost
        // segments for extrapolation).
        let (lo, hi) = if payment_units <= pts[0].0 {
            (pts[0], pts[1])
        } else if payment_units >= pts[n - 1].0 {
            (pts[n - 2], pts[n - 1])
        } else {
            let idx = pts
                .windows(2)
                .position(|w| payment_units >= w[0].0 && payment_units <= w[1].0)
                .unwrap_or(n - 2);
            (pts[idx], pts[idx + 1])
        };
        let slope = (hi.1 - lo.1) / (hi.0 - lo.0);
        let value = lo.1 + slope * (payment_units - lo.0);
        value.max(f64::MIN_POSITIVE)
    }

    fn describe(&self) -> String {
        format!("tabulated rate over {} points", self.points.len())
    }

    fn curve_fingerprint(&self) -> u64 {
        // The interpolated curve is fully determined by the (sorted) point
        // table.
        let mut hash = Fnv1a::new();
        hash.write_bytes(b"TabulatedRate");
        for &(p, r) in &self.points {
            hash.write_f64(p);
            hash.write_f64(r);
        }
        hash.finish()
    }

    fn to_spec(&self) -> Option<RateSpec> {
        Some(RateSpec::Tabulated(self.clone()))
    }
}

/// Adapter turning an arbitrary closure into a [`RateModel`]. Useful for
/// ad-hoc experiments and tests.
#[derive(Clone)]
pub struct FnRate {
    f: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
    label: String,
}

impl FnRate {
    /// Wraps a closure, attaching a descriptive label.
    pub fn new(label: impl Into<String>, f: impl Fn(f64) -> f64 + Send + Sync + 'static) -> Self {
        FnRate {
            f: Arc::new(f),
            label: label.into(),
        }
    }
}

impl fmt::Debug for FnRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FnRate")
            .field("label", &self.label)
            .finish()
    }
}

impl RateModel for FnRate {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        (self.f)(payment_units)
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// The catalogue of rate models exercised in Figure 2 of the paper, in panel
/// order: four linear and two non-linear models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperRateModel {
    /// `λ = 1 + p` (panels a, g, m).
    UnitSlope,
    /// `λ = 10p + 1` (panels b, h, n).
    Steep,
    /// `λ = 0.1p + 10` (panels c, i, o).
    Flat,
    /// `λ = 3p + 3` (panels d, j, p).
    Moderate,
    /// `λ = 1 + p²` (panels e, k, q).
    Quadratic,
    /// `λ = log(1 + p)` (panels f, l, r).
    Logarithmic,
}

impl PaperRateModel {
    /// All six models in panel order.
    pub const ALL: [PaperRateModel; 6] = [
        PaperRateModel::UnitSlope,
        PaperRateModel::Steep,
        PaperRateModel::Flat,
        PaperRateModel::Moderate,
        PaperRateModel::Quadratic,
        PaperRateModel::Logarithmic,
    ];

    /// Instantiates the corresponding [`RateModel`].
    pub fn build(self) -> Box<dyn RateModel> {
        match self {
            PaperRateModel::UnitSlope => Box::new(LinearRate::unit_slope()),
            PaperRateModel::Steep => Box::new(LinearRate::steep()),
            PaperRateModel::Flat => Box::new(LinearRate::flat()),
            PaperRateModel::Moderate => Box::new(LinearRate::moderate()),
            PaperRateModel::Quadratic => Box::new(QuadraticRate::paper()),
            PaperRateModel::Logarithmic => Box::new(LogRate::paper()),
        }
    }

    /// Short label used in figure file names (`"1+p"`, `"10p+1"`, ...).
    pub fn label(self) -> &'static str {
        match self {
            PaperRateModel::UnitSlope => "1+p",
            PaperRateModel::Steep => "10p+1",
            PaperRateModel::Flat => "0.1p+10",
            PaperRateModel::Moderate => "3p+3",
            PaperRateModel::Quadratic => "1+p^2",
            PaperRateModel::Logarithmic => "log(1+p)",
        }
    }

    /// Whether this model satisfies the Linearity Hypothesis exactly.
    pub fn is_linear(self) -> bool {
        !matches!(
            self,
            PaperRateModel::Quadratic | PaperRateModel::Logarithmic
        )
    }
}

impl fmt::Display for PaperRateModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl<M: RateModel + ?Sized> RateModel for &M {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        (**self).on_hold_rate(payment_units)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn curve_fingerprint(&self) -> u64 {
        // Forward instead of re-deriving: a parametric override on the inner
        // model must produce the same key through every smart pointer.
        (**self).curve_fingerprint()
    }
    fn to_spec(&self) -> Option<RateSpec> {
        (**self).to_spec()
    }
}

impl<M: RateModel + ?Sized> RateModel for Box<M> {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        (**self).on_hold_rate(payment_units)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn curve_fingerprint(&self) -> u64 {
        (**self).curve_fingerprint()
    }
    fn to_spec(&self) -> Option<RateSpec> {
        (**self).to_spec()
    }
}

impl<M: RateModel + ?Sized> RateModel for Arc<M> {
    fn on_hold_rate(&self, payment_units: f64) -> f64 {
        (**self).on_hold_rate(payment_units)
    }
    fn describe(&self) -> String {
        (**self).describe()
    }
    fn curve_fingerprint(&self) -> u64 {
        (**self).curve_fingerprint()
    }
    fn to_spec(&self) -> Option<RateSpec> {
        (**self).to_spec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_rate_matches_formula() {
        let m = LinearRate::new(2.0, 3.0).unwrap();
        assert!((m.on_hold_rate(0.0) - 3.0).abs() < 1e-12);
        assert!((m.on_hold_rate(5.0) - 13.0).abs() < 1e-12);
        assert!(m.describe().contains("2"));
    }

    #[test]
    fn linear_rate_rejects_bad_parameters() {
        assert!(LinearRate::new(-1.0, 5.0).is_err());
        assert!(LinearRate::new(0.0, 0.0).is_err());
        assert!(LinearRate::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn paper_linear_presets_match_figure_2() {
        assert!((LinearRate::unit_slope().on_hold_rate(4.0) - 5.0).abs() < 1e-12);
        assert!((LinearRate::steep().on_hold_rate(4.0) - 41.0).abs() < 1e-12);
        assert!((LinearRate::flat().on_hold_rate(4.0) - 10.4).abs() < 1e-12);
        assert!((LinearRate::moderate().on_hold_rate(4.0) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn quadratic_and_log_match_paper_forms() {
        let q = QuadraticRate::paper();
        assert!((q.on_hold_rate(3.0) - 10.0).abs() < 1e-12);
        let l = LogRate::paper();
        assert!((l.on_hold_rate(3.0) - 4.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn quadratic_and_log_validation() {
        assert!(QuadraticRate::new(-1.0, 1.0).is_err());
        assert!(QuadraticRate::new(0.0, 0.0).is_err());
        assert!(LogRate::new(0.0).is_err());
        assert!(LogRate::new(f64::NAN).is_err());
    }

    #[test]
    fn validate_over_accepts_monotone_positive_models() {
        LinearRate::unit_slope().validate_over(1, 100).unwrap();
        QuadraticRate::paper().validate_over(1, 100).unwrap();
        LogRate::paper().validate_over(1, 100).unwrap();
    }

    #[test]
    fn validate_over_rejects_decreasing_model() {
        let m = FnRate::new("decreasing", |p| 10.0 - p);
        assert!(m.validate_over(1, 5).is_err());
    }

    #[test]
    fn validate_over_rejects_nonpositive_rate() {
        let m = FnRate::new("goes negative", |p| 2.0 - p);
        let err = m.validate_over(1, 5).unwrap_err();
        match err {
            CoreError::InvalidRate { payment, .. } => assert!(payment >= 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tabulated_rate_interpolates_table_1() {
        // Table 1 of the paper: sorting vote rates at rewards 1.5, 2, 3.
        let m = TabulatedRate::new(vec![(2.0, 2.0), (3.0, 3.0), (1.5, 1.5)]).unwrap();
        assert!((m.on_hold_rate(2.0) - 2.0).abs() < 1e-12);
        assert!((m.on_hold_rate(2.5) - 2.5).abs() < 1e-12);
        // extrapolation beyond the table keeps the last slope
        assert!((m.on_hold_rate(4.0) - 4.0).abs() < 1e-12);
        assert!((m.on_hold_rate(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(m.points().len(), 3);
    }

    #[test]
    fn tabulated_rate_rejects_degenerate_tables() {
        assert!(TabulatedRate::new(vec![(1.0, 1.0)]).is_err());
        assert!(TabulatedRate::new(vec![(1.0, 1.0), (1.0, 2.0)]).is_err());
        assert!(TabulatedRate::new(vec![(1.0, 0.0), (2.0, 1.0)]).is_err());
    }

    #[test]
    fn tabulated_rate_never_returns_nonpositive() {
        let m = TabulatedRate::new(vec![(5.0, 1.0), (10.0, 6.0)]).unwrap();
        // Linear extrapolation to payment 0 would be negative; the model
        // clamps to a tiny positive value instead.
        assert!(m.on_hold_rate(0.0) > 0.0);
    }

    #[test]
    fn tabulated_knot_hits_are_bit_exact() {
        // Knot values whose segment interpolation `r_lo + slope·Δ` would
        // round differently from the stored rate must still come back
        // verbatim — the sampled-fallback journal path depends on it.
        let pts: Vec<(f64, f64)> = (1..=64)
            .map(|p| (p as f64, (p as f64).sqrt() + 0.1 * (p as f64).ln_1p()))
            .collect();
        let m = TabulatedRate::new(pts.clone()).unwrap();
        for (p, r) in pts {
            assert_eq!(m.on_hold_rate(p).to_bits(), r.to_bits());
        }
    }

    #[test]
    fn sampled_from_agrees_bit_exactly_on_the_grid() {
        let source = FnRate::new("adhoc", |p| p.sqrt() * 1.7 + 0.3);
        let sampled = TabulatedRate::sampled_from(&source, 48).unwrap();
        assert_eq!(sampled.points().len(), 48);
        for p in 1..=48u64 {
            assert_eq!(
                sampled.on_hold_rate(p as f64).to_bits(),
                source.on_hold_rate(p as f64).to_bits(),
                "grid payment {p}"
            );
        }
        // A sampled table has a spec, so it can be journaled.
        assert!(sampled.to_spec().is_some());
    }

    #[test]
    fn sampled_from_widens_tiny_grids() {
        // A one-unit budget still yields a valid (two-point) table.
        let source = LinearRate::unit_slope();
        let sampled = TabulatedRate::sampled_from(&source, 1).unwrap();
        assert_eq!(sampled.points().len(), 2);
    }

    #[test]
    fn fn_rate_wraps_closures() {
        let m = FnRate::new("sqrt", |p| p.sqrt() + 1.0);
        assert!((m.on_hold_rate(4.0) - 3.0).abs() < 1e-12);
        assert_eq!(m.describe(), "sqrt");
        assert!(format!("{m:?}").contains("sqrt"));
    }

    #[test]
    fn paper_rate_model_catalogue() {
        assert_eq!(PaperRateModel::ALL.len(), 6);
        for model in PaperRateModel::ALL {
            let built = model.build();
            assert!(built.on_hold_rate(3.0) > 0.0);
            assert!(!model.label().is_empty());
            assert_eq!(format!("{model}"), model.label());
        }
        assert!(PaperRateModel::UnitSlope.is_linear());
        assert!(PaperRateModel::Flat.is_linear());
        assert!(!PaperRateModel::Quadratic.is_linear());
        assert!(!PaperRateModel::Logarithmic.is_linear());
    }

    #[test]
    fn curve_fingerprints_identify_curves_not_instances() {
        // Equal parameters → equal fingerprint, distinct parameters differ.
        assert_eq!(
            LinearRate::unit_slope().curve_fingerprint(),
            LinearRate::new(1.0, 1.0).unwrap().curve_fingerprint()
        );
        assert_ne!(
            LinearRate::unit_slope().curve_fingerprint(),
            LinearRate::steep().curve_fingerprint()
        );
        // Type tags keep same-parameter models of different shapes apart.
        assert_ne!(
            QuadraticRate::paper().curve_fingerprint(),
            LinearRate::unit_slope().curve_fingerprint()
        );
        // Smart pointers forward to the inner override.
        let arced: Arc<dyn RateModel> = Arc::new(LinearRate::unit_slope());
        assert_eq!(
            arced.curve_fingerprint(),
            LinearRate::unit_slope().curve_fingerprint()
        );
        let boxed: Box<dyn RateModel> = Box::new(LogRate::paper());
        assert_eq!(
            boxed.curve_fingerprint(),
            LogRate::paper().curve_fingerprint()
        );
        // The default sampling path separates different closures even when
        // their labels collide.
        let a = FnRate::new("f", |p| p + 1.0);
        let b = FnRate::new("f", |p| p + 2.0);
        assert_ne!(a.curve_fingerprint(), b.curve_fingerprint());
        // Tabulated models hash their point tables.
        assert_ne!(
            TabulatedRate::new(vec![(1.0, 1.0), (4.0, 4.0)])
                .unwrap()
                .curve_fingerprint(),
            TabulatedRate::new(vec![(1.0, 1.0), (4.0, 5.0)])
                .unwrap()
                .curve_fingerprint()
        );
    }

    /// `to_spec` → serde → `build` is an exact round trip: the rebuilt model
    /// evaluates bit-identically and keeps its curve fingerprint, so durable
    /// state keyed by the curve stays valid across restarts.
    #[test]
    fn rate_specs_round_trip_bit_exactly() {
        let models: Vec<Arc<dyn RateModel>> = vec![
            Arc::new(LinearRate::new(1.25, 0.375).unwrap()),
            Arc::new(QuadraticRate::new(0.5, 1.5).unwrap()),
            Arc::new(LogRate::new(2.25).unwrap()),
            Arc::new(TabulatedRate::new(vec![(1.0, 1.1), (4.0, 4.3), (9.0, 8.7)]).unwrap()),
        ];
        for model in models {
            let spec = model.to_spec().expect("parametric models have specs");
            let text = serde_json::to_string(&spec).unwrap();
            let back: RateSpec = serde_json::from_str(&text).unwrap();
            assert_eq!(back, spec);
            let rebuilt = back.build().unwrap();
            assert_eq!(rebuilt.curve_fingerprint(), model.curve_fingerprint());
            for payment in [1u64, 2, 7, 64, 1000] {
                assert_eq!(
                    rebuilt.on_hold_rate(payment as f64).to_bits(),
                    model.on_hold_rate(payment as f64).to_bits(),
                    "payment {payment}"
                );
            }
        }
        // Ad-hoc closures have no spec and are simply not persisted.
        assert!(FnRate::new("adhoc", |p| p + 1.0).to_spec().is_none());
        // Invalid parameters in a (corrupt) spec are rejected at build time.
        assert!(RateSpec::Linear(LinearRate { k: -1.0, b: 0.0 })
            .build()
            .is_err());
    }

    #[test]
    fn rate_model_blanket_impls() {
        let linear = LinearRate::unit_slope();
        let by_ref: &dyn RateModel = &linear;
        assert!((by_ref.on_hold_rate(1.0) - 2.0).abs() < 1e-12);
        let boxed: Box<dyn RateModel> = Box::new(linear);
        assert!((boxed.on_hold_rate(1.0) - 2.0).abs() < 1e-12);
        let arced: Arc<dyn RateModel> = Arc::new(linear);
        assert!((arced.on_hold_rate(1.0) - 2.0).abs() < 1e-12);
        assert!(!RateModel::describe(&boxed).is_empty());
        assert!(!RateModel::describe(&arced).is_empty());
    }
}

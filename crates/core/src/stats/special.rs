//! Special functions: log-gamma and the regularized incomplete gamma
//! function.
//!
//! These power the moment-matched Gamma approximation used by the analytic
//! job-latency estimator (see [`crate::latency`]): the phase-1 latency of a
//! task whose repetitions receive *unequal* payments is a sum of exponentials
//! with distinct rates, which we approximate by a Gamma distribution with the
//! same mean and variance. Evaluating that Gamma's CDF requires `P(a, x)`.

use crate::error::{CoreError, Result};

/// Natural log of the Gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~15 significant digits for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// For a Gamma(shape = a, rate = β) random variable `X`, `P(a, βt)` is the
/// CDF `Pr[X ≤ t]`. Uses the series expansion for `x < a + 1` and the
/// continued fraction for the complement otherwise (Numerical-Recipes style).
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if !(a.is_finite() && a > 0.0 && x.is_finite() && x >= 0.0) {
        return Err(CoreError::invalid_argument(format!(
            "gamma_p requires a > 0 and x >= 0 (a={a}, x={x})"
        )));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        Ok(1.0 - gamma_q_continued_fraction(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    Ok(1.0 - gamma_p(a, x)?)
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-14;
const FPMIN: f64 = 1e-300;

fn gamma_p_series(a: f64, x: f64) -> Result<f64> {
    gamma_p_series_with(a, x, ln_gamma(a))
}

fn gamma_p_series_with(a: f64, x: f64, ln_gamma_a: f64) -> Result<f64> {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            let log_prefix = -x + a * x.ln() - ln_gamma_a;
            return Ok((sum * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(CoreError::IntegrationDidNotConverge {
        tolerance: EPS,
        achieved: del.abs(),
    })
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> Result<f64> {
    gamma_q_continued_fraction_with(a, x, ln_gamma(a))
}

fn gamma_q_continued_fraction_with(a: f64, x: f64, ln_gamma_a: f64) -> Result<f64> {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            let log_prefix = -x + a * x.ln() - ln_gamma_a;
            return Ok((h * log_prefix.exp()).clamp(0.0, 1.0));
        }
    }
    Err(CoreError::IntegrationDidNotConverge {
        tolerance: EPS,
        achieved: f64::NAN,
    })
}

/// CDF of a Gamma distribution with the given shape and rate at point `t`.
pub fn gamma_cdf(shape: f64, rate: f64, t: f64) -> Result<f64> {
    if !(shape.is_finite() && shape > 0.0 && rate.is_finite() && rate > 0.0) {
        return Err(CoreError::invalid_distribution(format!(
            "gamma_cdf requires positive shape and rate (shape={shape}, rate={rate})"
        )));
    }
    if t <= 0.0 {
        return Ok(0.0);
    }
    gamma_p(shape, rate * t)
}

/// Largest integer shape the frozen CDF evaluates via the closed-form
/// Erlang sum (`k` terms); larger or fractional shapes use the incomplete
/// gamma machinery.
const ERLANG_CLOSED_FORM_MAX_SHAPE: f64 = 128.0;

/// A frozen `Gamma(shape, rate)` distribution with its shape-dependent
/// constants precomputed, for hot loops that evaluate the CDF at many points
/// with fixed parameters — the analytic job-latency estimator calls the CDF
/// of every task profile at every quadrature point.
///
/// Two savings over repeated [`gamma_cdf`] calls: `ln Γ(shape)` (a 9-term
/// Lanczos sum plus logs) is computed once at construction instead of per
/// point, and small *integer* shapes — the exact Erlang case produced by
/// equal per-repetition payments — skip the series/continued-fraction
/// machinery entirely in favour of the closed-form Erlang sum
/// `P(k, x) = 1 − e^{−x} Σ_{j<k} x^j/j!`.
#[derive(Debug, Clone, Copy)]
pub struct GammaDist {
    shape: f64,
    rate: f64,
    ln_gamma_shape: f64,
    /// `Some(k)` when `shape` is an integer `k ≤ 128`: use the Erlang sum.
    erlang_shape: Option<u32>,
}

impl GammaDist {
    /// Freezes a Gamma distribution for repeated CDF evaluation.
    pub fn new(shape: f64, rate: f64) -> Result<Self> {
        if !(shape.is_finite() && shape > 0.0 && rate.is_finite() && rate > 0.0) {
            return Err(CoreError::invalid_distribution(format!(
                "GammaDist requires positive shape and rate (shape={shape}, rate={rate})"
            )));
        }
        let erlang_shape =
            (shape.fract() == 0.0 && shape <= ERLANG_CLOSED_FORM_MAX_SHAPE).then_some(shape as u32);
        Ok(GammaDist {
            shape,
            rate,
            ln_gamma_shape: ln_gamma(shape),
            erlang_shape,
        })
    }

    /// `Pr[X ≤ t]`.
    pub fn cdf(&self, t: f64) -> Result<f64> {
        if t <= 0.0 {
            return Ok(0.0);
        }
        let x = self.rate * t;
        if let Some(k) = self.erlang_shape {
            // Erlang closed form. Terms are bounded by e^x, so the sum
            // cannot overflow while e^{-x} is representable; far in the
            // right tail the CDF is 1 to machine precision anyway.
            if x > 700.0 {
                return Ok(1.0);
            }
            let mut term = 1.0;
            let mut sum = 1.0;
            for j in 1..k {
                term *= x / f64::from(j);
                sum += term;
            }
            return Ok((1.0 - (-x).exp() * sum).clamp(0.0, 1.0));
        }
        if x < self.shape + 1.0 {
            gamma_p_series_with(self.shape, x, self.ln_gamma_shape)
        } else {
            Ok(1.0 - gamma_q_continued_fraction_with(self.shape, x, self.ln_gamma_shape)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::erlang::Erlang;
    use crate::stats::numerical::ln_factorial;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..20u64 {
            let expected = ln_factorial(n - 1);
            let got = ln_gamma(n as f64);
            assert!(
                (got - expected).abs() < 1e-9,
                "ln_gamma({n}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let got = ln_gamma(0.5);
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((got - expected).abs() < 1e-12);
        // Γ(3/2) = √π / 2
        let got = ln_gamma(1.5);
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0).unwrap(), 0.0);
        assert!(gamma_p(2.0, 100.0).unwrap() > 0.999_999);
        assert!(gamma_p(-1.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
        assert!(gamma_p(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // For shape 1, P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            let got = gamma_p(1.0, x).unwrap();
            let expected = 1.0 - (-x).exp();
            assert!((got - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_and_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (30.0, 25.0)] {
            let p = gamma_p(a, x).unwrap();
            let q = gamma_q(a, x).unwrap();
            assert!((p + q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_cdf_matches_erlang_for_integer_shapes() {
        for &(shape, rate) in &[(1u32, 2.0), (3, 0.7), (7, 5.0), (20, 1.3)] {
            let erl = Erlang::new(shape, rate).unwrap();
            for i in 1..20 {
                let t = i as f64 * erl.mean() / 8.0;
                let a = gamma_cdf(f64::from(shape), rate, t).unwrap();
                let b = erl.cdf(t);
                assert!(
                    (a - b).abs() < 1e-9,
                    "shape {shape} rate {rate} t {t}: gamma {a} vs erlang {b}"
                );
            }
        }
    }

    #[test]
    fn gamma_cdf_validates_parameters_and_handles_nonpositive_t() {
        assert!(gamma_cdf(0.0, 1.0, 1.0).is_err());
        assert!(gamma_cdf(1.0, 0.0, 1.0).is_err());
        assert_eq!(gamma_cdf(2.0, 1.0, 0.0).unwrap(), 0.0);
        assert_eq!(gamma_cdf(2.0, 1.0, -5.0).unwrap(), 0.0);
    }

    /// The frozen distribution agrees with the per-call path: bit-exactly on
    /// the generic (fractional-shape) branch, and to Erlang-sum accuracy on
    /// the integer-shape fast path.
    #[test]
    fn frozen_gamma_dist_matches_gamma_cdf() {
        // Fractional shapes take the identical series/CF path.
        for &(shape, rate) in &[(3.7, 1.1), (0.4, 2.0), (12.3, 0.25)] {
            let dist = GammaDist::new(shape, rate).unwrap();
            for i in 0..60 {
                let t = i as f64 * 0.3;
                assert_eq!(
                    dist.cdf(t).unwrap().to_bits(),
                    gamma_cdf(shape, rate, t).unwrap().to_bits(),
                    "shape {shape} rate {rate} t {t}"
                );
            }
        }
        // Integer shapes use the closed Erlang sum: exact against the
        // Erlang CDF and far-tail saturated.
        for &(shape, rate) in &[(1u32, 2.0), (3, 0.7), (7, 5.0), (50, 1.3)] {
            let dist = GammaDist::new(f64::from(shape), rate).unwrap();
            let erl = Erlang::new(shape, rate).unwrap();
            for i in 0..40 {
                let t = i as f64 * erl.mean() / 8.0;
                let got = dist.cdf(t).unwrap();
                assert!(
                    (got - erl.cdf(t)).abs() < 1e-12,
                    "shape {shape} rate {rate} t {t}: {got} vs {}",
                    erl.cdf(t)
                );
            }
            assert_eq!(dist.cdf(1e6).unwrap(), 1.0);
        }
        assert!(GammaDist::new(0.0, 1.0).is_err());
        assert!(GammaDist::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn gamma_cdf_monotone_in_t() {
        let mut prev = 0.0;
        for i in 0..100 {
            let t = i as f64 * 0.2;
            let c = gamma_cdf(3.7, 1.1, t).unwrap();
            assert!(c + 1e-12 >= prev);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }
}

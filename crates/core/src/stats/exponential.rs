//! The exponential distribution — the paper's model for both latency phases.
//!
//! Section 3.1.1 derives that the acceptance (on-hold) time of a task follows
//! an exponential distribution when workers arrive as a Poisson process, and
//! Section 3.2 models the processing phase as exponential as well.

use crate::error::{CoreError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    pub fn new(rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(CoreError::invalid_distribution(format!(
                "exponential rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Exponential { rate })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// The variance `1/λ²`.
    pub fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    /// Probability density function `f(t) = λ e^{-λt}` for `t >= 0`.
    pub fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * t).exp()
        }
    }

    /// Cumulative distribution function `F(t) = 1 - e^{-λt}`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * t).exp()
        }
    }

    /// Survival function `S(t) = e^{-λt}`.
    pub fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            1.0
        } else {
            (-self.rate * t).exp()
        }
    }

    /// Quantile (inverse CDF). `q` must be in `[0, 1)`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&q) {
            return Err(CoreError::invalid_argument(format!(
                "quantile argument must be in [0, 1), got {q}"
            )));
        }
        Ok(-(1.0 - q).ln() / self.rate)
    }

    /// Draws one sample using inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Avoid ln(0) by sampling from the open interval (0, 1].
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Expected value of the maximum of `n` i.i.d. copies: `H_n / λ`.
    pub fn expected_max(&self, n: u64) -> f64 {
        super::numerical::harmonic(n) / self.rate
    }

    /// Expected value of the minimum of `n` i.i.d. copies: `1/(nλ)`.
    pub fn expected_min(&self, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            1.0 / (n as f64 * self.rate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_rate() {
        assert!(Exponential::new(1.0).is_ok());
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-3.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
    }

    #[test]
    fn moments() {
        let d = Exponential::new(4.0).unwrap();
        assert!((d.rate() - 4.0).abs() < 1e-15);
        assert!((d.mean() - 0.25).abs() < 1e-15);
        assert!((d.variance() - 0.0625).abs() < 1e-15);
    }

    #[test]
    fn pdf_cdf_survival_consistency() {
        let d = Exponential::new(2.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.survival(-1.0), 1.0);
        for &t in &[0.0, 0.1, 0.5, 1.0, 3.0] {
            assert!((d.cdf(t) + d.survival(t) - 1.0).abs() < 1e-12);
        }
        // pdf integrates (roughly) to cdf increments
        let dt = 1e-6;
        let t = 0.7;
        let numeric_density = (d.cdf(t + dt) - d.cdf(t)) / dt;
        assert!((numeric_density - d.pdf(t)).abs() < 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = Exponential::new(0.5).unwrap();
        for &q in &[0.0, 0.1, 0.5, 0.9, 0.999] {
            let t = d.quantile(q).unwrap();
            assert!((d.cdf(t) - q).abs() < 1e-10);
        }
        assert!(d.quantile(1.0).is_err());
        assert!(d.quantile(-0.1).is_err());
    }

    #[test]
    fn expected_max_and_min_order_statistics() {
        let d = Exponential::new(2.0).unwrap();
        assert!((d.expected_max(1) - 0.5).abs() < 1e-12);
        assert!((d.expected_max(2) - 0.75).abs() < 1e-12);
        assert!((d.expected_min(2) - 0.25).abs() < 1e-12);
        assert_eq!(d.expected_min(0), 0.0);
    }

    #[test]
    fn sampling_matches_mean_and_nonnegative() {
        let d = Exponential::new(1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let samples = d.sample_n(&mut rng, n);
        assert!(samples.iter().all(|&x| x >= 0.0 && x.is_finite()));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(
            (mean - d.mean()).abs() < 0.01,
            "sample mean {mean} too far from {}",
            d.mean()
        );
    }

    #[test]
    fn sampling_max_matches_harmonic_prediction() {
        let d = Exponential::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let n = 10;
        let mut acc = 0.0;
        for _ in 0..trials {
            let max = d.sample_n(&mut rng, n).into_iter().fold(f64::MIN, f64::max);
            acc += max;
        }
        let empirical = acc / trials as f64;
        let analytic = d.expected_max(n as u64);
        assert!(
            (empirical - analytic).abs() < 0.05,
            "empirical {empirical} vs analytic {analytic}"
        );
    }
}

//! The Erlang distribution — the latency of a multi-repetition task.
//!
//! Lemma 3 of the paper: an atomic task that must be answered `k` times, with
//! each repetition's latency exponential with rate `λ`, has total latency
//! distributed as `Erlang(k, λ)` (the sum of `k` i.i.d. exponentials).

use crate::error::{CoreError, Result};
use crate::stats::exponential::Exponential;
use crate::stats::numerical::ln_factorial;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An Erlang distribution with integer shape `k >= 1` and rate `λ > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Erlang {
    shape: u32,
    rate: f64,
}

impl Erlang {
    /// Creates an Erlang distribution.
    pub fn new(shape: u32, rate: f64) -> Result<Self> {
        if shape == 0 {
            return Err(CoreError::invalid_distribution(
                "Erlang shape must be at least 1".to_owned(),
            ));
        }
        if !rate.is_finite() || rate <= 0.0 {
            return Err(CoreError::invalid_distribution(format!(
                "Erlang rate must be positive and finite, got {rate}"
            )));
        }
        Ok(Erlang { shape, rate })
    }

    /// The shape parameter `k` (number of summed exponential phases).
    pub fn shape(&self) -> u32 {
        self.shape
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean `k/λ`.
    pub fn mean(&self) -> f64 {
        f64::from(self.shape) / self.rate
    }

    /// Variance `k/λ²`.
    pub fn variance(&self) -> f64 {
        f64::from(self.shape) / (self.rate * self.rate)
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Probability density function
    /// `f(t) = λ^k t^{k-1} e^{-λt} / (k-1)!` for `t >= 0`.
    ///
    /// Evaluated in log-space to stay stable for large shapes.
    pub fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        if t == 0.0 {
            return if self.shape == 1 { self.rate } else { 0.0 };
        }
        let k = f64::from(self.shape);
        let log_pdf = k * self.rate.ln() + (k - 1.0) * t.ln()
            - self.rate * t
            - ln_factorial(u64::from(self.shape) - 1);
        log_pdf.exp()
    }

    /// Cumulative distribution function
    /// `F(t) = 1 - Σ_{i=0}^{k-1} e^{-λt} (λt)^i / i!`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        1.0 - self.survival(t)
    }

    /// Survival function `S(t) = Σ_{i=0}^{k-1} e^{-λt} (λt)^i / i!`.
    ///
    /// Terms are accumulated iteratively (`term_{i+1} = term_i · λt/(i+1)`) so
    /// no factorials are materialised.
    pub fn survival(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        let x = self.rate * t;
        let mut term = (-x).exp();
        let mut sum = term;
        for i in 1..self.shape {
            term *= x / f64::from(i);
            sum += term;
        }
        sum.clamp(0.0, 1.0)
    }

    /// Draws one sample as a sum of `k` exponential draws.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let exp = Exponential::new(self.rate).expect("rate validated at construction");
        (0..self.shape).map(|_| exp.sample(rng)).sum()
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The exponential special case `Erlang(1, λ)` as an [`Exponential`].
    pub fn as_exponential(&self) -> Option<Exponential> {
        if self.shape == 1 {
            Exponential::new(self.rate).ok()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_parameters() {
        assert!(Erlang::new(1, 1.0).is_ok());
        assert!(Erlang::new(0, 1.0).is_err());
        assert!(Erlang::new(2, 0.0).is_err());
        assert!(Erlang::new(2, -1.0).is_err());
        assert!(Erlang::new(2, f64::NAN).is_err());
    }

    #[test]
    fn moments() {
        let d = Erlang::new(5, 2.0).unwrap();
        assert_eq!(d.shape(), 5);
        assert!((d.rate() - 2.0).abs() < 1e-15);
        assert!((d.mean() - 2.5).abs() < 1e-15);
        assert!((d.variance() - 1.25).abs() < 1e-15);
        assert!((d.std_dev() - 1.25_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn shape_one_reduces_to_exponential() {
        let e = Erlang::new(1, 3.0).unwrap();
        let x = Exponential::new(3.0).unwrap();
        for &t in &[0.0, 0.1, 0.5, 1.0, 2.0] {
            assert!((e.pdf(t) - x.pdf(t)).abs() < 1e-12);
            assert!((e.cdf(t) - x.cdf(t)).abs() < 1e-12);
        }
        assert!(e.as_exponential().is_some());
        assert!(Erlang::new(2, 3.0).unwrap().as_exponential().is_none());
    }

    #[test]
    fn cdf_and_survival_sum_to_one() {
        let d = Erlang::new(4, 1.7).unwrap();
        for &t in &[0.0, 0.2, 1.0, 3.0, 10.0] {
            assert!((d.cdf(t) + d.survival(t) - 1.0).abs() < 1e-12);
        }
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.survival(-1.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_limits_correct() {
        let d = Erlang::new(3, 2.0).unwrap();
        let mut prev = 0.0;
        for i in 0..200 {
            let t = i as f64 * 0.1;
            let c = d.cdf(t);
            assert!(c >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!(d.cdf(50.0) > 0.999999);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = Erlang::new(3, 1.5).unwrap();
        // numeric integral of pdf over [0, 4] should equal cdf(4)
        let steps = 20_000;
        let h = 4.0 / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            let t0 = i as f64 * h;
            let t1 = t0 + h;
            acc += 0.5 * (d.pdf(t0) + d.pdf(t1)) * h;
        }
        assert!((acc - d.cdf(4.0)).abs() < 1e-5);
    }

    #[test]
    fn pdf_edge_cases_at_zero() {
        assert!((Erlang::new(1, 2.0).unwrap().pdf(0.0) - 2.0).abs() < 1e-12);
        assert_eq!(Erlang::new(2, 2.0).unwrap().pdf(0.0), 0.0);
        assert_eq!(Erlang::new(2, 2.0).unwrap().pdf(-0.5), 0.0);
    }

    #[test]
    fn pdf_stable_for_large_shape() {
        let d = Erlang::new(500, 10.0).unwrap();
        // pdf near the mean should be finite and positive
        let v = d.pdf(d.mean());
        assert!(v.is_finite() && v > 0.0);
        // far tails underflow gracefully to zero
        assert!(d.pdf(1e6).abs() < 1e-300 || d.pdf(1e6) == 0.0);
    }

    #[test]
    fn sampling_matches_mean() {
        let d = Erlang::new(4, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean = d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() < 0.02);
    }

    #[test]
    fn erlang_is_sum_of_exponentials_lemma_3() {
        // Empirically check Lemma 3: sum of k exponential latencies has the
        // Erlang(k, λ) cdf.
        let k = 3u32;
        let lambda = 1.2;
        let exp = Exponential::new(lambda).unwrap();
        let erl = Erlang::new(k, lambda).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 50_000;
        let t_check = erl.mean();
        let mut below = 0usize;
        for _ in 0..trials {
            let total: f64 = (0..k).map(|_| exp.sample(&mut rng)).sum();
            if total <= t_check {
                below += 1;
            }
        }
        let empirical_cdf = below as f64 / trials as f64;
        assert!(
            (empirical_cdf - erl.cdf(t_check)).abs() < 0.01,
            "empirical {empirical_cdf} vs analytic {}",
            erl.cdf(t_check)
        );
    }
}

//! Numerical helpers: quadrature, harmonic numbers and special functions.
//!
//! The paper's group-latency expectations involve integrals that have no
//! closed form (expected maximum of `n` Erlang variables, Section 4.3.1). We
//! evaluate them with adaptive Simpson quadrature over the survival function,
//! which is numerically benign because the integrand is non-negative,
//! monotone decreasing and has exponentially light tails.

use crate::error::{CoreError, Result};

/// Default absolute tolerance for adaptive quadrature.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Maximum recursion depth for adaptive Simpson integration.
const MAX_DEPTH: u32 = 48;

/// The `n`-th harmonic number `H_n = 1 + 1/2 + ... + 1/n`.
///
/// The expected maximum of `n` i.i.d. `Exp(λ)` variables is `H_n / λ`
/// (used for single-round groups in Scenario II).
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 1_000_000 {
        // Direct summation in reverse order to limit rounding error.
        let mut sum = 0.0;
        let mut i = n;
        while i >= 1 {
            sum += 1.0 / i as f64;
            i -= 1;
        }
        sum
    } else {
        // Asymptotic expansion: H_n = ln n + γ + 1/(2n) - 1/(12n²) + 1/(120n⁴)
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        let nf = n as f64;
        nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
            + 1.0 / (120.0 * nf.powi(4))
    }
}

/// Natural logarithm of `n!`, via direct summation for small `n` and the
/// Stirling series otherwise. Used to evaluate Erlang densities without
/// overflow for large shape parameters.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n <= 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let nf = n as f64;
        // Stirling: ln n! = n ln n - n + 0.5 ln(2πn) + 1/(12n) - 1/(360n³)
        nf * nf.ln() - nf + 0.5 * (2.0 * std::f64::consts::PI * nf).ln() + 1.0 / (12.0 * nf)
            - 1.0 / (360.0 * nf * nf * nf)
    }
}

/// Simpson's rule estimate of `∫_a^b f(x) dx` on a single panel, from the
/// endpoint and midpoint evaluations.
fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

/// Recursive adaptive Simpson quadrature.
#[allow(clippy::too_many_arguments)]
fn adaptive_simpson_rec(
    f: &impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth >= MAX_DEPTH || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_simpson_rec(f, a, m, fa, flm, fm, left, tol * 0.5, depth + 1)
            + adaptive_simpson_rec(f, m, b, fm, frm, fb, right, tol * 0.5, depth + 1)
    }
}

/// Adaptive Simpson quadrature of `f` over the finite interval `[a, b]`.
pub fn integrate(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !(a.is_finite() && b.is_finite()) || b < a {
        return Err(CoreError::invalid_argument(format!(
            "integration bounds must be finite with b >= a (a={a}, b={b})"
        )));
    }
    if (b - a).abs() < f64::MIN_POSITIVE {
        return Ok(0.0);
    }
    if !(tol.is_finite() && tol > 0.0) {
        return Err(CoreError::invalid_argument(format!(
            "tolerance must be positive and finite, got {tol}"
        )));
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    if !(fa.is_finite() && fb.is_finite() && fm.is_finite()) {
        return Err(CoreError::invalid_argument(
            "integrand is not finite on the integration interval".to_owned(),
        ));
    }
    let whole = simpson(a, b, fa, fm, fb);
    Ok(adaptive_simpson_rec(&f, a, b, fa, fm, fb, whole, tol, 0))
}

/// Integrates a non-negative, eventually-decreasing function over `[0, ∞)` by
/// summing adaptive Simpson estimates over geometrically growing panels until
/// the contribution of the latest panel falls below `tol`.
///
/// Used for `E[max] = ∫_0^∞ (1 - F(t)^n) dt`, whose integrand decays like
/// `n·e^{-λt}` for large `t`.
pub fn integrate_to_infinity(f: impl Fn(f64) -> f64, scale: f64, tol: f64) -> Result<f64> {
    if !(scale.is_finite() && scale > 0.0) {
        return Err(CoreError::invalid_argument(format!(
            "scale must be positive and finite, got {scale}"
        )));
    }
    let mut total = 0.0;
    let mut lo = 0.0;
    let mut width = scale;
    // Upper bound on panels: enough for the integrand to decay through
    // hundreds of e-foldings even for very heavy workloads.
    for panel in 0..200 {
        let hi = lo + width;
        let part = integrate(&f, lo, hi, tol.max(1e-13))?;
        total += part;
        if panel >= 2 && part.abs() < tol * total.abs().max(1.0) {
            return Ok(total);
        }
        lo = hi;
        width *= 1.5;
    }
    Err(CoreError::IntegrationDidNotConverge {
        tolerance: tol,
        achieved: f64::NAN,
    })
}

/// Simple trapezoidal integration over equally spaced samples; used in tests
/// and as a cross-check for the adaptive scheme.
pub fn trapezoid(f: impl Fn(f64) -> f64, a: f64, b: f64, steps: usize) -> f64 {
    assert!(steps >= 1, "at least one step is required");
    let h = (b - a) / steps as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..steps {
        sum += f(a + h * i as f64);
    }
    sum * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_matches_direct_sum() {
        // The asymptotic branch kicks in above 1e6; compare it against the
        // direct branch just below the threshold extended by the next term.
        let direct = harmonic(1_000_000);
        let n = 1_000_001u64;
        let extended = direct + 1.0 / n as f64;
        let asymptotic = harmonic(n);
        assert!((extended - asymptotic).abs() < 1e-9);
    }

    #[test]
    fn ln_factorial_small_and_large() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120.0_f64.ln()).abs() < 1e-10);
        assert!((ln_factorial(10) - 3_628_800.0_f64.ln()).abs() < 1e-9);
        // Stirling branch against the direct branch at the boundary.
        let direct: f64 = (2..=300u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(300) - direct).abs() / direct < 1e-10);
    }

    #[test]
    fn integrate_polynomial_exactly() {
        // ∫_0^2 x² dx = 8/3
        let v = integrate(|x| x * x, 0.0, 2.0, 1e-12).unwrap();
        assert!((v - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_handles_degenerate_interval() {
        let v = integrate(|x| x, 1.0, 1.0, 1e-9).unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn integrate_rejects_bad_input() {
        assert!(integrate(|x| x, 1.0, 0.0, 1e-9).is_err());
        assert!(integrate(|x| x, 0.0, f64::INFINITY, 1e-9).is_err());
        assert!(integrate(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(integrate(|_| f64::NAN, 0.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn integrate_to_infinity_exponential_survival() {
        // ∫_0^∞ e^{-2t} dt = 0.5
        let v = integrate_to_infinity(|t| (-2.0 * t).exp(), 1.0, 1e-10).unwrap();
        assert!((v - 0.5).abs() < 1e-7);
    }

    #[test]
    fn integrate_to_infinity_max_of_exponentials() {
        // ∫_0^∞ (1 - (1 - e^{-t})^3) dt = H_3 = 1 + 1/2 + 1/3
        let v = integrate_to_infinity(|t| 1.0 - (1.0 - (-t).exp()).powi(3), 1.0, 1e-10).unwrap();
        assert!((v - harmonic(3)).abs() < 1e-6);
    }

    #[test]
    fn integrate_to_infinity_rejects_bad_scale() {
        assert!(integrate_to_infinity(|t| (-t).exp(), 0.0, 1e-9).is_err());
        assert!(integrate_to_infinity(|t| (-t).exp(), f64::NAN, 1e-9).is_err());
    }

    #[test]
    fn trapezoid_agrees_with_adaptive_on_smooth_function() {
        let f = |x: f64| (x * 1.3).sin() + 2.0;
        let adaptive = integrate(f, 0.0, 3.0, 1e-10).unwrap();
        let trap = trapezoid(f, 0.0, 3.0, 20_000);
        assert!((adaptive - trap).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn trapezoid_requires_steps() {
        let _ = trapezoid(|x| x, 0.0, 1.0, 0);
    }
}

//! Poisson-process utilities.
//!
//! Section 3.1.1 of the paper derives the exponential acceptance model from a
//! Poisson worker-arrival process; Section 3.1.2 *thins* that process by the
//! price-dependent acceptance probability `p(c)`. This module provides the
//! corresponding primitives — arrival-epoch sampling, the counting
//! distribution over an interval, and thinning — used by the simulator tests
//! and the inference examples to cross-check the model assumptions.

use crate::error::{CoreError, Result};
use crate::stats::exponential::Exponential;
use crate::stats::numerical::ln_factorial;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A homogeneous Poisson process with rate `λ` (events per unit time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a process with the given arrival rate.
    pub fn new(rate: f64) -> Result<Self> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(CoreError::invalid_distribution(format!(
                "Poisson rate must be positive and finite, got {rate}"
            )));
        }
        Ok(PoissonProcess { rate })
    }

    /// The arrival rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Expected number of arrivals in an interval of length `duration`.
    pub fn expected_count(&self, duration: f64) -> f64 {
        self.rate * duration.max(0.0)
    }

    /// Probability of observing exactly `k` arrivals in an interval of
    /// length `duration`: `e^{-λT} (λT)^k / k!`.
    pub fn count_pmf(&self, k: u64, duration: f64) -> f64 {
        if duration <= 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        let mu = self.rate * duration;
        (-mu + k as f64 * mu.ln() - ln_factorial(k)).exp()
    }

    /// Probability of observing no arrival within `duration` — the survival
    /// function of the acceptance time in the paper's derivation.
    pub fn probability_of_silence(&self, duration: f64) -> f64 {
        self.count_pmf(0, duration)
    }

    /// Samples the arrival epochs within `[0, horizon)`.
    pub fn sample_epochs<R: Rng + ?Sized>(&self, rng: &mut R, horizon: f64) -> Vec<f64> {
        let gap = Exponential::new(self.rate).expect("rate validated at construction");
        let mut epochs = Vec::new();
        let mut now = 0.0;
        loop {
            now += gap.sample(rng);
            if now >= horizon {
                break;
            }
            epochs.push(now);
        }
        epochs
    }

    /// Samples the epochs of the first `count` arrivals.
    pub fn sample_first_n<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<f64> {
        let gap = Exponential::new(self.rate).expect("rate validated at construction");
        let mut epochs = Vec::with_capacity(count);
        let mut now = 0.0;
        for _ in 0..count {
            now += gap.sample(rng);
            epochs.push(now);
        }
        epochs
    }

    /// Thins the process by an acceptance probability `p ∈ [0, 1]`,
    /// returning the process of accepted events with rate `λ·p` — the
    /// construction of the joint acceptance rate `λc = λ·p(c)` in §3.1.2.
    pub fn thin(&self, acceptance_probability: f64) -> Result<PoissonProcess> {
        if !(0.0..=1.0).contains(&acceptance_probability) {
            return Err(CoreError::invalid_argument(format!(
                "acceptance probability must be in [0, 1], got {acceptance_probability}"
            )));
        }
        PoissonProcess::new(self.rate * acceptance_probability)
    }

    /// Superposition with another independent Poisson process (rates add).
    pub fn merge(&self, other: &PoissonProcess) -> PoissonProcess {
        PoissonProcess {
            rate: self.rate + other.rate,
        }
    }

    /// The distribution of the waiting time until the first arrival.
    pub fn waiting_time(&self) -> Exponential {
        Exponential::new(self.rate).expect("rate validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_rate() {
        assert!(PoissonProcess::new(0.5).is_ok());
        assert!(PoissonProcess::new(0.0).is_err());
        assert!(PoissonProcess::new(-1.0).is_err());
        assert!(PoissonProcess::new(f64::NAN).is_err());
    }

    #[test]
    fn count_pmf_sums_to_one_and_matches_mean() {
        let process = PoissonProcess::new(2.0).unwrap();
        let duration = 1.5;
        let mut total = 0.0;
        let mut mean = 0.0;
        for k in 0..100 {
            let p = process.count_pmf(k, duration);
            total += p;
            mean += k as f64 * p;
        }
        assert!((total - 1.0).abs() < 1e-9);
        assert!((mean - process.expected_count(duration)).abs() < 1e-6);
        assert_eq!(process.count_pmf(0, 0.0), 1.0);
        assert_eq!(process.count_pmf(3, 0.0), 0.0);
    }

    #[test]
    fn silence_probability_is_exponential_survival() {
        let process = PoissonProcess::new(0.7).unwrap();
        for &t in &[0.1, 1.0, 3.0] {
            assert!((process.probability_of_silence(t) - (-0.7_f64 * t).exp()).abs() < 1e-12);
        }
        assert!((process.waiting_time().rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn sampled_epochs_match_expected_count() {
        let process = PoissonProcess::new(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let horizon = 500.0;
        let epochs = process.sample_epochs(&mut rng, horizon);
        let expected = process.expected_count(horizon);
        assert!((epochs.len() as f64 - expected).abs() / expected < 0.05);
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]));
        assert!(epochs.iter().all(|&t| t < horizon));
    }

    #[test]
    fn first_n_epochs_are_increasing_with_correct_mean_gap() {
        let process = PoissonProcess::new(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let epochs = process.sample_first_n(&mut rng, 10_000);
        assert_eq!(epochs.len(), 10_000);
        assert!(epochs.windows(2).all(|w| w[0] <= w[1]));
        let mean_gap = epochs.last().unwrap() / 10_000.0;
        assert!((mean_gap - 4.0).abs() < 0.15, "mean gap {mean_gap}");
    }

    #[test]
    fn thinning_and_merging_adjust_rates() {
        let process = PoissonProcess::new(4.0).unwrap();
        let thinned = process.thin(0.25).unwrap();
        assert!((thinned.rate() - 1.0).abs() < 1e-12);
        assert!(process.thin(1.5).is_err());
        assert!(
            process.thin(0.0).is_err(),
            "zero acceptance yields an invalid (rate-0) process"
        );
        let merged = process.merge(&thinned);
        assert!((merged.rate() - 5.0).abs() < 1e-12);
    }
}

//! The two-phase (hypoexponential) overall-latency distribution.
//!
//! Section 3.2 of the paper derives the density of the overall latency
//! `L = Lo + Lp` as the convolution of the two exponential phases:
//!
//! ```text
//! f_L(t) = λo·λp / (λo − λp) · (e^{−λp·t} − e^{−λo·t})        (λo ≠ λp)
//! ```
//!
//! When the two rates coincide the convolution degenerates to an
//! `Erlang(2, λ)` density; this module handles both branches.

use crate::error::{CoreError, Result};
use crate::stats::erlang::Erlang;
use crate::stats::exponential::Exponential;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Relative closeness below which the two rates are treated as equal and the
/// Erlang branch is used (avoids catastrophic cancellation in the generic
/// two-rate formula).
const RATE_EQUALITY_EPS: f64 = 1e-9;

/// Distribution of the sum of two independent exponential phases with rates
/// `λo` (on-hold) and `λp` (processing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoPhaseLatency {
    on_hold_rate: f64,
    processing_rate: f64,
}

impl TwoPhaseLatency {
    /// Creates the two-phase latency distribution.
    pub fn new(on_hold_rate: f64, processing_rate: f64) -> Result<Self> {
        for (name, rate) in [("on-hold", on_hold_rate), ("processing", processing_rate)] {
            if !rate.is_finite() || rate <= 0.0 {
                return Err(CoreError::invalid_distribution(format!(
                    "{name} rate must be positive and finite, got {rate}"
                )));
            }
        }
        Ok(TwoPhaseLatency {
            on_hold_rate,
            processing_rate,
        })
    }

    /// On-hold phase rate `λo`.
    pub fn on_hold_rate(&self) -> f64 {
        self.on_hold_rate
    }

    /// Processing phase rate `λp`.
    pub fn processing_rate(&self) -> f64 {
        self.processing_rate
    }

    /// Whether the two rates are numerically indistinguishable (Erlang
    /// degenerate branch).
    fn rates_equal(&self) -> bool {
        let scale = self.on_hold_rate.abs().max(self.processing_rate.abs());
        (self.on_hold_rate - self.processing_rate).abs() <= RATE_EQUALITY_EPS * scale
    }

    /// Mean `1/λo + 1/λp`.
    pub fn mean(&self) -> f64 {
        1.0 / self.on_hold_rate + 1.0 / self.processing_rate
    }

    /// Variance `1/λo² + 1/λp²` (phases are independent).
    pub fn variance(&self) -> f64 {
        1.0 / (self.on_hold_rate * self.on_hold_rate)
            + 1.0 / (self.processing_rate * self.processing_rate)
    }

    /// Probability density of the overall latency (the paper's convolution
    /// formula, or the Erlang(2, λ) density when the rates coincide).
    pub fn pdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        if self.rates_equal() {
            let lambda = 0.5 * (self.on_hold_rate + self.processing_rate);
            return Erlang::new(2, lambda)
                .expect("rates validated at construction")
                .pdf(t);
        }
        let (lo, lp) = (self.on_hold_rate, self.processing_rate);
        lo * lp / (lo - lp) * ((-lp * t).exp() - (-lo * t).exp())
    }

    /// Cumulative distribution function of the overall latency.
    ///
    /// For distinct rates:
    /// `F(t) = 1 − [λo·e^{−λp t} − λp·e^{−λo t}] / (λo − λp)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        if self.rates_equal() {
            let lambda = 0.5 * (self.on_hold_rate + self.processing_rate);
            return Erlang::new(2, lambda)
                .expect("rates validated at construction")
                .cdf(t);
        }
        let (lo, lp) = (self.on_hold_rate, self.processing_rate);
        let value = 1.0 - (lo * (-lp * t).exp() - lp * (-lo * t).exp()) / (lo - lp);
        value.clamp(0.0, 1.0)
    }

    /// Survival function `1 − F(t)`.
    pub fn survival(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Draws one overall-latency sample as the sum of the two phase samples.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let on_hold = Exponential::new(self.on_hold_rate).expect("validated");
        let processing = Exponential::new(self.processing_rate).expect("validated");
        on_hold.sample(rng) + processing.sample(rng)
    }

    /// Draws `(on_hold, processing)` phase samples separately, which the
    /// simulator uses to time the two market events.
    pub fn sample_phases<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        let on_hold = Exponential::new(self.on_hold_rate).expect("validated");
        let processing = Exponential::new(self.processing_rate).expect("validated");
        (on_hold.sample(rng), processing.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates_rates() {
        assert!(TwoPhaseLatency::new(1.0, 2.0).is_ok());
        assert!(TwoPhaseLatency::new(0.0, 2.0).is_err());
        assert!(TwoPhaseLatency::new(1.0, -2.0).is_err());
        assert!(TwoPhaseLatency::new(f64::NAN, 2.0).is_err());
    }

    #[test]
    fn mean_and_variance_are_phase_sums() {
        let d = TwoPhaseLatency::new(2.0, 4.0).unwrap();
        assert!((d.mean() - 0.75).abs() < 1e-15);
        assert!((d.variance() - (0.25 + 0.0625)).abs() < 1e-15);
        assert!((d.on_hold_rate() - 2.0).abs() < 1e-15);
        assert!((d.processing_rate() - 4.0).abs() < 1e-15);
    }

    #[test]
    fn pdf_matches_paper_convolution_formula() {
        let (lo, lp) = (3.0, 1.0);
        let d = TwoPhaseLatency::new(lo, lp).unwrap();
        for &t in &[0.1, 0.5, 1.0, 2.0] {
            let manual = lo * lp / (lo - lp) * ((-lp * t).exp() - (-lo * t).exp());
            assert!((d.pdf(t) - manual).abs() < 1e-12);
            assert!(d.pdf(t) >= 0.0);
        }
        assert_eq!(d.pdf(-1.0), 0.0);
    }

    #[test]
    fn pdf_symmetric_in_rate_order() {
        // The sum of the two phases does not care which is which.
        let a = TwoPhaseLatency::new(3.0, 1.0).unwrap();
        let b = TwoPhaseLatency::new(1.0, 3.0).unwrap();
        for &t in &[0.1, 0.7, 2.3] {
            assert!((a.pdf(t) - b.pdf(t)).abs() < 1e-12);
            assert!((a.cdf(t) - b.cdf(t)).abs() < 1e-12);
        }
    }

    #[test]
    fn equal_rates_degenerate_to_erlang_2() {
        let d = TwoPhaseLatency::new(2.0, 2.0).unwrap();
        let e = Erlang::new(2, 2.0).unwrap();
        for &t in &[0.0, 0.3, 1.0, 2.0] {
            assert!((d.pdf(t) - e.pdf(t)).abs() < 1e-9);
            assert!((d.cdf(t) - e.cdf(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn nearly_equal_rates_do_not_blow_up() {
        let d = TwoPhaseLatency::new(2.0, 2.0 + 1e-12).unwrap();
        let e = Erlang::new(2, 2.0).unwrap();
        assert!((d.pdf(1.0) - e.pdf(1.0)).abs() < 1e-6);
        assert!(d.pdf(1.0).is_finite());
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let d = TwoPhaseLatency::new(5.0, 0.5).unwrap();
        let mut prev = 0.0;
        for i in 0..500 {
            let t = i as f64 * 0.05;
            let c = d.cdf(t);
            assert!((0.0..=1.0).contains(&c));
            assert!(c + 1e-12 >= prev);
            prev = c;
        }
        assert!((d.survival(1.0) + d.cdf(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(d.cdf(0.0), 0.0);
    }

    #[test]
    fn cdf_matches_numeric_integral_of_pdf() {
        let d = TwoPhaseLatency::new(1.5, 0.8).unwrap();
        let t_end = 3.0;
        let steps = 30_000;
        let h = t_end / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            let a = i as f64 * h;
            acc += 0.5 * (d.pdf(a) + d.pdf(a + h)) * h;
        }
        assert!((acc - d.cdf(t_end)).abs() < 1e-5);
    }

    #[test]
    fn sampling_matches_mean() {
        let d = TwoPhaseLatency::new(0.01, 0.02).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.02);
    }

    #[test]
    fn sample_phases_returns_both_components() {
        let d = TwoPhaseLatency::new(1.0, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut sum_on_hold = 0.0;
        let mut sum_processing = 0.0;
        for _ in 0..n {
            let (o, p) = d.sample_phases(&mut rng);
            assert!(o >= 0.0 && p >= 0.0);
            sum_on_hold += o;
            sum_processing += p;
        }
        assert!((sum_on_hold / n as f64 - 1.0).abs() < 0.02);
        assert!((sum_processing / n as f64 - 0.1).abs() < 0.005);
    }
}

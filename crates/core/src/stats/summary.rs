//! Descriptive statistics over latency samples.
//!
//! The experiment harness and the parameter-inference probes both need to
//! summarise observed latencies (mean, variance, percentiles). This module
//! provides a small, allocation-friendly accumulator plus a percentile helper
//! for already-collected samples.

use serde::{Deserialize, Serialize};

/// Streaming accumulator of count / mean / variance (Welford's algorithm)
/// plus min and max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every observation from an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.push(v);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance, or `None` if fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        let new_m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = new_mean;
        self.m2 = new_m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `samples` using linear
/// interpolation between closest ranks. Returns `None` for an empty slice or
/// an out-of-range `q`.
pub fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        Some(sorted[lower])
    } else {
        let frac = pos - lower as f64;
        Some(sorted[lower] * (1.0 - frac) + sorted[upper] * frac)
    }
}

/// Mean of a slice, or `None` if it is empty.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_reports_none() {
        let s = RunningStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.std_dev(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn running_stats_match_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        s.extend(data.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // unbiased variance of this classic data set is 32/7
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_observation_has_no_variance() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(data.iter().copied());

        let mut left = RunningStats::new();
        left.extend(data[..37].iter().copied());
        let mut right = RunningStats::new();
        right.extend(data[37..].iter().copied());
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-10);
        assert!((left.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert_eq!(percentile(&data, 0.5), Some(2.5));
        assert!((percentile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&data, 1.5), None);
        assert_eq!(percentile(&data, -0.1), None);
    }

    #[test]
    fn percentile_does_not_require_sorted_input() {
        let data = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(percentile(&data, 0.5), Some(5.0));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }
}

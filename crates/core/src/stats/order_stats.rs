//! Order statistics of latency distributions.
//!
//! The overall latency of a batch of parallel tasks is the **maximum** of the
//! individual latencies (Section 3.2.1), so expected maxima drive every
//! tuning objective in the paper:
//!
//! * maximum of `n` i.i.d. exponentials → closed form `H_n / λ`
//!   (used by single-round groups, Section 4.3.1 "Group of Single Round");
//! * maximum of `n` i.i.d. Erlang(k, λ) variables → numerical integral
//!   `E = ∫_0^∞ n·F^{n-1}(t)·f(t)·t dt`, which we evaluate in the equivalent
//!   and better conditioned survival form `∫_0^∞ (1 − F^n(t)) dt`
//!   (Section 4.3.1 "Group Multiple Rounds");
//! * maximum of a small set of *heterogeneous* exponentials → inclusion–
//!   exclusion closed form (used for the motivating examples of Figure 1).

use crate::error::{CoreError, Result};
use crate::stats::erlang::Erlang;
use crate::stats::exponential::Exponential;
use crate::stats::hypoexponential::TwoPhaseLatency;
use crate::stats::numerical::{harmonic, integrate_to_infinity, DEFAULT_TOLERANCE};

/// Expected maximum of `n` i.i.d. `Exp(rate)` latencies: `H_n / rate`.
pub fn expected_max_exponential(n: u64, rate: f64) -> Result<f64> {
    let dist = Exponential::new(rate)?;
    Ok(dist.expected_max(n))
}

/// Expected maximum of `n` i.i.d. `Erlang(shape, rate)` latencies, evaluated
/// numerically via `∫_0^∞ (1 − F(t)^n) dt`.
///
/// For `n = 0` the maximum over an empty set is defined as `0`; for `n = 1`
/// the Erlang mean `shape / rate` is returned without integration.
pub fn expected_max_erlang(n: u64, shape: u32, rate: f64) -> Result<f64> {
    let dist = Erlang::new(shape, rate)?;
    if n == 0 {
        return Ok(0.0);
    }
    if n == 1 {
        return Ok(dist.mean());
    }
    if shape == 1 {
        // Fall back to the exact exponential formula.
        return expected_max_exponential(n, rate);
    }
    let nf = n as f64;
    let scale = dist.mean() + 4.0 * dist.std_dev();
    integrate_to_infinity(
        move |t| {
            let cdf = dist.cdf(t);
            1.0 - cdf.powf(nf)
        },
        scale,
        DEFAULT_TOLERANCE,
    )
}

/// Expected maximum of `n` i.i.d. latencies with an arbitrary CDF, evaluated
/// numerically via the survival form. `scale` should be of the order of the
/// distribution's mean-plus-a-few-standard-deviations so the integration
/// panels are well sized.
pub fn expected_max_iid_cdf<F>(n: u64, cdf: F, scale: f64) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    if n == 0 {
        return Ok(0.0);
    }
    let nf = n as f64;
    integrate_to_infinity(
        move |t| {
            let c = cdf(t).clamp(0.0, 1.0);
            1.0 - c.powf(nf)
        },
        scale,
        DEFAULT_TOLERANCE,
    )
}

/// Expected maximum of independent (not necessarily identically distributed)
/// latencies described by their CDFs. The overall CDF is the product of the
/// individual CDFs (Section 3.2.1), so
/// `E[max] = ∫_0^∞ (1 − Π_i F_i(t)) dt`.
pub fn expected_max_independent_cdfs<F>(cdfs: &[F], scale: f64) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    if cdfs.is_empty() {
        return Ok(0.0);
    }
    integrate_to_infinity(
        move |t| {
            let mut product = 1.0;
            for cdf in cdfs {
                product *= cdf(t).clamp(0.0, 1.0);
                if product == 0.0 {
                    break;
                }
            }
            1.0 - product
        },
        scale,
        DEFAULT_TOLERANCE,
    )
}

/// Exact expected maximum of independent exponentials with distinct rates via
/// inclusion–exclusion:
/// `E[max] = Σ_S (−1)^{|S|+1} / Σ_{i∈S} λ_i` over non-empty subsets `S`.
///
/// This is exponential in the number of rates and therefore restricted to at
/// most 20 tasks; use [`expected_max_independent_cdfs`] beyond that.
pub fn expected_max_heterogeneous_exponential(rates: &[f64]) -> Result<f64> {
    if rates.is_empty() {
        return Ok(0.0);
    }
    if rates.len() > 20 {
        return Err(CoreError::invalid_argument(format!(
            "inclusion-exclusion limited to 20 rates, got {}",
            rates.len()
        )));
    }
    for &r in rates {
        if !r.is_finite() || r <= 0.0 {
            return Err(CoreError::invalid_distribution(format!(
                "all rates must be positive and finite, got {r}"
            )));
        }
    }
    let n = rates.len();
    let mut total = 0.0;
    for subset in 1u32..(1u32 << n) {
        let mut rate_sum = 0.0;
        let mut size = 0u32;
        for (i, &rate) in rates.iter().enumerate() {
            if subset & (1 << i) != 0 {
                rate_sum += rate;
                size += 1;
            }
        }
        let sign = if size % 2 == 1 { 1.0 } else { -1.0 };
        total += sign / rate_sum;
    }
    Ok(total)
}

/// Expected maximum of two independent exponentials, the closed form used in
/// Lemma 1's proof: `1/λ1 + 1/λ2 − 1/(λ1 + λ2)`.
pub fn expected_max_two_exponentials(rate_a: f64, rate_b: f64) -> Result<f64> {
    expected_max_heterogeneous_exponential(&[rate_a, rate_b])
}

/// Expected maximum of `n` i.i.d. two-phase latencies (each an on-hold plus a
/// processing exponential). Used to evaluate Scenario III allocations where
/// the processing phase can no longer be ignored.
pub fn expected_max_two_phase(n: u64, on_hold_rate: f64, processing_rate: f64) -> Result<f64> {
    let dist = TwoPhaseLatency::new(on_hold_rate, processing_rate)?;
    if n == 0 {
        return Ok(0.0);
    }
    if n == 1 {
        return Ok(dist.mean());
    }
    let scale = dist.mean() + 4.0 * dist.variance().sqrt();
    expected_max_iid_cdf(n, move |t| dist.cdf(t), scale)
}

/// Expected completion time of the *whole* single-round group: the paper's
/// derivation decomposes the maximum of `n` i.i.d. `Exp(λ)` variables into the
/// telescoping sum `x_1 + x_2 + ... + x_n` with `x_i ~ Exp(λ·(n−i+1))`, giving
/// `E[L(g)] = Σ_{i=1}^n 1/(λ·i) = H_n/λ`. Exposed separately so tests can
/// check the two derivations agree.
pub fn single_round_group_latency(n: u64, rate: f64) -> Result<f64> {
    if !rate.is_finite() || rate <= 0.0 {
        return Err(CoreError::invalid_distribution(format!(
            "rate must be positive and finite, got {rate}"
        )));
    }
    Ok(harmonic(n) / rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exponential_max_matches_harmonic() {
        let v = expected_max_exponential(3, 2.0).unwrap();
        assert!((v - (1.0 + 0.5 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
        assert!(expected_max_exponential(3, 0.0).is_err());
    }

    #[test]
    fn single_round_group_latency_agrees_with_expected_max() {
        for n in [1u64, 2, 5, 50, 500] {
            let a = single_round_group_latency(n, 1.7).unwrap();
            let b = expected_max_exponential(n, 1.7).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
        assert!(single_round_group_latency(3, -1.0).is_err());
    }

    #[test]
    fn erlang_max_degenerate_cases() {
        assert_eq!(expected_max_erlang(0, 3, 1.0).unwrap(), 0.0);
        let one = expected_max_erlang(1, 3, 1.5).unwrap();
        assert!((one - 2.0).abs() < 1e-12);
        // shape 1 falls back to the exponential closed form
        let exp_max = expected_max_erlang(4, 1, 2.0).unwrap();
        assert!((exp_max - expected_max_exponential(4, 2.0).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn erlang_max_bounded_between_mean_and_sum() {
        // E[max of n] is at least the single mean and at most n times it.
        let v = expected_max_erlang(10, 5, 2.0).unwrap();
        let mean = 2.5;
        assert!(v > mean);
        assert!(v < 10.0 * mean);
    }

    #[test]
    fn erlang_max_monotone_in_group_size_and_rate() {
        let small = expected_max_erlang(2, 4, 1.0).unwrap();
        let large = expected_max_erlang(8, 4, 1.0).unwrap();
        assert!(large > small);
        let slow = expected_max_erlang(5, 4, 1.0).unwrap();
        let fast = expected_max_erlang(5, 4, 2.0).unwrap();
        assert!(
            (slow / fast - 2.0).abs() < 1e-6,
            "rate scaling should halve latency"
        );
    }

    #[test]
    fn erlang_max_matches_monte_carlo() {
        let (n, shape, rate) = (6u64, 3u32, 1.5);
        let analytic = expected_max_erlang(n, shape, rate).unwrap();
        let dist = Erlang::new(shape, rate).unwrap();
        let mut rng = StdRng::seed_from_u64(2024);
        let trials = 40_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut max = f64::MIN;
            for _ in 0..n {
                max = max.max(dist.sample(&mut rng));
            }
            acc += max;
        }
        let empirical = acc / trials as f64;
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn heterogeneous_two_task_closed_form() {
        let v = expected_max_two_exponentials(2.0, 3.0).unwrap();
        let expected = 0.5 + 1.0 / 3.0 - 1.0 / 5.0;
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_inclusion_exclusion_matches_iid_special_case() {
        // When all rates are equal the inclusion-exclusion formula must match
        // the harmonic-number closed form.
        let rates = vec![1.5; 6];
        let a = expected_max_heterogeneous_exponential(&rates).unwrap();
        let b = expected_max_exponential(6, 1.5).unwrap();
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn heterogeneous_matches_numeric_product_cdf() {
        let rates = [0.5, 1.0, 2.0, 4.0];
        let exact = expected_max_heterogeneous_exponential(&rates).unwrap();
        let cdfs: Vec<_> = rates
            .iter()
            .map(|&r| move |t: f64| 1.0 - (-r * t).exp())
            .collect();
        let numeric = expected_max_independent_cdfs(&cdfs, 4.0).unwrap();
        assert!((exact - numeric).abs() < 1e-5);
    }

    #[test]
    fn heterogeneous_rejects_invalid_input() {
        assert_eq!(expected_max_heterogeneous_exponential(&[]).unwrap(), 0.0);
        assert!(expected_max_heterogeneous_exponential(&[1.0, -1.0]).is_err());
        let too_many = vec![1.0; 21];
        assert!(expected_max_heterogeneous_exponential(&too_many).is_err());
    }

    #[test]
    fn independent_cdfs_empty_is_zero() {
        let cdfs: Vec<fn(f64) -> f64> = vec![];
        assert_eq!(expected_max_independent_cdfs(&cdfs, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn iid_cdf_zero_and_one_tasks() {
        let cdf = |t: f64| 1.0 - (-t).exp();
        assert_eq!(expected_max_iid_cdf(0, cdf, 1.0).unwrap(), 0.0);
        let one = expected_max_iid_cdf(1, cdf, 1.0).unwrap();
        assert!((one - 1.0).abs() < 1e-5);
    }

    #[test]
    fn two_phase_max_reduces_to_mean_for_single_task() {
        let v = expected_max_two_phase(1, 2.0, 4.0).unwrap();
        assert!((v - 0.75).abs() < 1e-12);
        assert_eq!(expected_max_two_phase(0, 2.0, 4.0).unwrap(), 0.0);
    }

    #[test]
    fn two_phase_max_matches_monte_carlo() {
        let (n, lo, lp) = (4u64, 1.0, 3.0);
        let analytic = expected_max_two_phase(n, lo, lp).unwrap();
        let dist = TwoPhaseLatency::new(lo, lp).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let trials = 40_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut max = f64::MIN;
            for _ in 0..n {
                max = max.max(dist.sample(&mut rng));
            }
            acc += max;
        }
        let empirical = acc / trials as f64;
        assert!(
            (empirical - analytic).abs() / analytic < 0.02,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn motivating_example_1_latencies() {
        // Figure 1(a): two pairwise-vote tasks, budget 6. The paper reports
        // that the load-sensitive split (2, 4) beats the even split (3, 3) in
        // expected completion of the longest task when task 2 requires two
        // repetitions. We verify the ordering with the machinery here, using
        // the Table 1 sorting-vote rates (λ ≈ price).
        // Case 1: 3 / 3 -> per-repetition payments 3 and 1.5.
        // Case 2: 2 / 4 -> per-repetition payments 2 and 2.
        // Task 1 is Exp(λ(p1)); task 2 is Erlang(2, λ(p2 per rep)).
        let rate = |p: f64| p; // linear, unit slope through origin
        let case = |p1: f64, p2_per_rep: f64| {
            let t1 = Exponential::new(rate(p1)).unwrap();
            let t2 = Erlang::new(2, rate(p2_per_rep)).unwrap();
            let cdfs: Vec<Box<dyn Fn(f64) -> f64>> =
                vec![Box::new(move |t| t1.cdf(t)), Box::new(move |t| t2.cdf(t))];
            expected_max_independent_cdfs(&cdfs, 3.0).unwrap()
        };
        let even = case(3.0, 1.5);
        let load_sensitive = case(2.0, 2.0);
        assert!(
            load_sensitive < even,
            "load-sensitive allocation ({load_sensitive}) should beat even ({even})"
        );
    }

    #[test]
    fn random_cdf_scale_robustness() {
        // The survival integration should be insensitive to the initial
        // panel scale within a broad range.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let rate = rng.gen_range(0.2..5.0);
            let shape = rng.gen_range(1..6);
            let n = rng.gen_range(1..10);
            let base = expected_max_erlang(n, shape, rate).unwrap();
            let dist = Erlang::new(shape, rate).unwrap();
            let wide = expected_max_iid_cdf(n, move |t| dist.cdf(t), 50.0 * dist.mean()).unwrap();
            assert!((base - wide).abs() / base.max(1e-9) < 1e-4);
        }
    }
}

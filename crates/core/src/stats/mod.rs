//! Statistical machinery backing the HPU latency model.
//!
//! The paper models both latency phases as exponential, multi-repetition
//! tasks as Erlang sums (Lemma 3), the overall per-task latency as the
//! convolution of the two phases, and batch latency as the maximum of the
//! per-task latencies. Each of those pieces lives in its own sub-module:
//!
//! | module | content |
//! |---|---|
//! | [`exponential`] | `Exp(λ)` density/CDF/sampling, expected min/max of i.i.d. copies |
//! | [`erlang`] | `Erlang(k, λ)` density/CDF/sampling |
//! | [`hypoexponential`] | two-phase (on-hold + processing) overall latency |
//! | [`order_stats`] | expected maxima: closed forms and numerical integrals |
//! | [`numerical`] | adaptive quadrature, harmonic numbers, `ln n!` |
//! | [`summary`] | running mean/variance, percentiles for observed samples |

pub mod erlang;
pub mod exponential;
pub mod hypoexponential;
pub mod numerical;
pub mod order_stats;
pub mod poisson;
pub mod special;
pub mod summary;

pub use erlang::Erlang;
pub use exponential::Exponential;
pub use hypoexponential::TwoPhaseLatency;
pub use numerical::{harmonic, integrate, integrate_to_infinity, ln_factorial};
pub use order_stats::{
    expected_max_erlang, expected_max_exponential, expected_max_heterogeneous_exponential,
    expected_max_iid_cdf, expected_max_independent_cdfs, expected_max_two_exponentials,
    expected_max_two_phase, single_round_group_latency,
};
pub use poisson::PoissonProcess;
pub use special::{gamma_cdf, gamma_p, gamma_q, ln_gamma, GammaDist};
pub use summary::{mean, percentile, RunningStats};

//! The budget-indexed marginal dynamic program shared by Algorithms 2 and 3.
//!
//! Both the Repetition Algorithm (RA) and the Heterogeneous Algorithm (HA)
//! follow the same skeleton (Algorithms 2 and 3 in the paper): start from the
//! minimum feasible payment (one unit per repetition of every group), then
//! walk the remaining budget `B'` one unit at a time; at budget level `x`
//! either keep the best plan for `x − 1` or take the best plan for `x − u_i`
//! and raise group `i`'s per-repetition payment by one unit (which costs
//! `u_i = n_i · k_i` budget units). The objective differs — the sum of group
//! latencies for RA, the "Closeness" to the utopia point for HA — so the
//! recursion is factored out here and parameterised by an objective closure.

use crate::error::{CoreError, Result};

/// Result of the marginal DP: the per-group per-repetition payments (in
/// units, each at least 1) and the value of the objective at that plan.
#[derive(Debug, Clone, PartialEq)]
pub struct DpOutcome {
    /// Per-group per-repetition payments.
    pub payments: Vec<u64>,
    /// Objective value at `payments`.
    pub objective: f64,
    /// Total extra budget actually consumed (some of `B'` may be left over
    /// when no group increment is affordable with the remaining units).
    pub extra_spent: u64,
}

/// Runs the budget-indexed marginal DP.
///
/// * `unit_costs[i]` — cost in budget units of raising group `i`'s
///   per-repetition payment by one unit (`u_i = n_i · k_i`);
/// * `extra_budget` — the discretionary budget `B'` after paying one unit per
///   repetition of every group;
/// * `objective` — evaluates a candidate per-group payment vector; the DP
///   minimises this value. The closure may memoize internally; it is called
///   `O(n · B')` times.
pub fn marginal_budget_dp<F>(
    unit_costs: &[u64],
    extra_budget: u64,
    objective: F,
) -> Result<DpOutcome>
where
    F: FnMut(&[u64]) -> Result<f64>,
{
    let table = DpTable::build(unit_costs, extra_budget, objective)?;
    table.outcome_at(extra_budget)
}

/// The full state table of the budget-indexed marginal DP.
///
/// The recursion of Algorithms 2 and 3 is a prefix computation: the best plan
/// for every budget level `x ≤ B'` is produced on the way to `B'`. Keeping
/// the whole table around therefore gives two cheap operations that the
/// online re-tuner exploits:
///
/// * [`DpTable::outcome_at`] answers *any smaller* discretionary budget in
///   `O(1)` — re-tuning a job whose remaining budget shrank (but whose group
///   structure and rate estimates are unchanged) costs nothing;
/// * [`DpTable::extend_to`] warm-starts from the last computed level instead
///   of restarting at zero when the budget *grew* (e.g. a topped-up job).
#[derive(Debug, Clone)]
pub struct DpTable {
    unit_costs: Vec<u64>,
    /// states[x] = best (payments, objective, extra_spent) using at most x
    /// extra budget units.
    states: Vec<(Vec<u64>, f64, u64)>,
}

impl DpTable {
    /// Builds the table up to `extra_budget`.
    pub fn build<F>(unit_costs: &[u64], extra_budget: u64, mut objective: F) -> Result<Self>
    where
        F: FnMut(&[u64]) -> Result<f64>,
    {
        if unit_costs.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        if unit_costs.contains(&0) {
            return Err(CoreError::invalid_argument(
                "group unit-increment costs must be positive".to_owned(),
            ));
        }
        let base = vec![1u64; unit_costs.len()];
        let base_objective = objective(&base)?;
        let mut table = DpTable {
            unit_costs: unit_costs.to_vec(),
            states: Vec::with_capacity(extra_budget as usize + 1),
        };
        table.states.push((base, base_objective, 0));
        table.extend_to(extra_budget, objective)?;
        Ok(table)
    }

    /// Extends the table to cover budgets up to `extra_budget`, reusing every
    /// already-computed level (the warm-start path). A no-op when the table
    /// already covers the requested budget.
    pub fn extend_to<F>(&mut self, extra_budget: u64, mut objective: F) -> Result<()>
    where
        F: FnMut(&[u64]) -> Result<f64>,
    {
        let start = self.states.len() as u64;
        for x in start..=extra_budget {
            // Candidate 1: do not spend the x-th unit (carry the previous
            // state).
            let mut best = self.states[(x - 1) as usize].clone();
            // Candidate 2..n+1: give one more unit-increment to group i,
            // built on the best state with x − u_i extra budget.
            for (i, &u) in self.unit_costs.iter().enumerate() {
                if u <= x {
                    let prev = &self.states[(x - u) as usize];
                    let mut candidate = prev.0.clone();
                    candidate[i] += 1;
                    let value = objective(&candidate)?;
                    let spent = prev.2 + u;
                    // Strict improvements always win; on plateaus (the
                    // objective is unchanged by the increment, e.g. a rate
                    // model that is flat at low payments) prefer the plan
                    // that spends more, so the DP can walk through the flat
                    // region instead of stalling at the base allocation.
                    let epsilon = 1e-12 * value.abs().max(1.0);
                    if value < best.1 - epsilon || (value <= best.1 + epsilon && spent > best.2) {
                        best = (candidate, value, spent);
                    }
                }
            }
            self.states.push(best);
        }
        Ok(())
    }

    /// The largest discretionary budget the table covers.
    pub fn max_budget(&self) -> u64 {
        self.states.len() as u64 - 1
    }

    /// The group unit-increment costs the table was built for.
    pub fn unit_costs(&self) -> &[u64] {
        &self.unit_costs
    }

    /// Reads the best plan for any budget level the table covers.
    pub fn outcome_at(&self, extra_budget: u64) -> Result<DpOutcome> {
        let state = self.states.get(extra_budget as usize).ok_or_else(|| {
            CoreError::invalid_argument(format!(
                "DP table covers budgets up to {}, requested {extra_budget}",
                self.max_budget()
            ))
        })?;
        Ok(DpOutcome {
            payments: state.0.clone(),
            objective: state.1,
            extra_spent: state.2,
        })
    }
}

/// Exhaustively enumerates every per-group payment vector affordable within
/// `extra_budget` and returns the one minimising the objective. Exponential —
/// only used to validate the DP on tiny instances (tests and ablations).
pub fn exhaustive_group_search<F>(
    unit_costs: &[u64],
    extra_budget: u64,
    mut objective: F,
) -> Result<DpOutcome>
where
    F: FnMut(&[u64]) -> Result<f64>,
{
    if unit_costs.is_empty() {
        return Err(CoreError::EmptyTaskSet);
    }
    let n = unit_costs.len();
    let mut best: Option<DpOutcome> = None;
    let mut current = vec![1u64; n];

    fn recurse<F>(
        unit_costs: &[u64],
        remaining: u64,
        index: usize,
        current: &mut Vec<u64>,
        objective: &mut F,
        best: &mut Option<DpOutcome>,
        extra_spent: u64,
    ) -> Result<()>
    where
        F: FnMut(&[u64]) -> Result<f64>,
    {
        if index == unit_costs.len() {
            let value = objective(current)?;
            let better = match best {
                None => true,
                Some(b) => value < b.objective,
            };
            if better {
                *best = Some(DpOutcome {
                    payments: current.clone(),
                    objective: value,
                    extra_spent,
                });
            }
            return Ok(());
        }
        let max_increments = remaining / unit_costs[index];
        for extra in 0..=max_increments {
            current[index] = 1 + extra;
            recurse(
                unit_costs,
                remaining - extra * unit_costs[index],
                index + 1,
                current,
                objective,
                best,
                extra_spent + extra * unit_costs[index],
            )?;
        }
        current[index] = 1;
        Ok(())
    }

    recurse(
        unit_costs,
        extra_budget,
        0,
        &mut current,
        &mut objective,
        &mut best,
        0,
    )?;
    best.ok_or_else(|| CoreError::invalid_argument("no feasible payment vector".to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple strictly convex separable objective: sum of `c_i / p_i`.
    fn harmonic_objective(coeffs: &'static [f64]) -> impl FnMut(&[u64]) -> Result<f64> {
        move |payments: &[u64]| {
            Ok(payments
                .iter()
                .zip(coeffs)
                .map(|(&p, &c)| c / p as f64)
                .sum())
        }
    }

    #[test]
    fn dp_rejects_bad_input() {
        assert!(marginal_budget_dp(&[], 10, |_| Ok(0.0)).is_err());
        assert!(marginal_budget_dp(&[0, 1], 10, |_| Ok(0.0)).is_err());
        assert!(exhaustive_group_search(&[], 10, |_| Ok(0.0)).is_err());
    }

    #[test]
    fn dp_with_zero_extra_budget_returns_base_plan() {
        let out = marginal_budget_dp(&[2, 3], 0, harmonic_objective(&[1.0, 1.0])).unwrap();
        assert_eq!(out.payments, vec![1, 1]);
        assert_eq!(out.extra_spent, 0);
        assert!((out.objective - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dp_spends_budget_on_the_most_valuable_group() {
        // Group 0 has a much larger coefficient, so extra budget should go
        // there first.
        let out = marginal_budget_dp(&[1, 1], 3, harmonic_objective(&[10.0, 0.1])).unwrap();
        assert!(out.payments[0] > out.payments[1]);
        assert!(out.extra_spent <= 3);
    }

    #[test]
    fn dp_matches_exhaustive_search_on_small_instances() {
        let cases: Vec<(&[u64], u64, &'static [f64])> = vec![
            (&[1, 1], 6, &[1.0, 1.0]),
            (&[2, 3], 12, &[4.0, 9.0]),
            (&[3, 5], 20, &[2.0, 7.0]),
            (&[1, 2, 3], 10, &[1.0, 5.0, 2.0]),
        ];
        for (costs, budget, coeffs) in cases {
            let dp = marginal_budget_dp(costs, budget, harmonic_objective(coeffs)).unwrap();
            let brute = exhaustive_group_search(costs, budget, harmonic_objective(coeffs)).unwrap();
            assert!(
                (dp.objective - brute.objective).abs() < 1e-9,
                "costs {costs:?} budget {budget}: dp {} vs brute {}",
                dp.objective,
                brute.objective
            );
        }
    }

    #[test]
    fn dp_objective_is_monotone_in_budget() {
        let mut prev = f64::INFINITY;
        for budget in 0..20u64 {
            let out = marginal_budget_dp(&[2, 3], budget, harmonic_objective(&[4.0, 9.0])).unwrap();
            assert!(
                out.objective <= prev + 1e-12,
                "objective must not increase with budget"
            );
            prev = out.objective;
        }
    }

    #[test]
    fn dp_never_overspends() {
        for budget in 0..30u64 {
            let out = marginal_budget_dp(&[3, 4], budget, harmonic_objective(&[1.0, 1.0])).unwrap();
            let spent: u64 = out
                .payments
                .iter()
                .zip([3u64, 4u64])
                .map(|(&p, u)| (p - 1) * u)
                .sum();
            assert!(spent <= budget);
            assert_eq!(spent, out.extra_spent);
        }
    }

    #[test]
    fn exhaustive_explores_all_combinations() {
        // With unit costs [2, 2] and 4 extra units the affordable payment
        // vectors are (1,1),(2,1),(1,2),(3,1),(2,2),(1,3) — the objective
        // below is minimised uniquely at (2,2).
        let objective =
            |p: &[u64]| Ok(((p[0] as f64) - 2.0).powi(2) + ((p[1] as f64) - 2.0).powi(2));
        let out = exhaustive_group_search(&[2, 2], 4, objective).unwrap();
        assert_eq!(out.payments, vec![2, 2]);
        assert_eq!(out.extra_spent, 4);
        assert!(out.objective.abs() < 1e-12);
    }

    #[test]
    fn dp_table_prefix_reads_match_fresh_solves() {
        let table = DpTable::build(&[2, 3], 20, harmonic_objective(&[4.0, 9.0])).unwrap();
        assert_eq!(table.max_budget(), 20);
        assert_eq!(table.unit_costs(), &[2, 3]);
        for budget in 0..=20u64 {
            let fresh =
                marginal_budget_dp(&[2, 3], budget, harmonic_objective(&[4.0, 9.0])).unwrap();
            let cached = table.outcome_at(budget).unwrap();
            assert_eq!(cached, fresh, "budget {budget}");
        }
        assert!(table.outcome_at(21).is_err());
    }

    #[test]
    fn dp_table_warm_start_extension_matches_cold_build() {
        let mut warm = DpTable::build(&[1, 2], 5, harmonic_objective(&[1.0, 5.0])).unwrap();
        warm.extend_to(15, harmonic_objective(&[1.0, 5.0])).unwrap();
        let cold = DpTable::build(&[1, 2], 15, harmonic_objective(&[1.0, 5.0])).unwrap();
        for budget in 0..=15u64 {
            assert_eq!(
                warm.outcome_at(budget).unwrap(),
                cold.outcome_at(budget).unwrap(),
                "budget {budget}"
            );
        }
        // Extending backwards is a no-op.
        warm.extend_to(3, harmonic_objective(&[1.0, 5.0])).unwrap();
        assert_eq!(warm.max_budget(), 15);
    }

    #[test]
    fn dp_propagates_objective_errors() {
        let result = marginal_budget_dp(&[1], 2, |p| {
            if p[0] > 1 {
                Err(CoreError::invalid_argument("boom".to_owned()))
            } else {
                Ok(1.0)
            }
        });
        assert!(result.is_err());
    }
}

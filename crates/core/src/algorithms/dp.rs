//! The budget-indexed marginal dynamic program shared by Algorithms 2 and 3.
//!
//! Both the Repetition Algorithm (RA) and the Heterogeneous Algorithm (HA)
//! follow the same skeleton (Algorithms 2 and 3 in the paper): start from the
//! minimum feasible payment (one unit per repetition of every group), then
//! walk the remaining budget `B'` one unit at a time; at budget level `x`
//! either keep the best plan for `x − 1` or take the best plan for `x − u_i`
//! and raise group `i`'s per-repetition payment by one unit (which costs
//! `u_i = n_i · k_i` budget units).
//!
//! The objective differs per scenario, and so does the cost of evaluating a
//! candidate:
//!
//! * **separable objectives** — RA's sum of expected group latencies and
//!   HA's `O1` decompose as `Σ_i f_i(p_i)`, so raising group `i`'s payment by
//!   one unit changes exactly one term. [`marginal_budget_dp_separable`]
//!   exploits this: the per-group marginal values `f_i(p)` are tabulated as
//!   the scan reaches them (only payments best plans actually attain, each
//!   evaluated at most once per scan) and every one of the `O(n·B')` DP
//!   candidates is then scored in amortised **O(1)** —
//!   `value(x−u_i) − f_i(p_i) + f_i(p_i+1)` — instead of re-evaluating the
//!   full `O(n)` objective;
//! * **non-separable objectives** — HA's Closeness couples the groups through
//!   the utopia-point distance, so [`marginal_budget_dp`] keeps the generic
//!   closure-based path (`O(n)` per candidate).
//!
//! Either way the table stores one *decision* per budget level (carry the
//! previous level, or increment one group) rather than a full payment vector,
//! so memory is `O(B')` instead of `O(n·B')`; payment vectors are
//! reconstructed on demand by walking the decision chain.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Result of the marginal DP: the per-group per-repetition payments (in
/// units, each at least 1) and the value of the objective at that plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpOutcome {
    /// Per-group per-repetition payments.
    pub payments: Vec<u64>,
    /// Objective value at `payments`.
    pub objective: f64,
    /// Total extra budget actually consumed (some of `B'` may be left over
    /// when no group increment is affordable with the remaining units).
    pub extra_spent: u64,
}

/// Runs the budget-indexed marginal DP with a generic (possibly
/// non-separable) objective.
///
/// * `unit_costs[i]` — cost in budget units of raising group `i`'s
///   per-repetition payment by one unit (`u_i = n_i · k_i`);
/// * `extra_budget` — the discretionary budget `B'` after paying one unit per
///   repetition of every group;
/// * `objective` — evaluates a candidate per-group payment vector; the DP
///   minimises this value. The closure may memoize internally (behind `&self`
///   interior mutability — it must be `Fn + Sync`); it is called `O(n · B')`
///   times. For objectives of the form `Σ_i f_i(p_i)` use
///   [`marginal_budget_dp_separable`], which is `O(1)` per candidate.
///
/// With the `parallel` feature, levels whose candidate fan-out is at least
/// `PARALLEL_SCAN_MIN_CANDIDATES` evaluate their candidates on all
/// available cores (scoped threads, chunked by group); on a single core, or
/// below the threshold, the scan stays sequential. Either way the reduction
/// over candidates runs in group order, so plans are bit-identical to the
/// sequential scan.
pub fn marginal_budget_dp<F>(
    unit_costs: &[u64],
    extra_budget: u64,
    objective: F,
) -> Result<DpOutcome>
where
    F: Fn(&[u64]) -> Result<f64> + Sync,
{
    let table = DpTable::build(unit_costs, extra_budget, objective)?;
    table.outcome_at(extra_budget)
}

/// Runs the budget-indexed marginal DP for a **separable** objective
/// `Σ_i term(i, p_i)`.
///
/// `term(i, p)` is the contribution of group `i` at per-repetition payment
/// `p` (e.g. the expected phase-1 latency `E_i(p)` for RA). Marginal values
/// are tabulated lazily — only payments the scan actually reaches, each
/// evaluated at most once — and every DP candidate is scored in amortised
/// `O(1)` from the cached values. Plans are identical to
/// [`marginal_budget_dp`] run on the equivalent summing closure (the
/// property tests pin this bit-for-bit).
pub fn marginal_budget_dp_separable<F>(
    unit_costs: &[u64],
    extra_budget: u64,
    term: F,
) -> Result<DpOutcome>
where
    F: FnMut(usize, u64) -> Result<f64>,
{
    let table = DpTable::build_separable(unit_costs, extra_budget, term)?;
    table.outcome_at(extra_budget)
}

/// Decision marker: the level was formed by carrying the previous level
/// unchanged (any other value is the index of the incremented group).
const CARRY: u32 = u32::MAX;

/// Minimum number of affordable candidates per level before the closure-path
/// scan fans out over threads (with the `parallel` feature). One
/// `thread::scope` costs tens of microseconds per level, so the fan-out only
/// pays when a level evaluates many candidates — i.e. problems with many
/// groups, where each non-separable objective evaluation is itself `O(n)`
/// (or integration-backed when the latency tables are cold).
#[cfg(feature = "parallel")]
pub const PARALLEL_SCAN_MIN_CANDIDATES: usize = 32;

/// Per-level DP state: how the level's best plan was formed, its objective
/// value and its actual spend. One of these per budget level is all the
/// table keeps — payment vectors are reconstructed by walking the decision
/// chain.
#[derive(Debug, Clone, Copy)]
struct Level {
    /// [`CARRY`] (the level copies its predecessor) or the index of the
    /// group incremented on top of level `x − u_i`. Unused for level 0.
    decision: u32,
    /// Objective value of the best state at this level.
    objective: f64,
    /// Extra budget actually consumed by the best state at this level.
    spent: u64,
}

/// The full state table of the budget-indexed marginal DP.
///
/// The recursion of Algorithms 2 and 3 is a prefix computation: the best plan
/// for every budget level `x ≤ B'` is produced on the way to `B'`. Keeping
/// the whole table around therefore gives two cheap operations that the
/// online re-tuner exploits:
///
/// * [`DpTable::outcome_at`] answers *any smaller* discretionary budget —
///   re-tuning a job whose remaining budget shrank (but whose group
///   structure and rate estimates are unchanged) costs a single `O(x)`
///   decision-chain walk, no objective evaluations;
/// * [`DpTable::extend_to`] warm-starts from the last computed level instead
///   of restarting at zero when the budget *grew* (e.g. a topped-up job).
///
/// Internally the table stores one decision, objective value and spent
/// counter per level (`O(B')` memory) plus a flat ring buffer of full payment
/// vectors covering the last `max(u_i)` levels — exactly the levels the next
/// DP step can reference — so no `O(n·B')` payment matrix is ever
/// materialised and the scan's inner loop performs no allocation. The ring
/// is sized to a power of two so locating a level's payments is a mask and a
/// multiply, not a division.
#[derive(Debug, Clone)]
pub struct DpTable {
    unit_costs: Vec<u64>,
    /// One [`Level`] per covered budget level `0..=B'`.
    levels: Vec<Level>,
    /// Ring buffer of the payment vectors of the most recent levels: level
    /// `x` occupies `n` entries starting at `(x & (ring_rows - 1)) * n`.
    /// Holds at least `min(max(u_i), B') + 1` rows — every level the next DP
    /// step can reference plus the one being written.
    ring: Vec<u64>,
    /// Number of rows in `ring`; always a power of two.
    ring_rows: usize,
}

impl DpTable {
    /// Builds the table up to `extra_budget` with a generic objective
    /// closure. See [`marginal_budget_dp`].
    pub fn build<F>(unit_costs: &[u64], extra_budget: u64, objective: F) -> Result<Self>
    where
        F: Fn(&[u64]) -> Result<f64> + Sync,
    {
        let mut table = Self::with_base(unit_costs, |base| objective(base))?;
        table.extend_to(extra_budget, objective)?;
        Ok(table)
    }

    /// Builds the table up to `extra_budget` for a separable objective
    /// `Σ_i term(i, p_i)`. See [`marginal_budget_dp_separable`].
    pub fn build_separable<F>(unit_costs: &[u64], extra_budget: u64, mut term: F) -> Result<Self>
    where
        F: FnMut(usize, u64) -> Result<f64>,
    {
        let mut table = Self::with_base(unit_costs, |base| {
            let mut sum = 0.0;
            for (i, &p) in base.iter().enumerate() {
                sum += term(i, p)?;
            }
            Ok(sum)
        })?;
        table.extend_to_separable(extra_budget, term)?;
        Ok(table)
    }

    /// Validates the inputs and creates the level-0 state (one unit per
    /// repetition of every group).
    fn with_base<F>(unit_costs: &[u64], base_objective: F) -> Result<Self>
    where
        F: FnOnce(&[u64]) -> Result<f64>,
    {
        if unit_costs.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        if unit_costs.contains(&0) {
            return Err(CoreError::invalid_argument(
                "group unit-increment costs must be positive".to_owned(),
            ));
        }
        let base = vec![1u64; unit_costs.len()];
        let value = base_objective(&base)?;
        Ok(DpTable {
            unit_costs: unit_costs.to_vec(),
            levels: vec![Level {
                decision: CARRY,
                objective: value,
                spent: 0,
            }],
            ring: base, // level 0 in a single-row ring
            ring_rows: 1,
        })
    }

    /// Number of trailing levels whose payment vectors the next DP step can
    /// reference: offsets `1..=max(u_i)` behind the level being computed.
    fn window(&self) -> u64 {
        self.unit_costs
            .iter()
            .max()
            .copied()
            .expect("unit costs are non-empty")
    }

    /// Grows the ring buffer (power-of-two rows) so it can serve a scan up
    /// to `target_budget`, re-materialising the payments of the still-live
    /// levels from the decision chain. A no-op when the ring is already
    /// large enough — in particular on every warm-start extension after a
    /// full-size build.
    fn ensure_ring(&mut self, target_budget: u64) {
        let rows_needed = (self.window().min(target_budget) + 1).next_power_of_two() as usize;
        if self.ring_rows >= rows_needed {
            return;
        }
        let n = self.unit_costs.len();
        let mut ring = vec![0u64; rows_needed * n];
        let top = self.max_budget();
        let low = top.saturating_sub(self.window());
        for level in low..=top {
            let row = (level as usize & (rows_needed - 1)) * n;
            self.reconstruct_payments(level, &mut ring[row..row + n]);
        }
        self.ring = ring;
        self.ring_rows = rows_needed;
    }

    /// Fills `out` with the payment vector of `level` by walking the
    /// decision chain back to level 0. `O(level)` time, no objective
    /// evaluations.
    fn reconstruct_payments(&self, level: u64, out: &mut [u64]) {
        out.fill(1);
        let mut cur = level;
        while cur > 0 {
            match self.levels[cur as usize].decision {
                CARRY => cur -= 1,
                group => {
                    out[group as usize] += 1;
                    cur -= self.unit_costs[group as usize];
                }
            }
        }
    }

    /// Extends the table to cover budgets up to `extra_budget` with the
    /// generic closure path, reusing every already-computed level (the
    /// warm-start path). A no-op when the table already covers the requested
    /// budget.
    ///
    /// # Contract
    ///
    /// `objective` **must** compute the same function of the payment vector
    /// as the one the table was built with (and as every previous
    /// `extend_to` call): warm-started levels are *not* re-evaluated, so a
    /// different objective would silently mix values of two different
    /// functions and corrupt every level from the extension point on. Debug
    /// builds re-evaluate the base state and panic when the value does not
    /// match the one recorded at build time.
    ///
    /// With the `parallel` feature, candidate evaluations fan out over a
    /// pool of worker threads spawned **once per extension** (fed per level
    /// over channels — no per-level thread spawns) when the group count
    /// reaches `PARALLEL_SCAN_MIN_CANDIDATES` and more than one core is
    /// available; the winning candidate is still selected by a sequential
    /// in-group-order reduction, so the chosen plans are bit-identical to
    /// the sequential scan.
    pub fn extend_to<F>(&mut self, extra_budget: u64, objective: F) -> Result<()>
    where
        F: Fn(&[u64]) -> Result<f64> + Sync,
    {
        #[cfg(debug_assertions)]
        {
            let base = vec![1u64; self.unit_costs.len()];
            let value = objective(&base)?;
            assert!(
                value.to_bits() == self.levels[0].objective.to_bits(),
                "DpTable::extend_to called with a different objective than at build time: \
                 base state evaluates to {value}, table recorded {}",
                self.levels[0].objective
            );
        }
        let start = self.levels.len() as u64;
        if start > extra_budget {
            return Ok(());
        }
        self.ensure_ring(extra_budget);
        self.levels
            .reserve(extra_budget as usize + 1 - self.levels.len());
        #[cfg(feature = "parallel")]
        {
            let threads = std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1);
            if threads > 1 && self.unit_costs.len() >= PARALLEL_SCAN_MIN_CANDIDATES {
                return self.extend_levels_parallel(start, extra_budget, threads, &objective);
            }
        }
        self.extend_levels_sequential(start, extra_budget, &objective)
    }

    /// The sequential closure-path scan over levels `start..=extra_budget`.
    fn extend_levels_sequential<F>(
        &mut self,
        start: u64,
        extra_budget: u64,
        objective: &F,
    ) -> Result<()>
    where
        F: Fn(&[u64]) -> Result<f64>,
    {
        let n = self.unit_costs.len();
        let mask = self.ring_rows - 1;
        let mut scratch = vec![0u64; n];
        for x in start..=extra_budget {
            // Candidate 1: do not spend the x-th unit (carry the previous
            // state).
            let carry = self.levels[(x - 1) as usize];
            let mut best_value = carry.objective;
            let mut best_spent = carry.spent;
            let mut best_decision = CARRY;
            // Candidate 2..n+1: give one more unit-increment to group i,
            // built on the best state with x − u_i extra budget.
            for (i, &u) in self.unit_costs.iter().enumerate() {
                if u <= x {
                    let prev = (x - u) as usize;
                    let row = (prev & mask) * n;
                    scratch.copy_from_slice(&self.ring[row..row + n]);
                    scratch[i] += 1;
                    let value = objective(&scratch)?;
                    let spent = self.levels[prev].spent + u;
                    if wins(value, spent, best_value, best_spent) {
                        best_value = value;
                        best_spent = spent;
                        best_decision = i as u32;
                    }
                }
            }
            self.push_level(x, best_decision, best_value, best_spent);
        }
        Ok(())
    }

    /// The parallel closure-path scan: `threads` persistent workers are
    /// spawned once and fed candidate batches per level over channels, so
    /// the per-level overhead is a few channel messages rather than thread
    /// spawns. The main thread builds each candidate's payment vector (a
    /// memcpy), workers run the objective evaluations, and the reduction
    /// sorts results back into ascending group order before folding — the
    /// exact order the sequential scan visits, so decisions (and therefore
    /// plans) are bit-identical.
    #[cfg(feature = "parallel")]
    fn extend_levels_parallel<F>(
        &mut self,
        start: u64,
        extra_budget: u64,
        threads: usize,
        objective: &F,
    ) -> Result<()>
    where
        F: Fn(&[u64]) -> Result<f64> + Sync,
    {
        use std::sync::mpsc;

        /// One candidate handed to a worker: group index, its payment
        /// vector, and the spend it would commit.
        type Job = (usize, Vec<u64>, u64);
        /// A worker's verdicts: (group, objective value, spent).
        type Verdicts = Vec<(usize, Result<f64>, u64)>;

        let n = self.unit_costs.len();
        let mask = self.ring_rows - 1;
        std::thread::scope(|scope| -> Result<()> {
            let (verdict_tx, verdict_rx) = mpsc::channel::<Verdicts>();
            let job_txs: Vec<mpsc::Sender<Vec<Job>>> = (0..threads)
                .map(|_| {
                    let (job_tx, job_rx) = mpsc::channel::<Vec<Job>>();
                    let verdict_tx = verdict_tx.clone();
                    scope.spawn(move || {
                        while let Ok(batch) = job_rx.recv() {
                            let verdicts: Verdicts = batch
                                .into_iter()
                                .map(|(i, payments, spent)| (i, objective(&payments), spent))
                                .collect();
                            if verdict_tx.send(verdicts).is_err() {
                                break;
                            }
                        }
                    });
                    job_tx
                })
                .collect();
            drop(verdict_tx);

            let mut evaluated: Vec<(usize, f64, u64)> = Vec::with_capacity(n);
            for x in start..=extra_budget {
                let carry = self.levels[(x - 1) as usize];
                let mut best_value = carry.objective;
                let mut best_spent = carry.spent;
                let mut best_decision = CARRY;

                let jobs: Vec<Job> = self
                    .unit_costs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &u)| u <= x)
                    .map(|(i, &u)| {
                        let prev = (x - u) as usize;
                        let row = (prev & mask) * n;
                        let mut payments = self.ring[row..row + n].to_vec();
                        payments[i] += 1;
                        (i, payments, self.levels[prev].spent + u)
                    })
                    .collect();
                let batches = if jobs.is_empty() {
                    0
                } else {
                    let chunk_size = jobs.len().div_ceil(threads);
                    let mut sent = 0;
                    let mut rest = jobs;
                    while !rest.is_empty() {
                        let tail = rest.split_off(chunk_size.min(rest.len()));
                        job_txs[sent]
                            .send(rest)
                            .expect("parallel DP scan worker died");
                        rest = tail;
                        sent += 1;
                    }
                    sent
                };
                evaluated.clear();
                let mut failure: Option<CoreError> = None;
                for _ in 0..batches {
                    let verdicts = verdict_rx.recv().expect("parallel DP scan worker died");
                    for (i, value, spent) in verdicts {
                        match value {
                            Ok(value) => evaluated.push((i, value, spent)),
                            Err(err) => failure = Some(failure.take().unwrap_or(err)),
                        }
                    }
                }
                if let Some(err) = failure {
                    return Err(err);
                }
                // Workers answer out of order; restore group order so ties
                // break exactly like the sequential scan.
                evaluated.sort_unstable_by_key(|&(i, _, _)| i);
                for &(i, value, spent) in &evaluated {
                    if wins(value, spent, best_value, best_spent) {
                        best_value = value;
                        best_spent = spent;
                        best_decision = i as u32;
                    }
                }
                self.push_level(x, best_decision, best_value, best_spent);
            }
            // Dropping the job senders lets the workers drain and exit; the
            // scope joins them.
            drop(job_txs);
            Ok(())
        })
    }

    /// Extends the table to cover budgets up to `extra_budget` for a
    /// separable objective `Σ_i term(i, p_i)`, evaluating each candidate in
    /// amortised `O(1)` from lazily tabulated per-group marginal values.
    ///
    /// # Contract
    ///
    /// Same as [`DpTable::extend_to`]: `term` must compute the same function
    /// as the objective the table was built with. Debug builds re-evaluate
    /// the base state and panic on a mismatch. Mixing `extend_to` and
    /// `extend_to_separable` on one table is fine as long as the closure sums
    /// exactly the same terms.
    pub fn extend_to_separable<F>(&mut self, extra_budget: u64, mut term: F) -> Result<()>
    where
        F: FnMut(usize, u64) -> Result<f64>,
    {
        #[cfg(debug_assertions)]
        {
            let mut value = 0.0;
            for i in 0..self.unit_costs.len() {
                value += term(i, 1)?;
            }
            assert!(
                value.to_bits() == self.levels[0].objective.to_bits(),
                "DpTable::extend_to_separable called with a different objective than at build \
                 time: base state evaluates to {value}, table recorded {}",
                self.levels[0].objective
            );
        }
        let start = self.levels.len() as u64;
        if start > extra_budget {
            return Ok(());
        }
        self.ensure_ring(extra_budget);
        self.levels
            .reserve(extra_budget as usize + 1 - self.levels.len());
        // Marginal tables `terms[i][p] = f_i(p)`, grown lazily and
        // contiguously as the scan reaches new payments. Only payments that
        // best plans actually reach (plus the one-unit increments the scan
        // probes) are ever evaluated — the same working set the closure
        // path's memoizing objectives see, not the `1 + B'/u_i` worst case
        // of a group absorbing the whole budget alone.
        let n = self.unit_costs.len();
        let mask = self.ring_rows - 1;
        // `max_p[i]` — the largest payment group i attains in any level the
        // scan can still reference; each table upholds the invariant "filled
        // through max_p[i] + 1" (the one-unit increment the next candidate
        // probes), so the hot loop below reads the tables immutably with no
        // fill checks. Seeded from the live window so warm-start extensions
        // read valid values for payments inherited from earlier calls (a
        // non-memoizing `term` closure pays that seed again per call;
        // memoize upstream if evaluation is expensive — RA's
        // `GroupLatencyCache` does).
        let mut terms: Vec<Vec<f64>> = vec![vec![f64::NAN]; n]; // index 0 unused
        let mut max_p = vec![1u64; n];
        {
            let low = (start - 1).saturating_sub(self.window());
            for level in low..start {
                let row = (level as usize & mask) * n;
                for (max, &p) in max_p.iter_mut().zip(&self.ring[row..row + n]) {
                    *max = (*max).max(p);
                }
            }
            for (i, (table, &max)) in terms.iter_mut().zip(&max_p).enumerate() {
                // Groups the budget can never increment only ever contribute
                // their current term to the fresh per-level sums — skip the
                // speculative `max + 1` entry for those.
                let fill_to = if self.unit_costs[i] <= extra_budget {
                    max + 1
                } else {
                    max
                };
                for p in 1..=fill_to {
                    table.push(term(i, p)?);
                }
            }
        }
        // Split borrows so the hot loop reads unit costs / levels and
        // writes the ring without re-borrowing `self` per access.
        let DpTable {
            unit_costs,
            levels,
            ring,
            ..
        } = self;
        for x in start..=extra_budget {
            let xi = x as usize;
            let carry = levels[xi - 1];
            let mut best_value = carry.objective;
            let mut best_spent = carry.spent;
            let mut best_decision = CARRY;
            for (i, (&u, table)) in unit_costs.iter().zip(&terms).enumerate() {
                if u <= x {
                    let prev = (x - u) as usize;
                    // Raising group i's payment by one unit changes exactly
                    // one term of the sum: O(1) per candidate (fills happen
                    // below, only when a group's maximum payment grows).
                    let prev_state = levels[prev];
                    let p = ring[(prev & mask) * n + i] as usize;
                    let value = prev_state.objective - table[p] + table[p + 1];
                    let candidate_spent = prev_state.spent + u;
                    if wins(value, candidate_spent, best_value, best_spent) {
                        best_value = value;
                        best_spent = candidate_spent;
                        best_decision = i as u32;
                    }
                }
            }
            // Write the winner's payment vector into its ring row, then
            // re-anchor the stored value with a fresh left-to-right sum over
            // those payments. This keeps every stored level bit-equal to
            // what the closure path computes (same values, same summation
            // order) and stops incremental rounding error from accumulating
            // across levels — the O(n) cost is per *level*, not per
            // candidate, and touches only the cached table.
            let parent = if best_decision == CARRY {
                xi - 1
            } else {
                xi - unit_costs[best_decision as usize] as usize
            };
            let src = (parent & mask) * n;
            let dst = (xi & mask) * n;
            ring.copy_within(src..src + n, dst);
            if best_decision != CARRY {
                let i = best_decision as usize;
                ring[dst + i] += 1;
                // Maintain the fill invariant: when the incremented group
                // attains a new maximum payment, tabulate the next marginal
                // value so future candidates can read it without checks.
                // Amortised O(1): this fires at most once per distinct
                // (group, payment) pair a best plan reaches.
                let p_new = ring[dst + i];
                if p_new > max_p[i] {
                    max_p[i] = p_new;
                    let table = &mut terms[i];
                    while (table.len() as u64) <= p_new + 1 {
                        let payment = table.len() as u64;
                        table.push(term(i, payment)?);
                    }
                }
            }
            let mut fresh = 0.0;
            for (table, &p) in terms.iter().zip(&ring[dst..dst + n]) {
                fresh += table[p as usize];
            }
            levels.push(Level {
                decision: best_decision,
                objective: fresh,
                spent: best_spent,
            });
        }
        Ok(())
    }

    /// Appends level `x` with its winning decision, building the level's
    /// payment vector in its ring row from the parent's.
    fn push_level(&mut self, x: u64, decision: u32, value: f64, spent: u64) {
        let n = self.unit_costs.len();
        let mask = self.ring_rows - 1;
        let xi = x as usize;
        let parent = if decision == CARRY {
            xi - 1
        } else {
            xi - self.unit_costs[decision as usize] as usize
        };
        let src = (parent & mask) * n;
        let dst = (xi & mask) * n;
        self.ring.copy_within(src..src + n, dst);
        if decision != CARRY {
            self.ring[dst + decision as usize] += 1;
        }
        self.levels.push(Level {
            decision,
            objective: value,
            spent,
        });
    }

    /// Serializes the table into its compact durable image: the unit costs
    /// plus one `(decision, objective bits, spent)` record per level. The
    /// payment ring is deliberately excluded — it is a cache of the decision
    /// chain and [`DpTable::from_snapshot`] rebuilds it.
    pub fn snapshot(&self) -> DpTableSnapshot {
        DpTableSnapshot {
            unit_costs: self.unit_costs.clone(),
            levels: self
                .levels
                .iter()
                .map(|level| (level.decision, level.objective.to_bits(), level.spent))
                .collect(),
        }
    }

    /// Rebuilds a table from its durable image, re-validating every level:
    /// unit costs must be positive, decisions must reference affordable
    /// groups, the spent chain must be internally consistent and objectives
    /// must be finite. A snapshot that fails any check is rejected whole —
    /// a corrupt record degrades to a cold solve, never to a wrong plan.
    ///
    /// Round trip is exact: `DpTable::from_snapshot(&table.snapshot())`
    /// answers every [`DpTable::outcome_at`] query bit-identically to the
    /// original table, and warm-start extensions behave as if the table had
    /// never left memory.
    pub fn from_snapshot(snapshot: &DpTableSnapshot) -> Result<Self> {
        let n = snapshot.unit_costs.len();
        if n == 0 {
            return Err(CoreError::EmptyTaskSet);
        }
        if snapshot.unit_costs.contains(&0) {
            return Err(CoreError::invalid_argument(
                "snapshot unit costs must be positive".to_owned(),
            ));
        }
        if snapshot.levels.is_empty() {
            return Err(CoreError::invalid_argument(
                "snapshot holds no DP levels".to_owned(),
            ));
        }
        let mut levels = Vec::with_capacity(snapshot.levels.len());
        for (x, &(decision, objective_bits, spent)) in snapshot.levels.iter().enumerate() {
            let objective = f64::from_bits(objective_bits);
            if !objective.is_finite() {
                return Err(CoreError::invalid_argument(format!(
                    "snapshot level {x} has a non-finite objective"
                )));
            }
            let expected_spent = if x == 0 {
                if decision != CARRY {
                    return Err(CoreError::invalid_argument(
                        "snapshot level 0 must be the base state".to_owned(),
                    ));
                }
                0
            } else if decision == CARRY {
                snapshot.levels[x - 1].2
            } else {
                let group = decision as usize;
                if group >= n {
                    return Err(CoreError::invalid_argument(format!(
                        "snapshot level {x} increments unknown group {group}"
                    )));
                }
                let u = snapshot.unit_costs[group];
                if u > x as u64 {
                    return Err(CoreError::invalid_argument(format!(
                        "snapshot level {x} increments group {group} costing {u} units"
                    )));
                }
                snapshot.levels[x - u as usize].2 + u
            };
            if spent != expected_spent {
                return Err(CoreError::invalid_argument(format!(
                    "snapshot level {x} records spend {spent}, chain implies {expected_spent}"
                )));
            }
            levels.push(Level {
                decision,
                objective,
                spent,
            });
        }
        let mut table = DpTable {
            unit_costs: snapshot.unit_costs.clone(),
            levels,
            ring: vec![1; n], // level-0 base payments in a single-row ring
            ring_rows: 1,
        };
        table.ensure_ring(table.max_budget());
        Ok(table)
    }

    /// The largest discretionary budget the table covers.
    pub fn max_budget(&self) -> u64 {
        self.levels.len() as u64 - 1
    }

    /// The group unit-increment costs the table was built for.
    pub fn unit_costs(&self) -> &[u64] {
        &self.unit_costs
    }

    /// Reads the best plan for any budget level the table covers. Costs one
    /// `O(extra_budget)` walk of the decision chain (no objective
    /// evaluations) to reconstruct the payment vector.
    pub fn outcome_at(&self, extra_budget: u64) -> Result<DpOutcome> {
        let state = self.levels.get(extra_budget as usize).ok_or_else(|| {
            CoreError::invalid_argument(format!(
                "DP table covers budgets up to {}, requested {extra_budget}",
                self.max_budget()
            ))
        })?;
        let mut payments = vec![1u64; self.unit_costs.len()];
        self.reconstruct_payments(extra_budget, &mut payments);
        Ok(DpOutcome {
            payments,
            objective: state.objective,
            extra_spent: state.spent,
        })
    }

    /// Reads just the objective value at a budget level — `O(1)`, no
    /// decision-chain walk. The cross-market router assembles per-group
    /// objective frontiers out of thousands of these reads, so skipping the
    /// payment reconstruction that [`DpTable::outcome_at`] performs matters.
    pub fn objective_at(&self, extra_budget: u64) -> Result<f64> {
        self.levels
            .get(extra_budget as usize)
            .map(|level| level.objective)
            .ok_or_else(|| {
                CoreError::invalid_argument(format!(
                    "DP table covers budgets up to {}, requested {extra_budget}",
                    self.max_budget()
                ))
            })
    }
}

/// The compact durable image of a [`DpTable`] — what the serving layer's
/// write-behind store persists per plan family (ROADMAP "Persistence hook
/// for family tables").
///
/// A level is `(decision, objective bits, spent)`: the objective is stored
/// as its IEEE-754 bit pattern so the load path can assert **bit** equality
/// with freshly computed values (shortest-round-trip decimal would also be
/// exact for finite values, but bits make the contract unmissable). The
/// payment ring is not stored; [`DpTable::from_snapshot`] re-derives it from
/// the decision chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpTableSnapshot {
    /// The group unit-increment costs the table was built for.
    pub unit_costs: Vec<u64>,
    /// Per budget level `0..=B'`: `(decision, objective bits, spent)`.
    pub levels: Vec<(u32, u64, u64)>,
}

impl DpTableSnapshot {
    /// The largest discretionary budget the snapshot covers.
    pub fn max_budget(&self) -> u64 {
        self.levels.len().saturating_sub(1) as u64
    }

    /// The base-state (level 0) objective bits, compared against a fresh
    /// evaluation on load — the persisted form of the debug base-state check
    /// of [`DpTable::extend_to`].
    pub fn base_objective_bits(&self) -> Option<u64> {
        self.levels.first().map(|&(_, bits, _)| bits)
    }
}

/// The DP's candidate comparison: strict improvements always win; on
/// plateaus (the objective is unchanged by the increment, e.g. a rate model
/// that is flat at low payments) prefer the plan that spends more, so the DP
/// can walk through the flat region instead of stalling at the base
/// allocation.
#[inline]
fn wins(value: f64, spent: u64, best_value: f64, best_spent: u64) -> bool {
    let epsilon = 1e-12 * value.abs().max(1.0);
    value < best_value - epsilon || (value <= best_value + epsilon && spent > best_spent)
}

/// Exhaustively enumerates every per-group payment vector affordable within
/// `extra_budget` and returns the one minimising the objective. Exponential —
/// only used to validate the DP on tiny instances (tests and ablations).
pub fn exhaustive_group_search<F>(
    unit_costs: &[u64],
    extra_budget: u64,
    mut objective: F,
) -> Result<DpOutcome>
where
    F: FnMut(&[u64]) -> Result<f64>,
{
    if unit_costs.is_empty() {
        return Err(CoreError::EmptyTaskSet);
    }
    let n = unit_costs.len();
    let mut best: Option<DpOutcome> = None;
    let mut current = vec![1u64; n];

    fn recurse<F>(
        unit_costs: &[u64],
        remaining: u64,
        index: usize,
        current: &mut Vec<u64>,
        objective: &mut F,
        best: &mut Option<DpOutcome>,
        extra_spent: u64,
    ) -> Result<()>
    where
        F: FnMut(&[u64]) -> Result<f64>,
    {
        if index == unit_costs.len() {
            let value = objective(current)?;
            let better = match best {
                None => true,
                Some(b) => value < b.objective,
            };
            if better {
                *best = Some(DpOutcome {
                    payments: current.clone(),
                    objective: value,
                    extra_spent,
                });
            }
            return Ok(());
        }
        let max_increments = remaining / unit_costs[index];
        for extra in 0..=max_increments {
            current[index] = 1 + extra;
            recurse(
                unit_costs,
                remaining - extra * unit_costs[index],
                index + 1,
                current,
                objective,
                best,
                extra_spent + extra * unit_costs[index],
            )?;
        }
        current[index] = 1;
        Ok(())
    }

    recurse(
        unit_costs,
        extra_budget,
        0,
        &mut current,
        &mut objective,
        &mut best,
        0,
    )?;
    best.ok_or_else(|| CoreError::invalid_argument("no feasible payment vector".to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple strictly convex separable objective: sum of `c_i / p_i`.
    fn harmonic_objective(coeffs: &'static [f64]) -> impl Fn(&[u64]) -> Result<f64> + Sync {
        move |payments: &[u64]| {
            Ok(payments
                .iter()
                .zip(coeffs)
                .map(|(&p, &c)| c / p as f64)
                .sum())
        }
    }

    /// The same objective expressed as per-group terms for the separable
    /// path.
    fn harmonic_term(coeffs: &'static [f64]) -> impl FnMut(usize, u64) -> Result<f64> {
        move |group: usize, payment: u64| Ok(coeffs[group] / payment as f64)
    }

    #[test]
    fn dp_rejects_bad_input() {
        assert!(marginal_budget_dp(&[], 10, |_| Ok(0.0)).is_err());
        assert!(marginal_budget_dp(&[0, 1], 10, |_| Ok(0.0)).is_err());
        assert!(marginal_budget_dp_separable(&[], 10, |_, _| Ok(0.0)).is_err());
        assert!(marginal_budget_dp_separable(&[0, 1], 10, |_, _| Ok(0.0)).is_err());
        assert!(exhaustive_group_search(&[], 10, |_| Ok(0.0)).is_err());
    }

    #[test]
    fn dp_with_zero_extra_budget_returns_base_plan() {
        let out = marginal_budget_dp(&[2, 3], 0, harmonic_objective(&[1.0, 1.0])).unwrap();
        assert_eq!(out.payments, vec![1, 1]);
        assert_eq!(out.extra_spent, 0);
        assert!((out.objective - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dp_spends_budget_on_the_most_valuable_group() {
        // Group 0 has a much larger coefficient, so extra budget should go
        // there first.
        let out = marginal_budget_dp(&[1, 1], 3, harmonic_objective(&[10.0, 0.1])).unwrap();
        assert!(out.payments[0] > out.payments[1]);
        assert!(out.extra_spent <= 3);
    }

    #[test]
    fn dp_matches_exhaustive_search_on_small_instances() {
        let cases: Vec<(&[u64], u64, &'static [f64])> = vec![
            (&[1, 1], 6, &[1.0, 1.0]),
            (&[2, 3], 12, &[4.0, 9.0]),
            (&[3, 5], 20, &[2.0, 7.0]),
            (&[1, 2, 3], 10, &[1.0, 5.0, 2.0]),
        ];
        for (costs, budget, coeffs) in cases {
            let dp = marginal_budget_dp(costs, budget, harmonic_objective(coeffs)).unwrap();
            let brute = exhaustive_group_search(costs, budget, harmonic_objective(coeffs)).unwrap();
            assert!(
                (dp.objective - brute.objective).abs() < 1e-9,
                "costs {costs:?} budget {budget}: dp {} vs brute {}",
                dp.objective,
                brute.objective
            );
        }
    }

    #[test]
    fn separable_dp_matches_closure_dp_bit_for_bit() {
        let cases: Vec<(&[u64], u64, &'static [f64])> = vec![
            (&[1, 1], 6, &[1.0, 1.0]),
            (&[2, 3], 12, &[4.0, 9.0]),
            (&[3, 5], 20, &[2.0, 7.0]),
            (&[1, 2, 3], 30, &[1.0, 5.0, 2.0]),
            (&[7, 2, 5, 3], 60, &[3.0, 0.5, 8.0, 2.5]),
        ];
        for (costs, budget, coeffs) in cases {
            let closure = marginal_budget_dp(costs, budget, harmonic_objective(coeffs)).unwrap();
            let separable =
                marginal_budget_dp_separable(costs, budget, harmonic_term(coeffs)).unwrap();
            assert_eq!(closure.payments, separable.payments, "costs {costs:?}");
            assert_eq!(
                closure.objective.to_bits(),
                separable.objective.to_bits(),
                "costs {costs:?}: {} vs {}",
                closure.objective,
                separable.objective
            );
            assert_eq!(closure.extra_spent, separable.extra_spent);
        }
    }

    #[test]
    fn dp_objective_is_monotone_in_budget() {
        let mut prev = f64::INFINITY;
        for budget in 0..20u64 {
            let out = marginal_budget_dp(&[2, 3], budget, harmonic_objective(&[4.0, 9.0])).unwrap();
            assert!(
                out.objective <= prev + 1e-12,
                "objective must not increase with budget"
            );
            prev = out.objective;
        }
    }

    #[test]
    fn dp_never_overspends() {
        for budget in 0..30u64 {
            let out = marginal_budget_dp(&[3, 4], budget, harmonic_objective(&[1.0, 1.0])).unwrap();
            let spent: u64 = out
                .payments
                .iter()
                .zip([3u64, 4u64])
                .map(|(&p, u)| (p - 1) * u)
                .sum();
            assert!(spent <= budget);
            assert_eq!(spent, out.extra_spent);
        }
    }

    #[test]
    fn exhaustive_explores_all_combinations() {
        // With unit costs [2, 2] and 4 extra units the affordable payment
        // vectors are (1,1),(2,1),(1,2),(3,1),(2,2),(1,3) — the objective
        // below is minimised uniquely at (2,2).
        let objective =
            |p: &[u64]| Ok(((p[0] as f64) - 2.0).powi(2) + ((p[1] as f64) - 2.0).powi(2));
        let out = exhaustive_group_search(&[2, 2], 4, objective).unwrap();
        assert_eq!(out.payments, vec![2, 2]);
        assert_eq!(out.extra_spent, 4);
        assert!(out.objective.abs() < 1e-12);
    }

    #[test]
    fn dp_table_prefix_reads_match_fresh_solves() {
        let table = DpTable::build(&[2, 3], 20, harmonic_objective(&[4.0, 9.0])).unwrap();
        assert_eq!(table.max_budget(), 20);
        assert_eq!(table.unit_costs(), &[2, 3]);
        for budget in 0..=20u64 {
            let fresh =
                marginal_budget_dp(&[2, 3], budget, harmonic_objective(&[4.0, 9.0])).unwrap();
            let cached = table.outcome_at(budget).unwrap();
            assert_eq!(cached, fresh, "budget {budget}");
        }
        assert!(table.outcome_at(21).is_err());
    }

    #[test]
    fn dp_table_objective_reads_match_full_outcomes() {
        let table = DpTable::build(&[2, 3], 20, harmonic_objective(&[4.0, 9.0])).unwrap();
        for budget in 0..=20u64 {
            assert_eq!(
                table.objective_at(budget).unwrap().to_bits(),
                table.outcome_at(budget).unwrap().objective.to_bits(),
                "budget {budget}"
            );
        }
        assert!(table.objective_at(21).is_err());
    }

    #[test]
    fn dp_table_warm_start_extension_matches_cold_build() {
        let mut warm = DpTable::build(&[1, 2], 5, harmonic_objective(&[1.0, 5.0])).unwrap();
        warm.extend_to(15, harmonic_objective(&[1.0, 5.0])).unwrap();
        let cold = DpTable::build(&[1, 2], 15, harmonic_objective(&[1.0, 5.0])).unwrap();
        for budget in 0..=15u64 {
            assert_eq!(
                warm.outcome_at(budget).unwrap(),
                cold.outcome_at(budget).unwrap(),
                "budget {budget}"
            );
        }
        // Extending backwards is a no-op.
        warm.extend_to(3, harmonic_objective(&[1.0, 5.0])).unwrap();
        assert_eq!(warm.max_budget(), 15);
    }

    #[test]
    fn separable_warm_start_extension_matches_cold_build() {
        let mut warm =
            DpTable::build_separable(&[2, 3, 4], 7, harmonic_term(&[1.0, 5.0, 2.0])).unwrap();
        warm.extend_to_separable(40, harmonic_term(&[1.0, 5.0, 2.0]))
            .unwrap();
        let cold =
            DpTable::build_separable(&[2, 3, 4], 40, harmonic_term(&[1.0, 5.0, 2.0])).unwrap();
        for budget in 0..=40u64 {
            let w = warm.outcome_at(budget).unwrap();
            let c = cold.outcome_at(budget).unwrap();
            assert_eq!(w.payments, c.payments, "budget {budget}");
            assert_eq!(w.objective.to_bits(), c.objective.to_bits());
            assert_eq!(w.extra_spent, c.extra_spent);
        }
        // Extending backwards is a no-op.
        warm.extend_to_separable(3, harmonic_term(&[1.0, 5.0, 2.0]))
            .unwrap();
        assert_eq!(warm.max_budget(), 40);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "different objective")]
    fn extend_to_rejects_a_different_objective_in_debug_builds() {
        let mut table = DpTable::build(&[1, 2], 5, harmonic_objective(&[1.0, 5.0])).unwrap();
        // A different objective silently corrupts warm-started levels, so
        // debug builds re-evaluate the base state and panic on mismatch.
        table
            .extend_to(10, harmonic_objective(&[2.0, 5.0]))
            .unwrap();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "different objective")]
    fn extend_to_separable_rejects_a_different_objective_in_debug_builds() {
        let mut table = DpTable::build_separable(&[1, 2], 5, harmonic_term(&[1.0, 5.0])).unwrap();
        table
            .extend_to_separable(10, harmonic_term(&[1.0, 4.0]))
            .unwrap();
    }

    #[test]
    fn mixed_closure_and_separable_extension_agree() {
        // The contract allows mixing the two extension paths as long as they
        // compute the same objective.
        let mut mixed = DpTable::build_separable(&[1, 2], 5, harmonic_term(&[1.0, 5.0])).unwrap();
        mixed
            .extend_to(15, harmonic_objective(&[1.0, 5.0]))
            .unwrap();
        let cold = DpTable::build(&[1, 2], 15, harmonic_objective(&[1.0, 5.0])).unwrap();
        for budget in 0..=15u64 {
            assert_eq!(
                mixed.outcome_at(budget).unwrap(),
                cold.outcome_at(budget).unwrap(),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn dp_propagates_objective_errors() {
        let result = marginal_budget_dp(&[1], 2, |p| {
            if p[0] > 1 {
                Err(CoreError::invalid_argument("boom".to_owned()))
            } else {
                Ok(1.0)
            }
        });
        assert!(result.is_err());
        let result = marginal_budget_dp_separable(&[1], 2, |_, p| {
            if p > 1 {
                Err(CoreError::invalid_argument("boom".to_owned()))
            } else {
                Ok(1.0)
            }
        });
        assert!(result.is_err());
    }

    /// With enough groups the closure path fans each level's candidate scan
    /// out over threads; the result must stay bit-identical to the separable
    /// path (which is sequential and already pinned to the reference).
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_candidate_scan_is_bit_identical_to_sequential() {
        let n = PARALLEL_SCAN_MIN_CANDIDATES + 8;
        let unit_costs: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % 5)).collect();
        let coeffs: Vec<f64> = (0..n).map(|i| 0.3 + 0.7 * (i as f64)).collect();
        let budget = 120u64;
        let objective = |payments: &[u64]| -> Result<f64> {
            Ok(payments
                .iter()
                .zip(&coeffs)
                .map(|(&p, &c)| c / p as f64)
                .sum())
        };
        let closure = marginal_budget_dp(&unit_costs, budget, objective).unwrap();
        let separable =
            marginal_budget_dp_separable(&unit_costs, budget, |g, p| Ok(coeffs[g] / p as f64))
                .unwrap();
        assert_eq!(closure.payments, separable.payments);
        assert_eq!(closure.extra_spent, separable.extra_spent);
        // The closure path sums left-to-right exactly like the separable
        // path's re-anchoring, so even the objective bits agree.
        assert_eq!(closure.objective.to_bits(), separable.objective.to_bits());
    }

    /// Drives the worker-pool scan directly with forced thread counts —
    /// including more workers than candidates and single-core boxes where
    /// the automatic gate would stay sequential — and pins bit-identity to
    /// the sequential scan at every level.
    #[cfg(feature = "parallel")]
    #[test]
    fn forced_parallel_scan_matches_sequential_at_every_level() {
        let n = 37usize; // deliberately not a multiple of any thread count
        let unit_costs: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % 7)).collect();
        let coeffs: Vec<f64> = (0..n).map(|i| 0.2 + 1.3 * (i as f64 % 9.0)).collect();
        let budget = 90u64;
        let objective = |payments: &[u64]| -> Result<f64> {
            Ok(payments
                .iter()
                .zip(&coeffs)
                .map(|(&p, &c)| c / p as f64)
                .sum())
        };
        // Calling the level scanners directly skips `extend_to`'s ring
        // sizing, so do it here.
        let mut sequential = DpTable::with_base(&unit_costs, objective).unwrap();
        sequential.ensure_ring(budget);
        sequential
            .extend_levels_sequential(1, budget, &objective)
            .unwrap();
        for threads in [2usize, 3, 8, 64] {
            let mut parallel = DpTable::with_base(&unit_costs, objective).unwrap();
            parallel.ensure_ring(budget);
            parallel
                .extend_levels_parallel(1, budget, threads, &objective)
                .unwrap();
            for level in 0..=budget {
                let s = sequential.outcome_at(level).unwrap();
                let p = parallel.outcome_at(level).unwrap();
                assert_eq!(s.payments, p.payments, "threads {threads} level {level}");
                assert_eq!(
                    s.objective.to_bits(),
                    p.objective.to_bits(),
                    "threads {threads} level {level}"
                );
                assert_eq!(s.extra_spent, p.extra_spent);
            }
        }
        // Errors from the objective surface instead of wedging the pool.
        let failing = |payments: &[u64]| -> Result<f64> {
            if payments.iter().sum::<u64>() > (n as u64) + 4 {
                Err(CoreError::invalid_argument("boom".to_owned()))
            } else {
                Ok(1.0)
            }
        };
        let mut table = DpTable::with_base(&unit_costs, failing).unwrap();
        table.ensure_ring(40);
        assert!(table.extend_levels_parallel(1, 40, 3, &failing).is_err());
    }

    /// The persistence surface: a snapshot round trip reproduces every
    /// outcome bit-for-bit, including after a warm-start extension of the
    /// rebuilt table.
    #[test]
    fn snapshot_round_trip_is_bit_exact_and_extendable() {
        let costs: &[u64] = &[2, 3, 5];
        let objective = harmonic_objective(&[4.0, 9.0, 1.5]);
        let table = DpTable::build(costs, 25, &objective).unwrap();
        let snapshot = table.snapshot();
        assert_eq!(snapshot.max_budget(), 25);
        assert_eq!(
            snapshot.base_objective_bits().unwrap(),
            table.outcome_at(0).unwrap().objective.to_bits()
        );
        // Serde round trip through the JSON shim preserves the image.
        let text = serde_json::to_string(&snapshot).unwrap();
        let parsed: DpTableSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, snapshot);

        let mut restored = DpTable::from_snapshot(&parsed).unwrap();
        for budget in 0..=25u64 {
            let a = table.outcome_at(budget).unwrap();
            let b = restored.outcome_at(budget).unwrap();
            assert_eq!(a.payments, b.payments, "budget {budget}");
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.extra_spent, b.extra_spent);
        }
        // A restored table extends exactly like one that never left memory.
        restored.extend_to(60, &objective).unwrap();
        let cold = DpTable::build(costs, 60, &objective).unwrap();
        for budget in 0..=60u64 {
            assert_eq!(
                restored.outcome_at(budget).unwrap(),
                cold.outcome_at(budget).unwrap(),
                "budget {budget}"
            );
        }
    }

    /// Corrupt snapshots are rejected whole instead of rebuilding a table
    /// that would serve wrong plans.
    #[test]
    fn corrupt_snapshots_are_rejected() {
        let table = DpTable::build(&[2, 3], 12, harmonic_objective(&[4.0, 9.0])).unwrap();
        let good = table.snapshot();
        assert!(DpTable::from_snapshot(&good).is_ok());

        let mut no_costs = good.clone();
        no_costs.unit_costs.clear();
        assert!(DpTable::from_snapshot(&no_costs).is_err());

        let mut zero_cost = good.clone();
        zero_cost.unit_costs[0] = 0;
        assert!(DpTable::from_snapshot(&zero_cost).is_err());

        let mut no_levels = good.clone();
        no_levels.levels.clear();
        assert!(DpTable::from_snapshot(&no_levels).is_err());

        let mut bad_decision = good.clone();
        bad_decision.levels[5].0 = 7; // only groups 0 and 1 exist
        assert!(DpTable::from_snapshot(&bad_decision).is_err());

        let mut unaffordable = good.clone();
        unaffordable.levels[1].0 = 1; // group 1 costs 3 units at level 1
        assert!(DpTable::from_snapshot(&unaffordable).is_err());

        let mut broken_chain = good.clone();
        broken_chain.levels[6].2 = broken_chain.levels[6].2.wrapping_add(1);
        assert!(DpTable::from_snapshot(&broken_chain).is_err());

        let mut non_finite = good.clone();
        non_finite.levels[3].1 = f64::NAN.to_bits();
        assert!(DpTable::from_snapshot(&non_finite).is_err());
    }

    #[test]
    fn plateau_objectives_still_walk_the_flat_region() {
        // A completely flat objective: every increment is a plateau, so the
        // tie-break must keep spending rather than stall at the base plan.
        let closure = marginal_budget_dp(&[2, 3], 13, |_| Ok(1.0)).unwrap();
        let separable = marginal_budget_dp_separable(&[2, 3], 13, |_, _| Ok(0.5)).unwrap();
        assert_eq!(closure.payments, separable.payments);
        assert_eq!(closure.extra_spent, separable.extra_spent);
        assert!(closure.extra_spent >= 12, "flat plateau must be walked");
    }
}

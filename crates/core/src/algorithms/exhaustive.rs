//! Exhaustive search over *per-repetition* budget allocations.
//!
//! The theorems of Section 4.2 (Lemmas 1–2, Theorem 1) claim that spreading
//! the budget evenly over every repetition of every identical task minimises
//! the expected latency. This module provides a brute-force optimiser over
//! the full discrete allocation space so the claims can be *checked* rather
//! than assumed: the test-suite and the ablation bench compare EA / RA
//! against the exhaustive optimum on small instances.
//!
//! The search space is the set of compositions of the budget into one
//! positive part per repetition slot, which grows combinatorially — callers
//! must keep `total repetition slots × budget` small (the constructor refuses
//! plainly unreasonable instances).

use crate::error::{CoreError, Result};
use crate::latency::{JobLatencyEstimator, PhaseSelection};
use crate::money::{Allocation, Payment};
use crate::problem::{HTuningProblem, LatencyTarget, TuningResult, TuningStrategy};

/// Upper bound on `slots × budget` beyond which the exhaustive search refuses
/// to run (the state space would be astronomically large).
const MAX_COMPLEXITY: u64 = 20_000;

/// Brute-force optimal allocation by full enumeration of per-repetition
/// payments, minimising the analytic expected latency of the selected phases.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveSearch {
    phases: PhaseSelection,
}

impl ExhaustiveSearch {
    /// Exhaustive search over the on-hold-only objective (the Scenario I/II
    /// latency target).
    pub fn on_hold_only() -> Self {
        ExhaustiveSearch {
            phases: PhaseSelection::OnHoldOnly,
        }
    }

    /// Exhaustive search over the both-phases objective.
    pub fn both_phases() -> Self {
        ExhaustiveSearch {
            phases: PhaseSelection::Both,
        }
    }

    fn enumerate(&self, problem: &HTuningProblem) -> Result<(Allocation, f64)> {
        let task_set = problem.task_set();
        let slots = task_set.total_repetitions();
        let budget = problem.budget().as_units();
        if slots * budget > MAX_COMPLEXITY {
            return Err(CoreError::invalid_argument(format!(
                "exhaustive search refused: {slots} slots × {budget} budget units is too large"
            )));
        }
        let reps = task_set.repetition_counts();
        let estimator = JobLatencyEstimator::new(task_set, problem.rate_model());

        // Depth-first enumeration over the flat list of repetition slots.
        let mut current = vec![1u64; slots as usize];
        let mut best: Option<(Vec<u64>, f64)> = None;
        let phases = self.phases;

        fn recurse(
            slot: usize,
            remaining_extra: u64,
            current: &mut Vec<u64>,
            reps: &[u32],
            estimator: &JobLatencyEstimator<'_, std::sync::Arc<dyn crate::rate::RateModel>>,
            phases: PhaseSelection,
            best: &mut Option<(Vec<u64>, f64)>,
        ) -> Result<()> {
            if slot == current.len() {
                let allocation = allocation_from_flat(current, reps);
                let latency = estimator.analytic_expected_latency(&allocation, phases)?;
                let better = best.as_ref().is_none_or(|(_, b)| latency < *b);
                if better {
                    *best = Some((current.clone(), latency));
                }
                return Ok(());
            }
            // The last slot absorbs whatever is left so we only enumerate the
            // split points; intermediate slots take 0..=remaining extra units.
            if slot + 1 == current.len() {
                current[slot] = 1 + remaining_extra;
                recurse(slot + 1, 0, current, reps, estimator, phases, best)?;
                current[slot] = 1;
                return Ok(());
            }
            for extra in 0..=remaining_extra {
                current[slot] = 1 + extra;
                recurse(
                    slot + 1,
                    remaining_extra - extra,
                    current,
                    reps,
                    estimator,
                    phases,
                    best,
                )?;
            }
            current[slot] = 1;
            Ok(())
        }

        let extra = budget - slots;
        recurse(0, extra, &mut current, &reps, &estimator, phases, &mut best)?;
        let (flat, latency) = best.expect("at least the all-ones allocation is evaluated");
        Ok((allocation_from_flat(&flat, &reps), latency))
    }
}

/// Reassembles a flat per-slot payment vector into a ragged [`Allocation`].
fn allocation_from_flat(flat: &[u64], reps: &[u32]) -> Allocation {
    let mut allocation = Allocation::with_capacity(reps.len());
    let mut cursor = 0usize;
    for &r in reps {
        let slice = &flat[cursor..cursor + r as usize];
        cursor += r as usize;
        allocation.push_task(slice.iter().map(|&u| Payment::units(u)).collect());
    }
    allocation
}

impl TuningStrategy for ExhaustiveSearch {
    fn name(&self) -> &str {
        "exhaustive"
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        let (allocation, latency) = self.enumerate(problem)?;
        problem.check_feasible(&allocation)?;
        Ok(TuningResult::new(
            self.name(),
            allocation,
            Some(latency),
            match self.phases {
                PhaseSelection::OnHoldOnly => LatencyTarget::ExpectedMaxOnHold,
                PhaseSelection::Both => LatencyTarget::ExpectedMaxOnHold,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::even_allocation::EvenAllocation;
    use crate::money::Budget;
    use crate::rate::LinearRate;
    use crate::task::TaskSet;
    use std::sync::Arc;

    fn problem(tasks: usize, reps: u32, budget: u64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::new(1.0, 0.0).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn refuses_oversized_instances() {
        let big = problem(10, 5, 5_000);
        assert!(ExhaustiveSearch::on_hold_only().tune(&big).is_err());
    }

    #[test]
    fn lemma_1_two_single_round_tasks_even_split_is_optimal() {
        // Lemma 1: two identical single-round tasks, budget 6 -> 3/3 is best.
        let problem = problem(2, 1, 6);
        let result = ExhaustiveSearch::on_hold_only().tune(&problem).unwrap();
        let payments: Vec<u64> = result
            .allocation
            .iter()
            .map(|(_, _, p)| p.as_units())
            .collect();
        assert_eq!(payments, vec![3, 3]);
    }

    #[test]
    fn lemma_2_even_split_within_a_task_is_optimal() {
        // Lemma 2: one task with 3 repetitions, budget 9 -> 3/3/3.
        let problem = problem(1, 3, 9);
        let result = ExhaustiveSearch::on_hold_only().tune(&problem).unwrap();
        let payments: Vec<u64> = result
            .allocation
            .iter()
            .map(|(_, _, p)| p.as_units())
            .collect();
        assert_eq!(payments, vec![3, 3, 3]);
    }

    #[test]
    fn theorem_1_even_allocation_matches_exhaustive_optimum() {
        // Theorem 1: identical tasks with identical repetitions — EA equals
        // the exhaustive optimum (up to remainder symmetry).
        for budget in [8u64, 10, 12] {
            let problem = problem(2, 2, budget);
            let exhaustive = ExhaustiveSearch::on_hold_only().tune(&problem).unwrap();
            let ea = EvenAllocation::new().tune(&problem).unwrap();
            let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
            let ea_latency = estimator
                .analytic_expected_latency(&ea.allocation, PhaseSelection::OnHoldOnly)
                .unwrap();
            let best_latency = exhaustive.objective.unwrap();
            assert!(
                ea_latency <= best_latency * 1.0 + 1e-6,
                "budget {budget}: EA {ea_latency} vs exhaustive {best_latency}"
            );
        }
    }

    #[test]
    fn both_phase_variant_runs_and_is_feasible() {
        let problem = problem(2, 1, 5);
        let result = ExhaustiveSearch::both_phases().tune(&problem).unwrap();
        problem.check_feasible(&result.allocation).unwrap();
        assert_eq!(result.strategy, "exhaustive");
        assert!(result.objective.unwrap() > 0.0);
    }

    #[test]
    fn exhaustive_never_loses_to_any_heuristic() {
        let problem = problem(2, 2, 10);
        let exhaustive = ExhaustiveSearch::on_hold_only().tune(&problem).unwrap();
        let best = exhaustive.objective.unwrap();
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        // any hand-built feasible allocation must be no better
        let hand = Allocation::from_matrix(vec![
            vec![Payment::units(1), Payment::units(5)],
            vec![Payment::units(2), Payment::units(2)],
        ]);
        let hand_latency = estimator
            .analytic_expected_latency(&hand, PhaseSelection::OnHoldOnly)
            .unwrap();
        assert!(best <= hand_latency + 1e-9);
    }
}

//! Budget-allocation strategies: the paper's optimal algorithms (EA, RA, HA),
//! the comparison baselines of Section 5, and the shared dynamic-programming
//! machinery.
//!
//! | strategy | paper reference | scenario |
//! |---|---|---|
//! | [`EvenAllocation`] | Algorithm 1 (EA) | I — Homogeneity |
//! | [`RepetitionAlgorithm`] | Algorithm 2 (RA) | II — Repetition |
//! | [`HeterogeneousAlgorithm`] | Algorithm 3 (HA) | III — Heterogeneous |
//! | [`BiasedAllocation`] | `bias_1` / `bias_2` baselines | I |
//! | [`TaskEvenAllocation`] | `task-even` (`te`) baseline | II, III |
//! | [`RepetitionEvenAllocation`] | `rep-even` (`re`) baseline | II, III |
//! | [`UniformPerGroupAllocation`] | Figure 5(c) heuristic | III |
//!
//! All strategies implement [`TuningStrategy`] and can therefore be swapped
//! freely in the experiment harness.

pub mod baselines;
pub mod common;
pub mod dp;
pub mod even_allocation;
pub mod exhaustive;
pub mod heterogeneous;
pub mod repetition;

pub use baselines::{
    BiasedAllocation, RepetitionEvenAllocation, TaskEvenAllocation, UniformPerGroupAllocation,
};
pub use common::{
    allocation_from_group_payments, spread_evenly, GroupLatencyCache, LatencyTableStore,
    SharedLatencyTable, MAX_TABLE_PAYMENT,
};
#[cfg(feature = "parallel")]
pub use dp::PARALLEL_SCAN_MIN_CANDIDATES;
pub use dp::{
    exhaustive_group_search, marginal_budget_dp, marginal_budget_dp_separable, DpOutcome, DpTable,
    DpTableSnapshot,
};
pub use even_allocation::EvenAllocation;
pub use exhaustive::ExhaustiveSearch;
pub use heterogeneous::{ClosenessNorm, CompromiseReport, HeterogeneousAlgorithm};
pub use repetition::RepetitionAlgorithm;

use crate::problem::{HTuningProblem, Scenario, TuningStrategy};

/// Picks the paper's optimal strategy for the problem's scenario: EA for
/// Scenario I, RA for Scenario II, HA for Scenario III.
pub fn optimal_strategy_for(problem: &HTuningProblem) -> Box<dyn TuningStrategy> {
    match problem.scenario() {
        Scenario::Homogeneous => Box::new(EvenAllocation::new()),
        Scenario::Repetition => Box::new(RepetitionAlgorithm::new()),
        Scenario::Heterogeneous => Box::new(HeterogeneousAlgorithm::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Budget;
    use crate::rate::LinearRate;
    use crate::task::TaskSet;
    use std::sync::Arc;

    #[test]
    fn optimal_strategy_dispatches_on_scenario() {
        let model = Arc::new(LinearRate::unit_slope());

        let mut homo = TaskSet::new();
        let ty = homo.add_type("t", 1.0).unwrap();
        homo.add_tasks(ty, 2, 3).unwrap();
        let problem = HTuningProblem::new(homo, Budget::units(30), model.clone()).unwrap();
        assert_eq!(optimal_strategy_for(&problem).name(), "EA");

        let mut repe = TaskSet::new();
        let ty = repe.add_type("t", 1.0).unwrap();
        repe.add_tasks(ty, 2, 2).unwrap();
        repe.add_tasks(ty, 4, 2).unwrap();
        let problem = HTuningProblem::new(repe, Budget::units(40), model.clone()).unwrap();
        assert_eq!(optimal_strategy_for(&problem).name(), "RA");

        let mut heter = TaskSet::new();
        let a = heter.add_type("a", 1.0).unwrap();
        let b = heter.add_type("b", 2.0).unwrap();
        heter.add_tasks(a, 2, 2).unwrap();
        heter.add_tasks(b, 4, 2).unwrap();
        let problem = HTuningProblem::new(heter, Budget::units(40), model).unwrap();
        assert_eq!(optimal_strategy_for(&problem).name(), "HA");
    }

    #[test]
    fn dispatched_strategies_produce_feasible_allocations() {
        let model = Arc::new(LinearRate::moderate());
        let mut set = TaskSet::new();
        let a = set.add_type("a", 1.0).unwrap();
        let b = set.add_type("b", 2.0).unwrap();
        set.add_tasks(a, 3, 2).unwrap();
        set.add_tasks(b, 5, 2).unwrap();
        let problem = HTuningProblem::new(set, Budget::units(100), model).unwrap();
        let strategy = optimal_strategy_for(&problem);
        let result = strategy.tune(&problem).unwrap();
        problem.check_feasible(&result.allocation).unwrap();
    }
}

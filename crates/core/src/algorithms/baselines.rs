//! Baseline allocation strategies used as comparison points in Section 5.
//!
//! * [`BiasedAllocation`] — the `bias_1` / `bias_2` baselines of the
//!   Scenario I experiments: a randomly chosen half of the tasks (the "prior
//!   group") receives a fraction `α > 1/2` of the budget, the rest receives
//!   `1 − α`.
//! * [`TaskEvenAllocation`] — the `task-even` (`te`) baseline: every task
//!   receives the same total payment, split evenly over its repetitions.
//! * [`RepetitionEvenAllocation`] — the `rep-even` (`re`) baseline: every
//!   repetition of every task receives the same payment.
//! * [`UniformPerGroupAllocation`] — the heuristic of Figure 5(c): each task
//!   type/group receives the same total payment.

use crate::algorithms::common::spread_evenly;
use crate::error::{CoreError, Result};
use crate::money::{Allocation, Payment};
use crate::problem::{HTuningProblem, LatencyTarget, TuningResult, TuningStrategy};
use crate::task::TaskSet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `budget` units over tasks so that each task in `selected` receives
/// a share of `favoured_total` and the rest a share of `budget −
/// favoured_total`, every repetition getting at least one unit. Shares are
/// then spread evenly over the repetitions of each side.
fn build_two_tier_allocation(
    task_set: &TaskSet,
    budget: u64,
    favoured: &[usize],
    favoured_total: u64,
) -> Result<Allocation> {
    let favoured_slots: u64 = favoured
        .iter()
        .map(|&i| u64::from(task_set.tasks()[i].repetitions))
        .sum();
    let total_slots = task_set.total_repetitions();
    let other_slots = total_slots - favoured_slots;

    // Clamp the favoured share so both sides can pay one unit per slot.
    let favoured_total = favoured_total
        .max(favoured_slots)
        .min(budget.saturating_sub(other_slots));
    let other_total = budget - favoured_total;
    if favoured_total < favoured_slots || other_total < other_slots {
        return Err(CoreError::InsufficientBudget {
            provided: budget,
            required: total_slots,
        });
    }

    let favoured_spread = spread_evenly(favoured_total, favoured_slots as usize)?;
    let other_spread = spread_evenly(other_total, other_slots as usize)?;
    let favoured_set: std::collections::BTreeSet<usize> = favoured.iter().copied().collect();

    let mut allocation = Allocation::with_capacity(task_set.len());
    let mut favoured_cursor = 0usize;
    let mut other_cursor = 0usize;
    for (index, task) in task_set.tasks().iter().enumerate() {
        let reps = task.repetitions as usize;
        let payments = if favoured_set.contains(&index) {
            let slice = &favoured_spread[favoured_cursor..favoured_cursor + reps];
            favoured_cursor += reps;
            slice.iter().map(|&u| Payment::units(u)).collect()
        } else {
            let slice = &other_spread[other_cursor..other_cursor + reps];
            other_cursor += reps;
            slice.iter().map(|&u| Payment::units(u)).collect()
        };
        allocation.push_task(payments);
    }
    Ok(allocation)
}

/// The biased baseline of the Scenario I experiments: half of the tasks take
/// `α` of the budget, the other half `1 − α`. `α = 1/2` degenerates to the
/// even allocation.
#[derive(Debug, Clone, Copy)]
pub struct BiasedAllocation {
    alpha: f64,
    seed: Option<u64>,
}

impl BiasedAllocation {
    /// Creates a biased baseline with the given `α ∈ [1/2, 1)`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !(0.5..1.0).contains(&alpha) {
            return Err(CoreError::invalid_argument(format!(
                "alpha must be in [0.5, 1.0), got {alpha}"
            )));
        }
        Ok(BiasedAllocation { alpha, seed: None })
    }

    /// The paper's `bias_1` setting (`α = 0.67`).
    pub fn bias_1() -> Self {
        BiasedAllocation {
            alpha: 0.67,
            seed: None,
        }
    }

    /// The paper's `bias_2` setting (`α = 0.75`).
    pub fn bias_2() -> Self {
        BiasedAllocation {
            alpha: 0.75,
            seed: None,
        }
    }

    /// Selects the prior group at random with the given seed instead of
    /// taking the first half of the tasks.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The bias fraction.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl TuningStrategy for BiasedAllocation {
    fn name(&self) -> &str {
        if (self.alpha - 0.67).abs() < 1e-9 {
            "bias_1"
        } else if (self.alpha - 0.75).abs() < 1e-9 {
            "bias_2"
        } else {
            "bias"
        }
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        let task_set = problem.task_set();
        let n = task_set.len();
        let mut order: Vec<usize> = (0..n).collect();
        if let Some(seed) = self.seed {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        let favoured: Vec<usize> = order.into_iter().take(n / 2).collect();
        let budget = problem.budget().as_units();
        let favoured_total = (budget as f64 * self.alpha).floor() as u64;
        let allocation = build_two_tier_allocation(task_set, budget, &favoured, favoured_total)?;
        problem.check_feasible(&allocation)?;
        Ok(TuningResult::new(
            self.name(),
            allocation,
            None,
            LatencyTarget::ExpectedMaxOnHold,
        ))
    }
}

/// The `task-even` baseline: every task gets the same total payment, split
/// evenly over its repetitions.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskEvenAllocation;

impl TaskEvenAllocation {
    /// Creates the strategy.
    pub fn new() -> Self {
        TaskEvenAllocation
    }
}

impl TuningStrategy for TaskEvenAllocation {
    fn name(&self) -> &str {
        "task_even"
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        let task_set = problem.task_set();
        let budget = problem.budget().as_units();
        let n = task_set.len();
        // Each task's total share, as even as possible.
        let per_task_totals = spread_evenly(budget, n)?;
        let mut allocation = Allocation::with_capacity(n);
        for (task, &total) in task_set.tasks().iter().zip(&per_task_totals) {
            let reps = task.repetitions as usize;
            // A task's share may be smaller than its repetition count when
            // repetitions are very uneven; clamp to one unit per repetition.
            let total = total.max(reps as u64);
            let spread = spread_evenly(total, reps)?;
            allocation.push_task(spread.into_iter().map(Payment::units).collect());
        }
        // Clamping may have pushed the total over budget for extreme inputs;
        // reject rather than silently overspend.
        problem.check_feasible(&allocation)?;
        Ok(TuningResult::new(
            self.name(),
            allocation,
            None,
            LatencyTarget::ExpectedMaxOnHold,
        ))
    }
}

/// The `rep-even` baseline: every repetition of every task receives the same
/// payment.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepetitionEvenAllocation;

impl RepetitionEvenAllocation {
    /// Creates the strategy.
    pub fn new() -> Self {
        RepetitionEvenAllocation
    }
}

impl TuningStrategy for RepetitionEvenAllocation {
    fn name(&self) -> &str {
        "rep_even"
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        let task_set = problem.task_set();
        let budget = problem.budget().as_units();
        let slots = task_set.total_repetitions() as usize;
        let spread = spread_evenly(budget, slots)?;
        let mut allocation = Allocation::with_capacity(task_set.len());
        let mut cursor = 0usize;
        for task in task_set.tasks() {
            let reps = task.repetitions as usize;
            let payments = spread[cursor..cursor + reps]
                .iter()
                .map(|&u| Payment::units(u))
                .collect();
            cursor += reps;
            allocation.push_task(payments);
        }
        problem.check_feasible(&allocation)?;
        Ok(TuningResult::new(
            self.name(),
            allocation,
            None,
            LatencyTarget::ExpectedMaxOnHold,
        ))
    }
}

/// The heuristic of Figure 5(c): every task group (type × repetitions)
/// receives the same total payment, spread evenly inside the group.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPerGroupAllocation;

impl UniformPerGroupAllocation {
    /// Creates the strategy.
    pub fn new() -> Self {
        UniformPerGroupAllocation
    }
}

impl TuningStrategy for UniformPerGroupAllocation {
    fn name(&self) -> &str {
        "uniform_per_group"
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        let task_set = problem.task_set();
        let groups = task_set.group_by_type_and_repetitions();
        let budget = problem.budget().as_units();
        let group_totals = spread_evenly(budget, groups.len())?;

        // Payment per repetition for every member of each group.
        let mut per_task_payment: Vec<Option<Vec<u64>>> = vec![None; task_set.len()];
        for (group, &total) in groups.iter().zip(&group_totals) {
            let slots = group.unit_increment_cost() as usize;
            let total = total.max(slots as u64);
            let spread = spread_evenly(total, slots)?;
            let mut cursor = 0usize;
            for member in &group.members {
                let task = &task_set.tasks()[member.0 as usize];
                let reps = task.repetitions as usize;
                per_task_payment[member.0 as usize] = Some(spread[cursor..cursor + reps].to_vec());
                cursor += reps;
            }
        }
        let mut allocation = Allocation::with_capacity(task_set.len());
        for payments in per_task_payment {
            let payments = payments
                .ok_or_else(|| CoreError::invalid_argument("task not covered by any group"))?;
            allocation.push_task(payments.into_iter().map(Payment::units).collect());
        }
        problem.check_feasible(&allocation)?;
        Ok(TuningResult::new(
            self.name(),
            allocation,
            None,
            LatencyTarget::ExpectedMaxOnHold,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Budget;
    use crate::rate::LinearRate;
    use std::sync::Arc;

    fn homogeneous_problem(tasks: usize, reps: u32, budget: u64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap()
    }

    fn mixed_problem(budget: u64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let easy = set.add_type("easy", 3.0).unwrap();
        let hard = set.add_type("hard", 1.0).unwrap();
        set.add_tasks(easy, 3, 2).unwrap();
        set.add_tasks(hard, 5, 2).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap()
    }

    #[test]
    fn biased_allocation_validates_alpha() {
        assert!(BiasedAllocation::new(0.4).is_err());
        assert!(BiasedAllocation::new(1.0).is_err());
        assert!(BiasedAllocation::new(0.6).is_ok());
        assert!((BiasedAllocation::bias_1().alpha() - 0.67).abs() < 1e-12);
        assert!((BiasedAllocation::bias_2().alpha() - 0.75).abs() < 1e-12);
        assert_eq!(BiasedAllocation::bias_1().name(), "bias_1");
        assert_eq!(BiasedAllocation::bias_2().name(), "bias_2");
        assert_eq!(BiasedAllocation::new(0.6).unwrap().name(), "bias");
    }

    #[test]
    fn biased_allocation_favours_half_the_tasks() {
        let problem = homogeneous_problem(4, 5, 400);
        let result = BiasedAllocation::bias_1().tune(&problem).unwrap();
        let alloc = &result.allocation;
        problem.check_feasible(alloc).unwrap();
        // first half favoured (deterministic selection): their totals exceed
        // the other half's.
        let favoured: u64 = (0..2).map(|i| alloc.task_total(i).as_units()).sum();
        let rest: u64 = (2..4).map(|i| alloc.task_total(i).as_units()).sum();
        assert!(favoured > rest);
        // roughly alpha of the budget
        let fraction = favoured as f64 / 400.0;
        assert!((fraction - 0.67).abs() < 0.05, "fraction {fraction}");
    }

    #[test]
    fn biased_allocation_is_feasible_even_for_tight_budgets() {
        // Minimum budget: everyone must still get one unit per repetition.
        let problem = homogeneous_problem(4, 5, 21);
        let result = BiasedAllocation::bias_2().tune(&problem).unwrap();
        problem.check_feasible(&result.allocation).unwrap();
        assert!(result.allocation.all_positive());
    }

    #[test]
    fn biased_allocation_seeded_selection_is_feasible() {
        let problem = homogeneous_problem(6, 3, 200);
        let result = BiasedAllocation::bias_1()
            .with_seed(3)
            .tune(&problem)
            .unwrap();
        problem.check_feasible(&result.allocation).unwrap();
    }

    #[test]
    fn task_even_gives_equal_totals_per_task() {
        let problem = mixed_problem(120);
        let result = TaskEvenAllocation::new().tune(&problem).unwrap();
        let alloc = &result.allocation;
        problem.check_feasible(alloc).unwrap();
        let totals: Vec<u64> = (0..4).map(|i| alloc.task_total(i).as_units()).collect();
        let min = totals.iter().min().unwrap();
        let max = totals.iter().max().unwrap();
        assert!(max - min <= 1, "task totals {totals:?} should be equal");
    }

    #[test]
    fn rep_even_gives_equal_per_repetition_payment() {
        let problem = mixed_problem(160);
        let result = RepetitionEvenAllocation::new().tune(&problem).unwrap();
        let alloc = &result.allocation;
        problem.check_feasible(alloc).unwrap();
        let payments: Vec<u64> = alloc.iter().map(|(_, _, p)| p.as_units()).collect();
        let min = payments.iter().min().unwrap();
        let max = payments.iter().max().unwrap();
        assert!(max - min <= 1, "payments {payments:?} should be equal");
    }

    #[test]
    fn task_even_and_rep_even_differ_for_unequal_repetitions() {
        // With 3-rep and 5-rep tasks, task-even under-pays repetitions of the
        // 5-rep tasks relative to rep-even (the 60% relationship described in
        // Section 5.1.1).
        let problem = mixed_problem(1600);
        let te = TaskEvenAllocation::new().tune(&problem).unwrap();
        let re = RepetitionEvenAllocation::new().tune(&problem).unwrap();
        let te_rep5 = te.allocation.task_payments(2)[0].as_units();
        let te_rep3 = te.allocation.task_payments(0)[0].as_units();
        assert!(te_rep5 < te_rep3);
        let ratio = te_rep5 as f64 / te_rep3 as f64;
        assert!((ratio - 0.6).abs() < 0.05, "ratio {ratio} should be ~0.6");
        let re_rep5 = re.allocation.task_payments(2)[0].as_units();
        let re_rep3 = re.allocation.task_payments(0)[0].as_units();
        assert!((re_rep5 as i64 - re_rep3 as i64).abs() <= 1);
    }

    #[test]
    fn uniform_per_group_gives_each_group_the_same_total() {
        let problem = mixed_problem(320);
        let result = UniformPerGroupAllocation::new().tune(&problem).unwrap();
        let alloc = &result.allocation;
        problem.check_feasible(alloc).unwrap();
        let group0_total: u64 = (0..2).map(|i| alloc.task_total(i).as_units()).sum();
        let group1_total: u64 = (2..4).map(|i| alloc.task_total(i).as_units()).sum();
        assert!(
            (group0_total as i64 - group1_total as i64).abs() <= 1,
            "group totals {group0_total} vs {group1_total}"
        );
    }

    #[test]
    fn baselines_never_exceed_budget() {
        let budgets = [21u64, 50, 99, 400];
        for &b in &budgets {
            let problem = homogeneous_problem(3, 7, b);
            for strategy in [
                Box::new(BiasedAllocation::bias_1()) as Box<dyn TuningStrategy>,
                Box::new(TaskEvenAllocation::new()),
                Box::new(RepetitionEvenAllocation::new()),
                Box::new(UniformPerGroupAllocation::new()),
            ] {
                let result = strategy.tune(&problem).unwrap();
                assert!(
                    result.allocation.total_spent() <= b,
                    "{} overspent at budget {b}",
                    strategy.name()
                );
                assert!(result.allocation.all_positive());
            }
        }
    }
}

//! Shared helpers for the tuning algorithms: even spreading of units over
//! slots, conversion of per-group payments into full [`Allocation`]s and a
//! memoizing cache for expected group latencies.

use crate::error::{CoreError, Result};
use crate::latency::group_phase1_expected;
use crate::money::{Allocation, Payment};
use crate::rate::RateModel;
use crate::task::{TaskGroup, TaskSet};

/// Cap on the per-repetition payments the latency tables are pre-sized (and,
/// under the `parallel` feature, pre-computed) for. Payments beyond the cap
/// still work — the cache falls back to lazy evaluation — the cap only bounds
/// up-front memory and precompute fan-out. Shared by RA, HA and
/// [`GroupLatencyCache::precompute`] so the sizing hint and the parallel fill
/// can never drift apart.
pub const MAX_TABLE_PAYMENT: u64 = 4096;

/// Distributes `total` indivisible units over `slots` slots as evenly as
/// possible: every slot gets `total / slots`, and the first `total % slots`
/// slots get one extra unit. Requires `total >= slots` so every slot receives
/// at least one unit.
pub fn spread_evenly(total: u64, slots: usize) -> Result<Vec<u64>> {
    if slots == 0 {
        return Err(CoreError::invalid_argument(
            "cannot spread a budget over zero slots".to_owned(),
        ));
    }
    let slots_u = slots as u64;
    if total < slots_u {
        return Err(CoreError::InsufficientBudget {
            provided: total,
            required: slots_u,
        });
    }
    let base = total / slots_u;
    let remainder = (total % slots_u) as usize;
    let mut out = vec![base; slots];
    for slot in out.iter_mut().take(remainder) {
        *slot += 1;
    }
    Ok(out)
}

/// Builds a full allocation from a per-group, per-repetition payment: every
/// repetition of every member task of group `i` receives
/// `per_repetition[i]` units. Tasks not covered by any group are rejected.
pub fn allocation_from_group_payments(
    task_set: &TaskSet,
    groups: &[TaskGroup],
    per_repetition: &[u64],
) -> Result<Allocation> {
    if groups.len() != per_repetition.len() {
        return Err(CoreError::invalid_argument(format!(
            "{} groups but {} payments",
            groups.len(),
            per_repetition.len()
        )));
    }
    // Map task id -> payment units per repetition.
    let mut per_task: Vec<Option<u64>> = vec![None; task_set.len()];
    for (group, &units) in groups.iter().zip(per_repetition) {
        if units == 0 {
            return Err(CoreError::invalid_argument(
                "per-repetition payment must be at least one unit".to_owned(),
            ));
        }
        for member in &group.members {
            let idx = member.0 as usize;
            if idx >= per_task.len() {
                return Err(CoreError::invalid_argument(format!(
                    "group references unknown task {member}"
                )));
            }
            per_task[idx] = Some(units);
        }
    }
    let mut allocation = Allocation::with_capacity(task_set.len());
    for (idx, task) in task_set.tasks().iter().enumerate() {
        let units = per_task[idx].ok_or_else(|| {
            CoreError::invalid_argument(format!("task {idx} is not covered by any group"))
        })?;
        allocation.push_task(vec![Payment::units(units); task.repetitions as usize]);
    }
    Ok(allocation)
}

/// Memoizing evaluator of expected phase-1 group latencies
/// `E_i(p) = E[max over n_i of Erlang(k_i, λo(p))]`.
///
/// The dynamic programs of Algorithms 2 and 3 evaluate the same
/// `(group, payment)` pairs many times; each evaluation involves numerical
/// integration, so memoization matters.
pub struct GroupLatencyCache<'a, M: RateModel + ?Sized> {
    rate_model: &'a M,
    groups: &'a [TaskGroup],
    /// cache[group][payment] — payment index 0 is unused (payments start at 1).
    cache: Vec<Vec<Option<f64>>>,
}

impl<'a, M: RateModel + ?Sized> GroupLatencyCache<'a, M> {
    /// Creates a cache for the given groups, pre-sizing each group's table to
    /// `max_payment + 1` entries.
    pub fn new(rate_model: &'a M, groups: &'a [TaskGroup], max_payment: u64) -> Self {
        let cache = groups
            .iter()
            .map(|_| vec![None; (max_payment + 2) as usize])
            .collect();
        GroupLatencyCache {
            rate_model,
            groups,
            cache,
        }
    }

    /// Expected phase-1 latency of group `group_index` at per-repetition
    /// payment `payment` units.
    pub fn phase1(&mut self, group_index: usize, payment: u64) -> Result<f64> {
        if group_index >= self.groups.len() {
            return Err(CoreError::invalid_argument(format!(
                "group index {group_index} out of range"
            )));
        }
        let table = &mut self.cache[group_index];
        if (payment as usize) < table.len() {
            if let Some(value) = table[payment as usize] {
                return Ok(value);
            }
        } else {
            table.resize(payment as usize + 1, None);
        }
        let group = &self.groups[group_index];
        let rate = self.rate_model.on_hold_rate(payment as f64);
        if !rate.is_finite() || rate <= 0.0 {
            return Err(CoreError::InvalidRate { payment, rate });
        }
        let value = group_phase1_expected(group.size() as u64, group.repetitions, rate)?;
        self.cache[group_index][payment as usize] = Some(value);
        Ok(value)
    }

    /// The groups this cache evaluates.
    pub fn groups(&self) -> &[TaskGroup] {
        self.groups
    }

    /// Bulk-fills the memo tables for every `(group, payment)` pair the
    /// marginal DP over `unit_costs` and `extra_budget` can reach, fanning
    /// the numerical integrations out over all available cores with scoped
    /// threads. The DP itself then runs against warm tables and does no
    /// integration on its critical path.
    ///
    /// Only available with the `parallel` feature; without it the cache fills
    /// lazily (and only for the pairs the DP actually visits).
    #[cfg(feature = "parallel")]
    pub fn precompute(&mut self, unit_costs: &[u64], extra_budget: u64) -> Result<()> {
        // Fanning out only pays when there are cores to fan out to: on a
        // single core the lazy path is strictly better (it integrates only
        // the pairs the DP actually visits), so bow out early.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if threads <= 1 {
            return Ok(());
        }
        // Payments are capped at the same bound the callers pre-size for, so
        // the table never balloons; anything beyond falls back to the lazy
        // path.
        let mut jobs: Vec<(usize, u64)> = Vec::new();
        for (index, &unit_cost) in unit_costs.iter().enumerate().take(self.groups.len()) {
            if unit_cost == 0 {
                return Err(CoreError::invalid_argument(
                    "group unit-increment costs must be positive".to_owned(),
                ));
            }
            let max_payment = (1 + extra_budget / unit_cost).min(MAX_TABLE_PAYMENT);
            let table = &mut self.cache[index];
            if (table.len() as u64) < max_payment + 1 {
                table.resize(max_payment as usize + 1, None);
            }
            for payment in 1..=max_payment {
                if table[payment as usize].is_none() {
                    jobs.push((index, payment));
                }
            }
        }
        if jobs.is_empty() {
            return Ok(());
        }

        let threads = threads.min(jobs.len());
        let chunk_size = jobs.len().div_ceil(threads);
        let rate_model = self.rate_model;
        let groups = self.groups;

        let computed: Result<Vec<Vec<(usize, u64, f64)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || -> Result<Vec<(usize, u64, f64)>> {
                        chunk
                            .iter()
                            .map(|&(index, payment)| {
                                let rate = rate_model.on_hold_rate(payment as f64);
                                if !rate.is_finite() || rate <= 0.0 {
                                    return Err(CoreError::InvalidRate { payment, rate });
                                }
                                let group = &groups[index];
                                let value = group_phase1_expected(
                                    group.size() as u64,
                                    group.repetitions,
                                    rate,
                                )?;
                                Ok((index, payment, value))
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("latency precompute thread panicked"))
                .collect()
        });

        for (index, payment, value) in computed?.into_iter().flatten() {
            self.cache[index][payment as usize] = Some(value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::LinearRate;
    use crate::task::TaskSet;

    fn two_group_set() -> (TaskSet, Vec<TaskGroup>) {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 2).unwrap();
        set.add_tasks(ty, 5, 3).unwrap();
        let groups = set.group_by_repetitions();
        (set, groups)
    }

    #[test]
    fn spread_evenly_divides_with_remainder() {
        assert_eq!(spread_evenly(10, 5).unwrap(), vec![2, 2, 2, 2, 2]);
        assert_eq!(spread_evenly(11, 5).unwrap(), vec![3, 2, 2, 2, 2]);
        assert_eq!(spread_evenly(14, 5).unwrap(), vec![3, 3, 3, 3, 2]);
        assert_eq!(spread_evenly(5, 5).unwrap(), vec![1; 5]);
    }

    #[test]
    fn spread_evenly_rejects_invalid_input() {
        assert!(spread_evenly(3, 0).is_err());
        assert!(matches!(
            spread_evenly(3, 5).unwrap_err(),
            CoreError::InsufficientBudget {
                provided: 3,
                required: 5
            }
        ));
    }

    #[test]
    fn spread_evenly_total_is_preserved() {
        for total in 7..40u64 {
            for slots in 1..=7usize {
                if total >= slots as u64 {
                    let spread = spread_evenly(total, slots).unwrap();
                    assert_eq!(spread.iter().sum::<u64>(), total);
                    let max = spread.iter().max().unwrap();
                    let min = spread.iter().min().unwrap();
                    assert!(max - min <= 1, "spread must be balanced");
                }
            }
        }
    }

    #[test]
    fn allocation_from_group_payments_builds_full_allocation() {
        let (set, groups) = two_group_set();
        let alloc = allocation_from_group_payments(&set, &groups, &[2, 4]).unwrap();
        assert_eq!(alloc.task_count(), 5);
        // 3-repetition group members get 2 units per repetition
        assert_eq!(alloc.task_total(0), Payment::units(6));
        assert_eq!(alloc.task_total(1), Payment::units(6));
        // 5-repetition group members get 4 units per repetition
        assert_eq!(alloc.task_total(2), Payment::units(20));
        assert_eq!(alloc.total_spent(), 2 * 6 + 3 * 20);
    }

    #[test]
    fn allocation_from_group_payments_validates() {
        let (set, groups) = two_group_set();
        assert!(allocation_from_group_payments(&set, &groups, &[2]).is_err());
        assert!(allocation_from_group_payments(&set, &groups, &[0, 2]).is_err());
        // groups that do not cover every task are rejected
        let partial = vec![groups[0].clone()];
        assert!(allocation_from_group_payments(&set, &partial, &[2]).is_err());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_precompute_matches_lazy_evaluation() {
        let (_, groups) = two_group_set();
        let model = LinearRate::moderate();
        let unit_costs: Vec<u64> = groups.iter().map(|g| g.unit_increment_cost()).collect();
        let extra_budget = 200u64;

        let mut warm = GroupLatencyCache::new(&model, &groups, 16);
        warm.precompute(&unit_costs, extra_budget).unwrap();
        let mut lazy = GroupLatencyCache::new(&model, &groups, 16);

        for (index, &unit_cost) in unit_costs.iter().enumerate() {
            for payment in 1..=(1 + extra_budget / unit_cost) {
                let expected = lazy.phase1(index, payment).unwrap();
                let cached = warm.phase1(index, payment).unwrap();
                assert!(
                    cached.to_bits() == expected.to_bits(),
                    "group {index} payment {payment}: {cached} != {expected}"
                );
            }
        }
    }

    #[test]
    fn group_latency_cache_is_consistent_and_monotone() {
        let (_, groups) = two_group_set();
        let model = LinearRate::unit_slope();
        let mut cache = GroupLatencyCache::new(&model, &groups, 10);
        let a1 = cache.phase1(0, 2).unwrap();
        let a2 = cache.phase1(0, 2).unwrap();
        assert_eq!(a1, a2, "memoized value must be identical");
        let cheap = cache.phase1(1, 1).unwrap();
        let rich = cache.phase1(1, 9).unwrap();
        assert!(rich < cheap, "higher payment must not increase latency");
        assert!(cache.phase1(5, 1).is_err());
        assert_eq!(cache.groups().len(), 2);
        // payments beyond the pre-sized table still work
        let beyond = cache.phase1(0, 50).unwrap();
        assert!(beyond > 0.0);
    }
}

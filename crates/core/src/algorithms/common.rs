//! Shared helpers for the tuning algorithms: even spreading of units over
//! slots, conversion of per-group payments into full [`Allocation`]s and a
//! memoizing cache for expected group latencies whose tables are interned
//! **process-wide** — concurrent tuner workers and distinct jobs over the
//! same rate curve and group shape fill each `(group, payment)` entry at
//! most once ([`LatencyTableStore`]).

use crate::error::{CoreError, Result};
use crate::latency::group_phase1_expected;
use crate::money::{Allocation, Payment};
use crate::rate::RateModel;
use crate::task::{TaskGroup, TaskSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cap on the per-repetition payments the latency tables are pre-sized (and,
/// under the `parallel` feature, pre-computed) for. Payments beyond the cap
/// still work — the cache falls back to lazy evaluation — the cap only bounds
/// up-front memory and precompute fan-out. Shared by RA, HA and
/// `GroupLatencyCache::precompute` (a `parallel`-feature item) so the sizing
/// hint and the parallel fill can never drift apart.
pub const MAX_TABLE_PAYMENT: u64 = 4096;

/// Distributes `total` indivisible units over `slots` slots as evenly as
/// possible: every slot gets `total / slots`, and the first `total % slots`
/// slots get one extra unit. Requires `total >= slots` so every slot receives
/// at least one unit.
pub fn spread_evenly(total: u64, slots: usize) -> Result<Vec<u64>> {
    if slots == 0 {
        return Err(CoreError::invalid_argument(
            "cannot spread a budget over zero slots".to_owned(),
        ));
    }
    let slots_u = slots as u64;
    if total < slots_u {
        return Err(CoreError::InsufficientBudget {
            provided: total,
            required: slots_u,
        });
    }
    let base = total / slots_u;
    let remainder = (total % slots_u) as usize;
    let mut out = vec![base; slots];
    for slot in out.iter_mut().take(remainder) {
        *slot += 1;
    }
    Ok(out)
}

/// Builds a full allocation from a per-group, per-repetition payment: every
/// repetition of every member task of group `i` receives
/// `per_repetition[i]` units. Tasks not covered by any group are rejected.
pub fn allocation_from_group_payments(
    task_set: &TaskSet,
    groups: &[TaskGroup],
    per_repetition: &[u64],
) -> Result<Allocation> {
    if groups.len() != per_repetition.len() {
        return Err(CoreError::invalid_argument(format!(
            "{} groups but {} payments",
            groups.len(),
            per_repetition.len()
        )));
    }
    // Map task id -> payment units per repetition.
    let mut per_task: Vec<Option<u64>> = vec![None; task_set.len()];
    for (group, &units) in groups.iter().zip(per_repetition) {
        if units == 0 {
            return Err(CoreError::invalid_argument(
                "per-repetition payment must be at least one unit".to_owned(),
            ));
        }
        for member in &group.members {
            let idx = member.0 as usize;
            if idx >= per_task.len() {
                return Err(CoreError::invalid_argument(format!(
                    "group references unknown task {member}"
                )));
            }
            per_task[idx] = Some(units);
        }
    }
    let mut allocation = Allocation::with_capacity(task_set.len());
    for (idx, task) in task_set.tasks().iter().enumerate() {
        let units = per_task[idx].ok_or_else(|| {
            CoreError::invalid_argument(format!("task {idx} is not covered by any group"))
        })?;
        allocation.push_task(vec![Payment::units(units); task.repetitions as usize]);
    }
    Ok(allocation)
}

/// Bound on the number of interned latency tables the process keeps alive at
/// once (≈32 KiB each). When the store is full, tables no longer referenced
/// by any live cache are dropped first; if every table is in use, new keys
/// are served un-interned (still correct, just not shared).
const MAX_INTERNED_TABLES: usize = 1024;

/// One shared marginal latency table: `E_i(p)` for payments
/// `0..=MAX_TABLE_PAYMENT` of one `(rate curve, group shape)` pair.
///
/// Entries are lock-free `AtomicU64`s holding the `f64` bit pattern; the
/// all-zero pattern (+0.0, impossible for a strictly positive expected
/// latency) marks "not yet computed". Fills are idempotent: the value is a
/// deterministic function of the key, so concurrent writers racing on the
/// same entry store identical bits and readers can never observe a torn or
/// divergent value.
#[derive(Debug)]
pub struct SharedLatencyTable {
    values: Box<[AtomicU64]>,
}

impl SharedLatencyTable {
    fn new() -> Self {
        SharedLatencyTable {
            values: (0..=MAX_TABLE_PAYMENT).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The memoized value at `payment`, if already computed.
    fn get(&self, payment: u64) -> Option<f64> {
        let bits = self.values[payment as usize].load(Ordering::Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }

    fn store(&self, payment: u64, value: f64) {
        self.values[payment as usize].store(value.to_bits(), Ordering::Relaxed);
    }

    /// Number of entries already filled (used by tests and diagnostics).
    pub fn filled(&self) -> usize {
        self.values
            .iter()
            .filter(|v| v.load(Ordering::Relaxed) != 0)
            .count()
    }
}

/// Identity of a shared latency table: the rate curve (via
/// [`RateModel::curve_fingerprint`]) and the group shape. Two jobs with equal
/// keys compute bit-identical tables, so sharing is exact, not approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TableKey {
    curve: u64,
    group_size: u64,
    repetitions: u32,
}

/// An interned table plus the generation stamp of its most recent lookup.
#[derive(Debug)]
struct InternedTable {
    table: Arc<SharedLatencyTable>,
    /// Value of the store's generation counter at the last `intern` of this
    /// key — the recency signal the eviction policy ages entries by.
    last_used: u64,
}

/// The interner's lock-guarded state: the table map plus a monotone
/// generation counter bumped on every lookup.
#[derive(Debug, Default)]
struct StoreInner {
    tables: HashMap<TableKey, InternedTable>,
    generation: u64,
}

/// Process-wide interner of [`SharedLatencyTable`]s.
///
/// The expected-latency integrations behind `E_i(p)` dominate cold solves;
/// they depend only on `(rate curve, group size, repetitions, payment)` — not
/// on the job, tenant or budget — so distinct jobs over the same curves used
/// to redo identical quadratures. The store hands every
/// [`GroupLatencyCache`] an `Arc` to the one table for its key, letting the
/// whole fleet fill each entry at most once.
///
/// Eviction at capacity is generation-stamped: every `intern` refreshes the
/// entry's stamp, and when room is needed the *stalest* currently
/// unreferenced table goes first. (A plain "drop everything unreferenced"
/// sweep would evict the hottest tables in the fleet — caches are transient
/// per solve, so between solves even a table hit thousands of times per
/// second holds no outside reference.) If every table is referenced, the new
/// key is served un-interned: correct, merely unshared.
#[derive(Debug, Default)]
pub struct LatencyTableStore {
    inner: Mutex<StoreInner>,
}

impl LatencyTableStore {
    /// The process-wide store.
    pub fn global() -> &'static LatencyTableStore {
        static STORE: OnceLock<LatencyTableStore> = OnceLock::new();
        STORE.get_or_init(LatencyTableStore::default)
    }

    /// Number of tables currently interned.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("latency store poisoned")
            .tables
            .len()
    }

    /// Whether the store holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the shared table for `key`, creating it on first use. See the
    /// type docs for the eviction policy.
    fn intern(&self, key: TableKey) -> Arc<SharedLatencyTable> {
        self.intern_with_cap(key, MAX_INTERNED_TABLES)
    }

    /// [`LatencyTableStore::intern`] with an explicit capacity, so tests can
    /// exercise the eviction policy on a small private store.
    fn intern_with_cap(&self, key: TableKey, cap: usize) -> Arc<SharedLatencyTable> {
        let mut inner = self.inner.lock().expect("latency store poisoned");
        inner.generation += 1;
        let generation = inner.generation;
        if let Some(entry) = inner.tables.get_mut(&key) {
            entry.last_used = generation;
            return entry.table.clone();
        }
        while inner.tables.len() >= cap {
            // Oldest-stamp-first among unreferenced entries: hot tables that
            // merely happen to be unreferenced right now carry fresh stamps
            // and survive ahead of stale ones.
            let victim = inner
                .tables
                .iter()
                .filter(|(_, entry)| Arc::strong_count(&entry.table) == 1)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| *key);
            match victim {
                Some(stalest) => {
                    inner.tables.remove(&stalest);
                }
                None => break, // everything is in use; serve un-interned
            }
        }
        let table = Arc::new(SharedLatencyTable::new());
        if inner.tables.len() < cap {
            inner.tables.insert(
                key,
                InternedTable {
                    table: table.clone(),
                    last_used: generation,
                },
            );
        }
        table
    }
}

/// Memoizing evaluator of expected phase-1 group latencies
/// `E_i(p) = E[max over n_i of Erlang(k_i, λo(p))]`.
///
/// The dynamic programs of Algorithms 2 and 3 evaluate the same
/// `(group, payment)` pairs many times; each evaluation involves numerical
/// integration, so memoization matters. The memo tables for payments up to
/// [`MAX_TABLE_PAYMENT`] live in the process-wide [`LatencyTableStore`], so
/// the integrations are also shared *across* jobs and worker threads;
/// payments beyond the cap fall back to a private lazy map. All methods take
/// `&self` — the cache is `Sync` and can back concurrent DP scans directly.
pub struct GroupLatencyCache<'a, M: RateModel + ?Sized> {
    rate_model: &'a M,
    groups: &'a [TaskGroup],
    /// Interned shared table per group (payments `0..=MAX_TABLE_PAYMENT`).
    tables: Vec<Arc<SharedLatencyTable>>,
    /// Private lazy spill for payments above the cap, one map per group.
    overflow: Vec<Mutex<HashMap<u64, f64>>>,
}

impl<'a, M: RateModel + ?Sized> GroupLatencyCache<'a, M> {
    /// Creates a cache for the given groups, attaching each group to the
    /// process-wide shared table for `(rate curve, group shape)`.
    pub fn new(rate_model: &'a M, groups: &'a [TaskGroup]) -> Self {
        let curve = rate_model.curve_fingerprint();
        let store = LatencyTableStore::global();
        let tables = groups
            .iter()
            .map(|group| {
                store.intern(TableKey {
                    curve,
                    group_size: group.size() as u64,
                    repetitions: group.repetitions,
                })
            })
            .collect();
        let overflow = groups.iter().map(|_| Mutex::new(HashMap::new())).collect();
        GroupLatencyCache {
            rate_model,
            groups,
            tables,
            overflow,
        }
    }

    /// The integration behind one table entry.
    fn compute(&self, group_index: usize, payment: u64) -> Result<f64> {
        let rate = self.rate_model.on_hold_rate(payment as f64);
        if !rate.is_finite() || rate <= 0.0 {
            return Err(CoreError::InvalidRate { payment, rate });
        }
        let group = &self.groups[group_index];
        group_phase1_expected(group.size() as u64, group.repetitions, rate)
    }

    /// Expected phase-1 latency of group `group_index` at per-repetition
    /// payment `payment` units.
    pub fn phase1(&self, group_index: usize, payment: u64) -> Result<f64> {
        if group_index >= self.groups.len() {
            return Err(CoreError::invalid_argument(format!(
                "group index {group_index} out of range"
            )));
        }
        if payment <= MAX_TABLE_PAYMENT {
            let table = &self.tables[group_index];
            if let Some(value) = table.get(payment) {
                return Ok(value);
            }
            let value = self.compute(group_index, payment)?;
            table.store(payment, value);
            return Ok(value);
        }
        // Above the cap: private lazy spill, never interned.
        let mut spill = self.overflow[group_index]
            .lock()
            .expect("latency overflow map poisoned");
        if let Some(&value) = spill.get(&payment) {
            return Ok(value);
        }
        let value = self.compute(group_index, payment)?;
        spill.insert(payment, value);
        Ok(value)
    }

    /// The groups this cache evaluates.
    pub fn groups(&self) -> &[TaskGroup] {
        self.groups
    }

    /// Bulk-fills the memo tables for every `(group, payment)` pair the
    /// marginal DP over `unit_costs` and `extra_budget` can reach, fanning
    /// the numerical integrations out over all available cores with scoped
    /// threads. The DP itself then runs against warm tables and does no
    /// integration on its critical path. Entries another job already filled
    /// through the shared store are skipped.
    ///
    /// Only available with the `parallel` feature; without it the cache fills
    /// lazily (and only for the pairs the DP actually visits).
    #[cfg(feature = "parallel")]
    pub fn precompute(&self, unit_costs: &[u64], extra_budget: u64) -> Result<()> {
        // Fanning out only pays when there are cores to fan out to: on a
        // single core the lazy path is strictly better (it integrates only
        // the pairs the DP actually visits), so bow out early.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if threads <= 1 {
            return Ok(());
        }
        // Payments are capped at the shared-table bound; anything beyond
        // falls back to the lazy path.
        let mut jobs: Vec<(usize, u64)> = Vec::new();
        for (index, &unit_cost) in unit_costs.iter().enumerate().take(self.groups.len()) {
            if unit_cost == 0 {
                return Err(CoreError::invalid_argument(
                    "group unit-increment costs must be positive".to_owned(),
                ));
            }
            let max_payment = (1 + extra_budget / unit_cost).min(MAX_TABLE_PAYMENT);
            let table = &self.tables[index];
            for payment in 1..=max_payment {
                if table.get(payment).is_none() {
                    jobs.push((index, payment));
                }
            }
        }
        if jobs.is_empty() {
            return Ok(());
        }

        let threads = threads.min(jobs.len());
        let chunk_size = jobs.len().div_ceil(threads);

        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || -> Result<()> {
                        for &(index, payment) in chunk {
                            let value = self.compute(index, payment)?;
                            self.tables[index].store(payment, value);
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .try_for_each(|h| h.join().expect("latency precompute thread panicked"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::LinearRate;
    use crate::task::TaskSet;

    fn two_group_set() -> (TaskSet, Vec<TaskGroup>) {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 2).unwrap();
        set.add_tasks(ty, 5, 3).unwrap();
        let groups = set.group_by_repetitions();
        (set, groups)
    }

    #[test]
    fn spread_evenly_divides_with_remainder() {
        assert_eq!(spread_evenly(10, 5).unwrap(), vec![2, 2, 2, 2, 2]);
        assert_eq!(spread_evenly(11, 5).unwrap(), vec![3, 2, 2, 2, 2]);
        assert_eq!(spread_evenly(14, 5).unwrap(), vec![3, 3, 3, 3, 2]);
        assert_eq!(spread_evenly(5, 5).unwrap(), vec![1; 5]);
    }

    #[test]
    fn spread_evenly_rejects_invalid_input() {
        assert!(spread_evenly(3, 0).is_err());
        assert!(matches!(
            spread_evenly(3, 5).unwrap_err(),
            CoreError::InsufficientBudget {
                provided: 3,
                required: 5
            }
        ));
    }

    #[test]
    fn spread_evenly_total_is_preserved() {
        for total in 7..40u64 {
            for slots in 1..=7usize {
                if total >= slots as u64 {
                    let spread = spread_evenly(total, slots).unwrap();
                    assert_eq!(spread.iter().sum::<u64>(), total);
                    let max = spread.iter().max().unwrap();
                    let min = spread.iter().min().unwrap();
                    assert!(max - min <= 1, "spread must be balanced");
                }
            }
        }
    }

    #[test]
    fn allocation_from_group_payments_builds_full_allocation() {
        let (set, groups) = two_group_set();
        let alloc = allocation_from_group_payments(&set, &groups, &[2, 4]).unwrap();
        assert_eq!(alloc.task_count(), 5);
        // 3-repetition group members get 2 units per repetition
        assert_eq!(alloc.task_total(0), Payment::units(6));
        assert_eq!(alloc.task_total(1), Payment::units(6));
        // 5-repetition group members get 4 units per repetition
        assert_eq!(alloc.task_total(2), Payment::units(20));
        assert_eq!(alloc.total_spent(), 2 * 6 + 3 * 20);
    }

    #[test]
    fn allocation_from_group_payments_validates() {
        let (set, groups) = two_group_set();
        assert!(allocation_from_group_payments(&set, &groups, &[2]).is_err());
        assert!(allocation_from_group_payments(&set, &groups, &[0, 2]).is_err());
        // groups that do not cover every task are rejected
        let partial = vec![groups[0].clone()];
        assert!(allocation_from_group_payments(&set, &partial, &[2]).is_err());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_precompute_matches_lazy_evaluation() {
        let (_, groups) = two_group_set();
        // A model no other test shares, so the interned tables start cold and
        // the precompute does real work.
        let model = LinearRate::new(3.0, 2.71).unwrap();
        let unit_costs: Vec<u64> = groups.iter().map(|g| g.unit_increment_cost()).collect();
        let extra_budget = 200u64;

        let warm = GroupLatencyCache::new(&model, &groups);
        warm.precompute(&unit_costs, extra_budget).unwrap();
        // The lazy comparison must not read the tables `warm` just filled:
        // compute the ground truth directly from the integration primitive.
        for (index, &unit_cost) in unit_costs.iter().enumerate() {
            for payment in 1..=(1 + extra_budget / unit_cost) {
                let group = &groups[index];
                let expected = crate::latency::group_phase1_expected(
                    group.size() as u64,
                    group.repetitions,
                    model.on_hold_rate(payment as f64),
                )
                .unwrap();
                let cached = warm.phase1(index, payment).unwrap();
                assert!(
                    cached.to_bits() == expected.to_bits(),
                    "group {index} payment {payment}: {cached} != {expected}"
                );
            }
        }
    }

    #[test]
    fn group_latency_cache_is_consistent_and_monotone() {
        let (_, groups) = two_group_set();
        let model = LinearRate::unit_slope();
        let cache = GroupLatencyCache::new(&model, &groups);
        let a1 = cache.phase1(0, 2).unwrap();
        let a2 = cache.phase1(0, 2).unwrap();
        assert_eq!(a1, a2, "memoized value must be identical");
        let cheap = cache.phase1(1, 1).unwrap();
        let rich = cache.phase1(1, 9).unwrap();
        assert!(rich < cheap, "higher payment must not increase latency");
        assert!(cache.phase1(5, 1).is_err());
        assert_eq!(cache.groups().len(), 2);
        // payments beyond the shared-table cap hit the lazy spill
        let beyond = cache.phase1(0, MAX_TABLE_PAYMENT + 50).unwrap();
        assert!(beyond > 0.0);
    }

    /// Two caches over the same curve and group shapes share one interned
    /// table: what the first computed, the second reads back bit-identically
    /// (and the underlying table object is literally the same allocation).
    #[test]
    fn interned_tables_are_shared_across_cache_instances() {
        let (_, groups) = two_group_set();
        // Distinct parameters so this test owns its interned tables.
        let model_a = LinearRate::new(1.25, 0.5).unwrap();
        let model_b = LinearRate::new(1.25, 0.5).unwrap();

        let first = GroupLatencyCache::new(&model_a, &groups);
        let mut expected = Vec::new();
        for payment in 1..=12u64 {
            expected.push(first.phase1(0, payment).unwrap());
        }
        let filled_before = first.tables[0].filled();
        assert!(filled_before >= 12);

        let second = GroupLatencyCache::new(&model_b, &groups);
        assert!(
            Arc::ptr_eq(&first.tables[0], &second.tables[0]),
            "equal curve + shape must intern to the same table"
        );
        for (i, payment) in (1..=12u64).enumerate() {
            let value = second.phase1(0, payment).unwrap();
            assert_eq!(value.to_bits(), expected[i].to_bits());
        }
        // Reading through the second cache computed nothing new.
        assert_eq!(second.tables[0].filled(), filled_before);

        // A different curve must not share tables.
        let other_model = LinearRate::new(1.25, 0.75).unwrap();
        let third = GroupLatencyCache::new(&other_model, &groups);
        assert!(!Arc::ptr_eq(&first.tables[0], &third.tables[0]));
    }

    /// Regression test for the aging-free eviction: the store used to drop
    /// *every* unreferenced table when full, so a table hit on every solve
    /// (but unreferenced between solves, as tables always are) was evicted
    /// ahead of ones untouched for ages. With generation stamps the stalest
    /// unreferenced entry goes first and recently-used tables survive.
    #[test]
    fn eviction_ages_out_stale_tables_before_hot_ones() {
        let store = LatencyTableStore::default();
        let key = |i: u64| TableKey {
            curve: i,
            group_size: 2,
            repetitions: 3,
        };
        let cap = 4;
        let weaks: Vec<_> = (0..4u64)
            .map(|i| Arc::downgrade(&store.intern_with_cap(key(i), cap)))
            .collect();
        // All four tables are now unreferenced (the caches dropped their
        // arcs); key 0 is the oldest, keys 1..3 progressively fresher.
        assert_eq!(store.len(), 4);
        // Touch key 0: it is now the most recently used despite being the
        // first interned.
        drop(store.intern_with_cap(key(0), cap));
        // A fifth key must displace key 1 (stalest stamp), not key 0.
        drop(store.intern_with_cap(key(4), cap));
        assert_eq!(store.len(), 4);
        assert!(
            weaks[0].upgrade().is_some(),
            "recently touched table must survive eviction"
        );
        assert!(
            weaks[1].upgrade().is_none(),
            "the stalest unreferenced table must be the victim"
        );
        assert!(weaks[2].upgrade().is_some());
        assert!(weaks[3].upgrade().is_some());
        // Referenced tables are never victims: with every entry held, a new
        // key is served un-interned.
        let held: Vec<_> = (0..4u64)
            .map(|i| store.intern_with_cap(key(10 + i), cap))
            .collect();
        assert_eq!(store.len(), 4, "held tables evicted the unreferenced ones");
        let overflow = store.intern_with_cap(key(99), cap);
        assert_eq!(store.len(), 4, "no room: overflow key stays un-interned");
        assert!(overflow.filled() == 0);
        drop(held);
    }

    /// Groups with identical shapes intern to the same table even within one
    /// cache; different shapes never do.
    #[test]
    fn table_identity_follows_group_shape() {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 2).unwrap();
        set.add_tasks(ty, 5, 3).unwrap();
        let groups = set.group_by_repetitions();
        let mut twin_set = TaskSet::new();
        let ty = twin_set.add_type("other name", 1.0).unwrap();
        twin_set.add_tasks(ty, 3, 2).unwrap();
        let twin_groups = twin_set.group_by_repetitions();

        let model = LinearRate::new(0.9, 1.1).unwrap();
        let cache = GroupLatencyCache::new(&model, &groups);
        let twin = GroupLatencyCache::new(&model, &twin_groups);
        // Same (curve, size=2, reps=3) key → same table; the 5-rep group
        // keys differently.
        assert!(Arc::ptr_eq(&cache.tables[0], &twin.tables[0]));
        assert!(!Arc::ptr_eq(&cache.tables[1], &twin.tables[0]));
    }
}

//! Even Allocation (EA) — Algorithm 1, the optimal strategy for Scenario I.
//!
//! Theorem 1 of the paper shows that for identical tasks requiring the same
//! number of repetitions, allocating the budget evenly to every repetition of
//! every task minimises the expected latency. Algorithm 1 handles the
//! discrete remainder in two steps:
//!
//! 1. `δ = ⌊B / (m·N)⌋` units go to every repetition;
//! 2. `γ = ⌊(B mod m·N) / N⌋` extra units are given to `γ` repetitions of
//!    *each* task;
//! 3. `σ = (B mod m·N) mod N` remaining units are given to one extra
//!    repetition of `σ` distinct tasks.
//!
//! The paper selects the beneficiary repetitions randomly; because every
//! choice yields the same expected latency (the tasks are exchangeable), this
//! implementation uses a deterministic selection so results are reproducible,
//! and exposes [`EvenAllocation::with_seed`] for randomised tie-breaking when
//! desired.
//!
//! EA is the one optimal strategy that needs no dynamic program — Theorem 1
//! gives the optimum in closed form, so tuning is O(N). Its latency target
//! (an expected *maximum* over tasks) is also not separable across groups
//! (see [`LatencyTarget::is_separable`]); the separable fast path of
//! [`marginal_budget_dp_separable`](crate::algorithms::dp::marginal_budget_dp_separable)
//! belongs to RA's and HA's sum-shaped objectives.

use crate::algorithms::common::spread_evenly;
use crate::error::{CoreError, Result};
use crate::latency::{JobLatencyEstimator, PhaseSelection};
use crate::money::{Allocation, Payment};
use crate::problem::{HTuningProblem, LatencyTarget, TuningResult, TuningStrategy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The Even Allocation strategy (Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct EvenAllocation {
    /// Optional seed for random selection of the remainder beneficiaries; if
    /// `None` the selection is deterministic (first repetitions / tasks).
    seed: Option<u64>,
    /// Whether to compute the analytic objective estimate for the result
    /// (costs one numerical integration).
    estimate_objective: bool,
}

impl EvenAllocation {
    /// Deterministic EA with objective estimation enabled.
    pub fn new() -> Self {
        EvenAllocation {
            seed: None,
            estimate_objective: true,
        }
    }

    /// EA with seeded random remainder placement (matches the paper's
    /// "select randomly" phrasing).
    pub fn with_seed(seed: u64) -> Self {
        EvenAllocation {
            seed: Some(seed),
            estimate_objective: true,
        }
    }

    /// Disables the analytic objective estimate (useful in tight loops such
    /// as the synthetic sweep where the caller evaluates latencies itself).
    pub fn without_objective(mut self) -> Self {
        self.estimate_objective = false;
        self
    }

    fn build_allocation(&self, problem: &HTuningProblem) -> Result<Allocation> {
        let task_set = problem.task_set();
        let tasks = task_set.tasks();
        let n = tasks.len() as u64;
        let m = u64::from(tasks[0].repetitions);
        // Scenario I requires uniform repetitions; for robustness EA degrades
        // gracefully to per-repetition even spreading when they differ.
        if !task_set.is_uniform_repetitions() {
            let spread = spread_evenly(
                problem.budget().as_units(),
                task_set.total_repetitions() as usize,
            )?;
            let mut allocation = Allocation::with_capacity(tasks.len());
            let mut cursor = 0usize;
            for task in tasks {
                let reps = task.repetitions as usize;
                let payments = spread[cursor..cursor + reps]
                    .iter()
                    .map(|&u| Payment::units(u))
                    .collect();
                cursor += reps;
                allocation.push_task(payments);
            }
            return Ok(allocation);
        }

        let budget = problem.budget().as_units();
        let slots = m * n;
        if budget < slots {
            return Err(CoreError::InsufficientBudget {
                provided: budget,
                required: slots,
            });
        }
        let delta = budget / slots;
        let remainder = budget % slots;
        let gamma = (remainder / n) as usize;
        let sigma = (remainder % n) as usize;

        // Selection order of repetitions within a task and of tasks for the
        // final σ units.
        let mut rep_order: Vec<usize> = (0..m as usize).collect();
        let mut task_order: Vec<usize> = (0..n as usize).collect();
        if let Some(seed) = self.seed {
            let mut rng = StdRng::seed_from_u64(seed);
            rep_order.shuffle(&mut rng);
            task_order.shuffle(&mut rng);
        }

        let mut allocation = Allocation::with_capacity(tasks.len());
        for _ in 0..n {
            allocation.push_task(vec![Payment::units(delta); m as usize]);
        }
        // Step 2: γ repetitions of every task get one extra unit.
        for task_index in 0..n as usize {
            for &rep_index in rep_order.iter().take(gamma) {
                allocation.task_payments_mut(task_index)[rep_index] =
                    allocation.task_payments_mut(task_index)[rep_index].saturating_add(1);
            }
        }
        // Step 3: σ tasks get one extra unit on a repetition that was not
        // boosted in step 2.
        if sigma > 0 {
            let boost_rep = rep_order[gamma.min(m as usize - 1)];
            for &task_index in task_order.iter().take(sigma) {
                allocation.task_payments_mut(task_index)[boost_rep] =
                    allocation.task_payments_mut(task_index)[boost_rep].saturating_add(1);
            }
        }
        Ok(allocation)
    }
}

impl TuningStrategy for EvenAllocation {
    fn name(&self) -> &str {
        "EA"
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        let allocation = self.build_allocation(problem)?;
        problem.check_feasible(&allocation)?;
        let objective = if self.estimate_objective {
            let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
            Some(estimator.analytic_expected_latency(&allocation, PhaseSelection::OnHoldOnly)?)
        } else {
            None
        };
        Ok(TuningResult::new(
            self.name(),
            allocation,
            objective,
            LatencyTarget::ExpectedMaxOnHold,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Budget;
    use crate::rate::LinearRate;
    use crate::task::TaskSet;
    use std::sync::Arc;

    fn homogeneous_problem(tasks: usize, reps: u32, budget: u64) -> HTuningProblem {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap()
    }

    #[test]
    fn divides_budget_exactly_when_divisible() {
        let problem = homogeneous_problem(4, 5, 100);
        let result = EvenAllocation::new().tune(&problem).unwrap();
        assert_eq!(result.strategy, "EA");
        assert_eq!(result.allocation.total_spent(), 100);
        for (_, _, p) in result.allocation.iter() {
            assert_eq!(p, Payment::units(5));
        }
        assert!(result.objective.unwrap() > 0.0);
    }

    #[test]
    fn remainder_is_distributed_one_unit_at_a_time() {
        // 4 tasks × 5 reps = 20 slots; budget 87 -> δ=4, remainder 7,
        // γ=1 (each task gets one boosted rep), σ=3.
        let problem = homogeneous_problem(4, 5, 87);
        let result = EvenAllocation::new().tune(&problem).unwrap();
        let alloc = &result.allocation;
        assert_eq!(alloc.total_spent(), 87);
        assert_eq!(alloc.min_payment().unwrap(), Payment::units(4));
        assert_eq!(alloc.max_payment().unwrap(), Payment::units(5));
        // per-task totals differ by at most one unit
        let totals: Vec<u64> = (0..4).map(|i| alloc.task_total(i).as_units()).collect();
        let min = totals.iter().min().unwrap();
        let max = totals.iter().max().unwrap();
        assert!(
            max - min <= 1,
            "per-task totals {totals:?} must be balanced"
        );
    }

    #[test]
    fn exactly_minimum_budget_gives_one_unit_everywhere() {
        let problem = homogeneous_problem(3, 4, 12);
        let result = EvenAllocation::new().tune(&problem).unwrap();
        assert_eq!(result.allocation.total_spent(), 12);
        for (_, _, p) in result.allocation.iter() {
            assert_eq!(p, Payment::units(1));
        }
    }

    #[test]
    fn seeded_variant_spends_the_same_total() {
        let problem = homogeneous_problem(5, 3, 53);
        let deterministic = EvenAllocation::new().tune(&problem).unwrap();
        let seeded = EvenAllocation::with_seed(42).tune(&problem).unwrap();
        assert_eq!(
            deterministic.allocation.total_spent(),
            seeded.allocation.total_spent()
        );
        // Both must be feasible and balanced.
        problem.check_feasible(&seeded.allocation).unwrap();
        let diff = seeded.allocation.max_payment().unwrap().as_units()
            - seeded.allocation.min_payment().unwrap().as_units();
        assert!(diff <= 1);
    }

    #[test]
    fn without_objective_skips_estimation() {
        let problem = homogeneous_problem(4, 5, 100);
        let result = EvenAllocation::new()
            .without_objective()
            .tune(&problem)
            .unwrap();
        assert_eq!(result.objective, None);
    }

    #[test]
    fn degrades_gracefully_for_nonuniform_repetitions() {
        // EA is defined for Scenario I but must not panic elsewhere: it
        // falls back to per-repetition even spreading.
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 2, 2).unwrap();
        set.add_tasks(ty, 4, 1).unwrap();
        let problem =
            HTuningProblem::new(set, Budget::units(17), Arc::new(LinearRate::unit_slope()))
                .unwrap();
        let result = EvenAllocation::new().tune(&problem).unwrap();
        assert_eq!(result.allocation.total_spent(), 17);
        problem.check_feasible(&result.allocation).unwrap();
    }

    #[test]
    fn even_allocation_beats_biased_split_in_expectation() {
        // Direct check of Theorem 1 on a small instance: EA's expected
        // phase-1 latency is no worse than a manually biased allocation with
        // the same budget.
        let problem = homogeneous_problem(2, 1, 6);
        let ea = EvenAllocation::new().tune(&problem).unwrap();
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let biased =
            Allocation::from_matrix(vec![vec![Payment::units(2)], vec![Payment::units(4)]]);
        let ea_latency = ea.objective.unwrap();
        let biased_latency = estimator
            .analytic_expected_latency(&biased, PhaseSelection::OnHoldOnly)
            .unwrap();
        assert!(
            ea_latency <= biased_latency + 1e-9,
            "EA {ea_latency} should not exceed biased {biased_latency}"
        );
    }
}

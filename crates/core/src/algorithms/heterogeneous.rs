//! Heterogeneous Algorithm (HA) — Algorithm 3, the tuning strategy for
//! Scenario III.
//!
//! Tasks differ in both difficulty (processing rate `λp`) and repetition
//! count. Payment still only influences the on-hold phase, but the "most
//! difficult" group can dominate the overall latency through its processing
//! time, so the paper minimises **two objectives simultaneously**:
//!
//! * `O1` — the sum of expected phase-1 latencies of the task groups (the
//!   Scenario II objective);
//! * `O2` — the largest expected phase-1 + phase-2 latency over the groups
//!   (the "most difficult task" penalty).
//!
//! The Compromise strategy first computes the **Utopia Point**
//! `UP = (O1*, O2*)` by optimising each objective independently under the
//! budget, then minimises the **Closeness** `CL = ‖OP − UP‖` (first-order
//! distance) with the same budget-indexed marginal DP.

use crate::algorithms::common::{allocation_from_group_payments, GroupLatencyCache};
use crate::algorithms::dp::{marginal_budget_dp, marginal_budget_dp_separable};
use crate::error::{CoreError, Result};
use crate::latency::group_phase2_expected;
use crate::problem::{HTuningProblem, LatencyTarget, TuningResult, TuningStrategy};
use crate::task::TaskGroup;
use serde::{Deserialize, Serialize};

/// Which norm to use for the Closeness (distance to the utopia point). The
/// paper uses the first-order (L1) distance; L2 is provided for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ClosenessNorm {
    /// First-order distance `|O1 − O1*| + |O2 − O2*|` (the paper's choice).
    #[default]
    L1,
    /// Euclidean distance.
    L2,
}

impl ClosenessNorm {
    /// Evaluates the distance between the objective point and the utopia
    /// point.
    pub fn distance(self, objective: (f64, f64), utopia: (f64, f64)) -> f64 {
        let d1 = (objective.0 - utopia.0).abs();
        let d2 = (objective.1 - utopia.1).abs();
        match self {
            ClosenessNorm::L1 => d1 + d2,
            ClosenessNorm::L2 => (d1 * d1 + d2 * d2).sqrt(),
        }
    }
}

/// Detailed output of the Heterogeneous Algorithm, including the utopia point
/// and the final objective point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompromiseReport {
    /// Optimal value of `O1` alone under the budget.
    pub o1_star: f64,
    /// Optimal value of `O2` alone under the budget.
    pub o2_star: f64,
    /// `O1` at the selected allocation.
    pub o1: f64,
    /// `O2` at the selected allocation.
    pub o2: f64,
    /// Closeness of the selected allocation to the utopia point.
    pub closeness: f64,
    /// Per-group per-repetition payments selected.
    pub group_payments: Vec<u64>,
}

/// The Heterogeneous Algorithm (Algorithm 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeterogeneousAlgorithm {
    norm: ClosenessNorm,
}

impl HeterogeneousAlgorithm {
    /// HA with the paper's first-order Closeness.
    pub fn new() -> Self {
        HeterogeneousAlgorithm {
            norm: ClosenessNorm::L1,
        }
    }

    /// HA with an explicit norm choice.
    pub fn with_norm(norm: ClosenessNorm) -> Self {
        HeterogeneousAlgorithm { norm }
    }

    /// Expected phase-2 latency of each group (`E{L2(g_i)} = k_i / λp_i`),
    /// which the payment cannot change.
    fn phase2_constants(problem: &HTuningProblem, groups: &[TaskGroup]) -> Result<Vec<f64>> {
        groups
            .iter()
            .map(|g| {
                let ty = problem
                    .task_set()
                    .type_by_id(g.task_type)
                    .ok_or_else(|| CoreError::invalid_argument("group references unknown type"))?;
                group_phase2_expected(g.repetitions, ty.processing_rate)
            })
            .collect()
    }

    /// Runs the full Compromise procedure and returns both the allocation and
    /// a [`CompromiseReport`] describing the utopia point.
    pub fn tune_detailed(
        &self,
        problem: &HTuningProblem,
    ) -> Result<(TuningResult, CompromiseReport)> {
        let task_set = problem.task_set();
        let groups = task_set.group_by_type_and_repetitions();
        let unit_costs: Vec<u64> = groups.iter().map(|g| g.unit_increment_cost()).collect();
        let extra_budget = problem.discretionary_budget();
        let phase2 = Self::phase2_constants(problem, &groups)?;

        let rate_model = problem.rate_model().clone();
        let cache = GroupLatencyCache::new(&rate_model, &groups);
        #[cfg(feature = "parallel")]
        cache.precompute(&unit_costs, extra_budget)?;

        // Objective O1: sum of expected phase-1 group latencies. The cache
        // memoizes behind `&self`, so these closures are `Fn + Sync` and the
        // closure-path DP may fan each level's candidate scan over threads.
        let o1 = |payments: &[u64]| -> Result<f64> {
            let mut sum = 0.0;
            for (i, &p) in payments.iter().enumerate() {
                sum += cache.phase1(i, p)?;
            }
            Ok(sum)
        };
        // Objective O2: the largest expected phase-1 + phase-2 group latency.
        let o2 = |payments: &[u64]| -> Result<f64> {
            let mut max = f64::MIN;
            for (i, &p) in payments.iter().enumerate() {
                max = max.max(cache.phase1(i, p)? + phase2[i]);
            }
            Ok(max)
        };

        // Utopia point: each objective optimised independently. O1 is
        // separable across groups, so its optimum uses the incremental O(1)
        // candidate evaluation; O2 (a max over groups) and the Closeness
        // below couple the groups and stay on the closure path.
        let o1_star = marginal_budget_dp_separable(&unit_costs, extra_budget, |group, payment| {
            cache.phase1(group, payment)
        })?
        .objective;
        let o2_star = marginal_budget_dp(&unit_costs, extra_budget, o2)?.objective;

        // Compromise: minimise the Closeness to (O1*, O2*). The utopia point
        // depends on the budget, so — unlike RA's budget-agnostic table —
        // this DP cannot be reused across budgets.
        let norm = self.norm;
        let outcome = marginal_budget_dp(&unit_costs, extra_budget, |payments| {
            let value1 = o1(payments)?;
            let value2 = o2(payments)?;
            Ok(norm.distance((value1, value2), (o1_star, o2_star)))
        })?;

        let o1_final = o1(&outcome.payments)?;
        let o2_final = o2(&outcome.payments)?;
        let report = CompromiseReport {
            o1_star,
            o2_star,
            o1: o1_final,
            o2: o2_final,
            closeness: outcome.objective,
            group_payments: outcome.payments.clone(),
        };

        let allocation = allocation_from_group_payments(task_set, &groups, &outcome.payments)?;
        problem.check_feasible(&allocation)?;
        let result = TuningResult::new(
            "HA",
            allocation,
            Some(outcome.objective),
            LatencyTarget::Compromise,
        );
        Ok((result, report))
    }
}

impl TuningStrategy for HeterogeneousAlgorithm {
    fn name(&self) -> &str {
        "HA"
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        Ok(self.tune_detailed(problem)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{JobLatencyEstimator, PhaseSelection};
    use crate::money::Allocation;
    use crate::money::{Budget, Payment};
    use crate::rate::LinearRate;
    use crate::task::TaskSet;
    use std::sync::Arc;

    fn heterogeneous_problem(budget: u64) -> HTuningProblem {
        // Scenario III in miniature: easy tasks (λp = 3) with 3 repetitions
        // and hard tasks (λp = 1) with 5 repetitions.
        let mut set = TaskSet::new();
        let easy = set.add_type("yes/no vote", 3.0).unwrap();
        let hard = set.add_type("sorting vote", 1.0).unwrap();
        set.add_tasks(easy, 3, 3).unwrap();
        set.add_tasks(hard, 5, 3).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap()
    }

    #[test]
    fn closeness_norms() {
        let op = (3.0, 4.0);
        let up = (1.0, 1.0);
        assert!((ClosenessNorm::L1.distance(op, up) - 5.0).abs() < 1e-12);
        assert!((ClosenessNorm::L2.distance(op, up) - 13.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(ClosenessNorm::default(), ClosenessNorm::L1);
    }

    #[test]
    fn produces_feasible_allocation() {
        let problem = heterogeneous_problem(120);
        let result = HeterogeneousAlgorithm::new().tune(&problem).unwrap();
        assert_eq!(result.strategy, "HA");
        assert_eq!(result.target, LatencyTarget::Compromise);
        problem.check_feasible(&result.allocation).unwrap();
    }

    #[test]
    fn report_is_internally_consistent() {
        let problem = heterogeneous_problem(150);
        let (_, report) = HeterogeneousAlgorithm::new()
            .tune_detailed(&problem)
            .unwrap();
        // Both objectives are bounded below by their utopia components.
        assert!(report.o1 + 1e-9 >= report.o1_star);
        assert!(report.o2 + 1e-9 >= report.o2_star);
        // Closeness equals the norm distance between OP and UP.
        let recomputed =
            ClosenessNorm::L1.distance((report.o1, report.o2), (report.o1_star, report.o2_star));
        assert!((recomputed - report.closeness).abs() < 1e-9);
        assert_eq!(report.group_payments.len(), 2);
        assert!(report.group_payments.iter().all(|&p| p >= 1));
    }

    #[test]
    fn closeness_shrinks_with_budget() {
        let mut prev = f64::INFINITY;
        for budget in [60u64, 120, 240, 480] {
            let problem = heterogeneous_problem(budget);
            let (_, report) = HeterogeneousAlgorithm::new()
                .tune_detailed(&problem)
                .unwrap();
            // The utopia point itself moves with the budget, so we check a
            // weaker invariant: O1 and O2 both improve as the budget grows.
            let score = report.o1 + report.o2;
            assert!(
                score <= prev + 1e-6,
                "O1+O2 should not grow with budget ({score} vs {prev})"
            );
            prev = score;
        }
    }

    #[test]
    fn hard_group_receives_at_least_the_easy_group_payment() {
        // The hard group has both more repetitions and slower processing; the
        // compromise should never pay it less per repetition than the easy
        // group under a symmetric rate model.
        let problem = heterogeneous_problem(300);
        let (_, report) = HeterogeneousAlgorithm::new()
            .tune_detailed(&problem)
            .unwrap();
        // group 0 = easy (type 0, 3 reps), group 1 = hard (type 1, 5 reps)
        assert!(
            report.group_payments[1] >= report.group_payments[0],
            "hard group payment {:?} should be at least the easy group's",
            report.group_payments
        );
    }

    #[test]
    fn beats_uniform_heuristic_in_expected_overall_latency() {
        // Mirrors Figure 5(c): OPT vs the heuristic that gives every type the
        // same payment. We compare expected overall latency (both phases).
        let problem = heterogeneous_problem(240);
        let result = HeterogeneousAlgorithm::new().tune(&problem).unwrap();
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let opt = estimator
            .analytic_expected_latency(&result.allocation, PhaseSelection::Both)
            .unwrap();

        // Heuristic: every repetition of every task gets the same payment.
        let per_rep = 240 / problem.task_set().total_repetitions();
        let uniform = Allocation::uniform(
            &problem.task_set().repetition_counts(),
            Payment::units(per_rep),
        );
        let heuristic = estimator
            .analytic_expected_latency(&uniform, PhaseSelection::Both)
            .unwrap();
        assert!(
            opt <= heuristic * 1.02,
            "HA ({opt}) should be no worse than the uniform heuristic ({heuristic})"
        );
    }

    #[test]
    fn l2_norm_variant_also_produces_feasible_allocations() {
        let problem = heterogeneous_problem(180);
        let result = HeterogeneousAlgorithm::with_norm(ClosenessNorm::L2)
            .tune(&problem)
            .unwrap();
        problem.check_feasible(&result.allocation).unwrap();
    }

    #[test]
    fn works_when_all_tasks_fall_into_one_group() {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 2, 4).unwrap();
        let problem =
            HTuningProblem::new(set, Budget::units(40), Arc::new(LinearRate::unit_slope()))
                .unwrap();
        let (result, report) = HeterogeneousAlgorithm::new()
            .tune_detailed(&problem)
            .unwrap();
        problem.check_feasible(&result.allocation).unwrap();
        assert_eq!(report.group_payments.len(), 1);
        // With a single group O1 and O2 are both optimised by spending as
        // much as possible, so the closeness should be ~0.
        assert!(report.closeness.abs() < 1e-9);
    }
}

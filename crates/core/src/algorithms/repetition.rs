//! Repetition Algorithm (RA) — Algorithm 2, the tuning strategy for
//! Scenario II.
//!
//! Tasks share the same difficulty but require different repetition counts.
//! The closed form of the overall latency is intractable for large task sets,
//! so the paper (Section 4.3.1) groups tasks by repetition count and
//! minimises the **sum of the expected phase-1 latencies of the groups**,
//! which upper-bounds (and tracks) the true expected maximum. The resulting
//! discrete optimisation is solved with the budget-indexed marginal dynamic
//! program of Algorithm 2. The objective is separable across groups
//! (`Σ_i E_i(p_i)`), so RA uses the incremental
//! [`marginal_budget_dp_separable`](crate::algorithms::dp::marginal_budget_dp_separable)
//! path: every DP candidate is scored in O(1) from cached per-group marginal
//! latencies instead of re-evaluating the full sum.

use crate::algorithms::common::{allocation_from_group_payments, GroupLatencyCache};
use crate::algorithms::dp::DpTable;
use crate::error::{CoreError, Result};
use crate::problem::{HTuningProblem, LatencyTarget, TuningResult, TuningStrategy};
use crate::task::TaskGroup;

/// The Repetition Algorithm (Algorithm 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepetitionAlgorithm;

/// The strategy name RA stamps on its results.
const NAME: &str = "RA";

/// RA's repetition groups and their unit-increment costs for a problem.
fn groups_and_costs(problem: &HTuningProblem) -> (Vec<TaskGroup>, Vec<u64>) {
    let groups = problem.task_set().group_by_repetitions();
    let unit_costs = groups.iter().map(|g| g.unit_increment_cost()).collect();
    (groups, unit_costs)
}

/// Rejects a [`DpTable`] that was not built for this problem's group
/// structure (the cross-job reuse entry points take tables from callers).
fn check_table_shape(table: &DpTable, unit_costs: &[u64]) -> Result<()> {
    if table.unit_costs() != unit_costs {
        return Err(CoreError::invalid_argument(format!(
            "DP table was built for unit costs {:?}, problem requires {unit_costs:?}",
            table.unit_costs()
        )));
    }
    Ok(())
}

impl RepetitionAlgorithm {
    /// Creates the strategy.
    pub fn new() -> Self {
        RepetitionAlgorithm
    }

    /// Solves the problem and returns the full budget-indexed [`DpTable`]
    /// alongside the result.
    ///
    /// The table is the unit of **cross-job reuse**: its objective does not
    /// depend on the budget, so any job over the same task shape and rate
    /// curve is answered by [`RepetitionAlgorithm::result_from_table`] (for
    /// budgets the table covers) or grown in place by
    /// [`RepetitionAlgorithm::extend_table`] (for larger budgets) — both
    /// bit-identical to a cold solve at that budget, because every table
    /// level is computed once, from deterministic per-group latency terms,
    /// regardless of how far the table eventually extends.
    pub fn tune_with_table(&self, problem: &HTuningProblem) -> Result<(TuningResult, DpTable)> {
        let (groups, unit_costs) = groups_and_costs(problem);
        let extra_budget = problem.discretionary_budget();

        // Memoized expected phase-1 group latencies E_i(p), backed by the
        // process-wide interned store.
        let rate_model = problem.rate_model().clone();
        let cache = GroupLatencyCache::new(&rate_model, &groups);
        #[cfg(feature = "parallel")]
        cache.precompute(&unit_costs, extra_budget)?;

        debug_assert!(LatencyTarget::GroupSumOnHold.is_separable());
        let table = DpTable::build_separable(&unit_costs, extra_budget, |group, payment| {
            cache.phase1(group, payment)
        })?;
        let result = Self::result_from_table(problem, &table)?;
        Ok((result, table))
    }

    /// Reads the RA plan for `problem` out of a previously built table: one
    /// `O(B')` decision-chain walk, no objective evaluations. The table must
    /// cover the problem's discretionary budget
    /// ([`RepetitionAlgorithm::extend_table`] grows it first otherwise) and
    /// must have been built over the same objective — same task shape and
    /// same rate curve — as the problem.
    pub fn result_from_table(problem: &HTuningProblem, table: &DpTable) -> Result<TuningResult> {
        let (groups, unit_costs) = groups_and_costs(problem);
        check_table_shape(table, &unit_costs)?;
        let outcome = table.outcome_at(problem.discretionary_budget())?;
        let allocation =
            allocation_from_group_payments(problem.task_set(), &groups, &outcome.payments)?;
        problem.check_feasible(&allocation)?;
        Ok(TuningResult::new(
            NAME,
            allocation,
            Some(outcome.objective),
            LatencyTarget::GroupSumOnHold,
        ))
    }

    /// Warm-starts `table` up to `problem`'s discretionary budget (a no-op
    /// when already covered). The caller guarantees the problem computes the
    /// same objective the table was built with (same task shape, same rate
    /// curve) — see the contract on [`DpTable::extend_to_separable`].
    pub fn extend_table(problem: &HTuningProblem, table: &mut DpTable) -> Result<()> {
        let (groups, unit_costs) = groups_and_costs(problem);
        check_table_shape(table, &unit_costs)?;
        let extra_budget = problem.discretionary_budget();
        if extra_budget <= table.max_budget() {
            return Ok(());
        }
        let rate_model = problem.rate_model().clone();
        let cache = GroupLatencyCache::new(&rate_model, &groups);
        #[cfg(feature = "parallel")]
        cache.precompute(&unit_costs, extra_budget)?;
        table.extend_to_separable(extra_budget, |group, payment| cache.phase1(group, payment))
    }
}

impl TuningStrategy for RepetitionAlgorithm {
    fn name(&self) -> &str {
        NAME
    }

    fn tune(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        Ok(self.tune_with_table(problem)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::dp::exhaustive_group_search;
    use crate::latency::{JobLatencyEstimator, PhaseSelection};
    use crate::money::{Allocation, Budget, Payment};
    use crate::rate::{LinearRate, RateModel};
    use crate::task::TaskSet;
    use std::sync::Arc;

    fn repetition_problem(budget: u64) -> HTuningProblem {
        // The paper's Scenario II setting in miniature: half the tasks need
        // 3 repetitions, the other half 5, identical difficulty.
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 4).unwrap();
        set.add_tasks(ty, 5, 4).unwrap();
        HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap()
    }

    #[test]
    fn produces_feasible_allocation_with_objective() {
        let problem = repetition_problem(100);
        let result = RepetitionAlgorithm::new().tune(&problem).unwrap();
        assert_eq!(result.strategy, "RA");
        assert_eq!(result.target, LatencyTarget::GroupSumOnHold);
        problem.check_feasible(&result.allocation).unwrap();
        assert!(result.objective.unwrap() > 0.0);
    }

    #[test]
    fn all_members_of_a_group_share_the_per_repetition_payment() {
        let problem = repetition_problem(200);
        let result = RepetitionAlgorithm::new().tune(&problem).unwrap();
        let alloc = &result.allocation;
        // tasks 0..4 are the 3-repetition group, 4..8 the 5-repetition group
        let p3 = alloc.task_payments(0)[0];
        for task in 0..4 {
            assert!(alloc.task_payments(task).iter().all(|&p| p == p3));
        }
        let p5 = alloc.task_payments(4)[0];
        for task in 4..8 {
            assert!(alloc.task_payments(task).iter().all(|&p| p == p5));
        }
    }

    #[test]
    fn objective_decreases_with_budget() {
        let strategy = RepetitionAlgorithm::new();
        let mut prev = f64::INFINITY;
        for budget in [40u64, 80, 160, 320, 640] {
            let problem = repetition_problem(budget);
            let result = strategy.tune(&problem).unwrap();
            let objective = result.objective.unwrap();
            assert!(
                objective <= prev + 1e-9,
                "objective should not increase with budget ({objective} vs {prev})"
            );
            prev = objective;
        }
    }

    #[test]
    fn matches_exhaustive_search_on_small_instances() {
        for budget in [20u64, 25, 31, 40] {
            let mut set = TaskSet::new();
            let ty = set.add_type("vote", 2.0).unwrap();
            set.add_tasks(ty, 2, 2).unwrap();
            set.add_tasks(ty, 3, 2).unwrap();
            let problem = HTuningProblem::new(
                set,
                Budget::units(budget),
                Arc::new(LinearRate::unit_slope()),
            )
            .unwrap();
            let result = RepetitionAlgorithm::new().tune(&problem).unwrap();

            // Brute-force the same group-sum objective.
            let groups = problem.task_set().group_by_repetitions();
            let unit_costs: Vec<u64> = groups.iter().map(|g| g.unit_increment_cost()).collect();
            let rate_model = problem.rate_model().clone();
            let cache = GroupLatencyCache::new(&rate_model, &groups);
            let brute =
                exhaustive_group_search(&unit_costs, problem.discretionary_budget(), |payments| {
                    let mut sum = 0.0;
                    for (i, &p) in payments.iter().enumerate() {
                        sum += cache.phase1(i, p)?;
                    }
                    Ok(sum)
                })
                .unwrap();
            let dp_objective = result.objective.unwrap();
            assert!(
                (dp_objective - brute.objective).abs() < 1e-9,
                "budget {budget}: DP {dp_objective} vs exhaustive {}",
                brute.objective
            );
        }
    }

    #[test]
    fn beats_task_even_and_rep_even_baselines_in_expected_latency() {
        // Reproduces the qualitative outcome of Figure 2 (repe panels): the
        // optimised allocation yields lower expected phase-1 latency than
        // either baseline at the same budget.
        let problem = repetition_problem(240);
        let result = RepetitionAlgorithm::new().tune(&problem).unwrap();
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let opt_latency = estimator
            .analytic_expected_latency(&result.allocation, PhaseSelection::OnHoldOnly)
            .unwrap();

        // task-even: every task receives the same total budget.
        let per_task = 240 / 8;
        let task_even = Allocation::from_matrix(
            problem
                .task_set()
                .tasks()
                .iter()
                .map(|t| {
                    let per_rep = per_task / u64::from(t.repetitions);
                    vec![Payment::units(per_rep.max(1)); t.repetitions as usize]
                })
                .collect(),
        );
        // rep-even: every repetition receives the same payment.
        let total_reps = problem.task_set().total_repetitions();
        let per_rep = 240 / total_reps;
        let rep_even = Allocation::uniform(
            &problem.task_set().repetition_counts(),
            Payment::units(per_rep),
        );

        let te_latency = estimator
            .analytic_expected_latency(&task_even, PhaseSelection::OnHoldOnly)
            .unwrap();
        let re_latency = estimator
            .analytic_expected_latency(&rep_even, PhaseSelection::OnHoldOnly)
            .unwrap();
        assert!(
            opt_latency <= te_latency + 1e-6,
            "RA {opt_latency} should beat task-even {te_latency}"
        );
        assert!(
            opt_latency <= re_latency + 1e-6,
            "RA {opt_latency} should beat rep-even {re_latency}"
        );
    }

    #[test]
    fn price_insensitive_market_leaves_budget_unspent_without_harm() {
        // With a very flat rate model (λ = 0.1p + 10) extra payment changes
        // little; the DP may leave budget unspent but must stay feasible.
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 2).unwrap();
        set.add_tasks(ty, 5, 2).unwrap();
        let problem =
            HTuningProblem::new(set, Budget::units(300), Arc::new(LinearRate::flat())).unwrap();
        let result = RepetitionAlgorithm::new().tune(&problem).unwrap();
        problem.check_feasible(&result.allocation).unwrap();
        assert!(result.allocation.total_spent() <= 300);
    }

    #[test]
    fn single_group_degenerates_to_even_allocation_shape() {
        // When all tasks share the repetition count RA has a single group and
        // must give every repetition the same payment.
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 4, 3).unwrap();
        let problem =
            HTuningProblem::new(set, Budget::units(60), Arc::new(LinearRate::unit_slope()))
                .unwrap();
        let result = RepetitionAlgorithm::new().tune(&problem).unwrap();
        let payments: Vec<u64> = result
            .allocation
            .iter()
            .map(|(_, _, p)| p.as_units())
            .collect();
        assert!(payments.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(payments[0], 5); // 60 units / 12 repetition slots
    }

    /// The cross-job reuse surface: a table built once answers smaller
    /// budgets by prefix reads and larger budgets after an in-place
    /// extension, bit-identical to cold solves at those budgets.
    #[test]
    fn table_reuse_is_bit_identical_to_cold_solves_across_budgets() {
        let build_problem = repetition_problem(160);
        let (result, mut table) = RepetitionAlgorithm::new()
            .tune_with_table(&build_problem)
            .unwrap();
        let direct = RepetitionAlgorithm::new().tune(&build_problem).unwrap();
        assert_eq!(result.allocation, direct.allocation);
        assert_eq!(
            result.objective.unwrap().to_bits(),
            direct.objective.unwrap().to_bits()
        );

        for budget in [100u64, 120, 160, 200, 320] {
            let problem = repetition_problem(budget);
            RepetitionAlgorithm::extend_table(&problem, &mut table).unwrap();
            let reused = RepetitionAlgorithm::result_from_table(&problem, &table).unwrap();
            let cold = RepetitionAlgorithm::new().tune(&problem).unwrap();
            assert_eq!(reused.allocation, cold.allocation, "budget {budget}");
            assert_eq!(
                reused.objective.unwrap().to_bits(),
                cold.objective.unwrap().to_bits(),
                "budget {budget}"
            );
            assert_eq!(reused.strategy, "RA");
        }
    }

    /// Tables from a different group structure are rejected instead of
    /// silently producing plans for the wrong problem.
    #[test]
    fn table_reuse_rejects_mismatched_group_structure() {
        let (_, table) = RepetitionAlgorithm::new()
            .tune_with_table(&repetition_problem(100))
            .unwrap();
        // Same total slots, different repetition partition → different unit
        // costs.
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 2, 4).unwrap();
        set.add_tasks(ty, 6, 4).unwrap();
        let other =
            HTuningProblem::new(set, Budget::units(100), Arc::new(LinearRate::unit_slope()))
                .unwrap();
        assert!(RepetitionAlgorithm::result_from_table(&other, &table).is_err());
        let mut table = table;
        assert!(RepetitionAlgorithm::extend_table(&other, &mut table).is_err());
    }

    #[test]
    fn works_with_nonlinear_rate_models() {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 3, 2).unwrap();
        set.add_tasks(ty, 5, 2).unwrap();
        let quad = crate::rate::QuadraticRate::paper();
        let problem = HTuningProblem::new(set.clone(), Budget::units(120), Arc::new(quad)).unwrap();
        let result = RepetitionAlgorithm::new().tune(&problem).unwrap();
        problem.check_feasible(&result.allocation).unwrap();

        let log = crate::rate::LogRate::paper();
        assert!(log.on_hold_rate(1.0) > 0.0);
        let problem = HTuningProblem::new(set, Budget::units(120), Arc::new(log)).unwrap();
        let result = RepetitionAlgorithm::new().tune(&problem).unwrap();
        problem.check_feasible(&result.allocation).unwrap();
    }
}

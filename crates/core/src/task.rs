//! Tasks, task types, task sets and task groups.
//!
//! Terminology follows Section 3 of the paper:
//!
//! * a **task** is the most decomposed operation a worker may perform (one
//!   pairwise vote, one yes/no filter decision, ...);
//! * a **job** is what the requester is responsible for; it is accomplished by
//!   publishing many tasks in parallel, each possibly *repeated* several times
//!   for answer reliability;
//! * tasks of the same *type* share the same cognitive difficulty and hence
//!   the same processing-phase clock rate `λp`;
//! * tuning strategies operate on **task groups**: maximal sets of tasks that
//!   share the repetition count (Scenario II) or both the repetition count and
//!   the type (Scenario III).

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a task type (difficulty class).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskTypeId(pub u32);

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

/// Identifier of an atomic task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// A task type: a class of atomic tasks with identical cognitive difficulty.
///
/// The processing-phase clock rate `λp` is a property of the type, not of the
/// payment (Section 3.2 of the paper: "the latency of the Processing phase
/// depends on the actual cognitive load of a task").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskType {
    /// Unique identifier of the type.
    pub id: TaskTypeId,
    /// Human readable name, e.g. `"sorting vote"` or `"yes/no vote"`.
    pub name: String,
    /// Processing-phase clock rate `λp` (inverse expected processing time).
    pub processing_rate: f64,
}

impl TaskType {
    /// Creates a new task type. The processing rate must be strictly
    /// positive and finite.
    pub fn new(id: TaskTypeId, name: impl Into<String>, processing_rate: f64) -> Result<Self> {
        if !processing_rate.is_finite() || processing_rate <= 0.0 {
            return Err(CoreError::invalid_distribution(format!(
                "processing rate must be positive and finite, got {processing_rate}"
            )));
        }
        Ok(TaskType {
            id,
            name: name.into(),
            processing_rate,
        })
    }

    /// Expected processing time `1/λp` for one repetition of this type.
    pub fn expected_processing_time(&self) -> f64 {
        1.0 / self.processing_rate
    }
}

/// An atomic task together with its required number of answer repetitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AtomicTask {
    /// Unique identifier of the task.
    pub id: TaskId,
    /// The difficulty class of the task.
    pub task_type: TaskTypeId,
    /// How many independent answers (repetitions) the requester needs.
    pub repetitions: u32,
}

impl AtomicTask {
    /// Creates an atomic task. Repetitions must be at least one.
    pub fn new(id: TaskId, task_type: TaskTypeId, repetitions: u32) -> Result<Self> {
        if repetitions == 0 {
            return Err(CoreError::ZeroRepetitions { task_id: id.0 });
        }
        Ok(AtomicTask {
            id,
            task_type,
            repetitions,
        })
    }
}

/// The network wire form of one homogeneous batch of tasks: `tasks` atomic
/// tasks of one difficulty class, each requiring `repetitions` answers.
///
/// This is the client-facing description a job submission carries over the
/// wire (see the `crowdtune-gateway` crate): compact, self-contained (no id
/// bookkeeping), and convertible into a validated [`TaskSet`] with
/// [`TaskSet::from_group_specs`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGroupSpec {
    /// Human readable name of the difficulty class, e.g. `"sorting vote"`.
    pub name: String,
    /// Processing-phase clock rate `λp` of the class.
    pub processing_rate: f64,
    /// Number of atomic tasks in this batch.
    pub tasks: u64,
    /// Answer repetitions required per task.
    pub repetitions: u32,
}

/// A set of atomic tasks forming one job, together with the catalogue of task
/// types they reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TaskSet {
    types: Vec<TaskType>,
    tasks: Vec<AtomicTask>,
}

impl TaskSet {
    /// Creates an empty task set.
    pub fn new() -> Self {
        TaskSet::default()
    }

    /// Builds a task set from parts, validating that every task references a
    /// registered type.
    pub fn from_parts(types: Vec<TaskType>, tasks: Vec<AtomicTask>) -> Result<Self> {
        let mut set = TaskSet {
            types,
            tasks: vec![],
        };
        let staged = std::mem::take(&mut set.tasks);
        debug_assert!(staged.is_empty());
        let pending = tasks_into(set, tasks)?;
        Ok(pending)
    }

    /// Builds a task set from the network wire form: one [`TaskGroupSpec`]
    /// per homogeneous batch of tasks. Specs naming the same `(name,
    /// processing-rate)` pair share one registered [`TaskType`], so a job
    /// described as several groups of one difficulty classifies into the same
    /// paper scenario as the equivalent hand-built set (`is_homogeneous_type`
    /// would otherwise split on spurious duplicate type ids).
    pub fn from_group_specs(groups: &[TaskGroupSpec]) -> Result<Self> {
        let mut set = TaskSet::new();
        let mut types: Vec<(String, u64, TaskTypeId)> = Vec::new();
        for group in groups {
            if group.tasks == 0 {
                return Err(CoreError::invalid_argument(format!(
                    "group `{}` declares zero tasks",
                    group.name
                )));
            }
            let rate_bits = group.processing_rate.to_bits();
            let ty = match types
                .iter()
                .find(|(name, bits, _)| *name == group.name && *bits == rate_bits)
            {
                Some(&(_, _, id)) => id,
                None => {
                    let id = set.add_type(group.name.clone(), group.processing_rate)?;
                    types.push((group.name.clone(), rate_bits, id));
                    id
                }
            };
            let count = usize::try_from(group.tasks).map_err(|_| {
                CoreError::invalid_argument(format!(
                    "group `{}` declares {} tasks, beyond addressable range",
                    group.name, group.tasks
                ))
            })?;
            set.add_tasks(ty, group.repetitions, count)?;
        }
        Ok(set)
    }

    /// The inverse of [`TaskSet::from_group_specs`]: collapses the set into
    /// its wire form, one spec per maximal run of tasks sharing type and
    /// repetition count (in task order, so round-tripping preserves the
    /// grouping structure a client submitted).
    pub fn to_group_specs(&self) -> Vec<TaskGroupSpec> {
        let mut specs: Vec<TaskGroupSpec> = Vec::new();
        for task in &self.tasks {
            let ty = self
                .type_by_id(task.task_type)
                .expect("tasks reference registered types");
            match specs.last_mut() {
                Some(last)
                    if last.name == ty.name
                        && last.processing_rate.to_bits() == ty.processing_rate.to_bits()
                        && last.repetitions == task.repetitions =>
                {
                    last.tasks += 1;
                }
                _ => specs.push(TaskGroupSpec {
                    name: ty.name.clone(),
                    processing_rate: ty.processing_rate,
                    tasks: 1,
                    repetitions: task.repetitions,
                }),
            }
        }
        specs
    }

    /// Registers a task type and returns its id.
    pub fn add_type(
        &mut self,
        name: impl Into<String>,
        processing_rate: f64,
    ) -> Result<TaskTypeId> {
        let id = TaskTypeId(self.types.len() as u32);
        self.types.push(TaskType::new(id, name, processing_rate)?);
        Ok(id)
    }

    /// Adds an atomic task of the given type with `repetitions` required
    /// answers, returning its id.
    pub fn add_task(&mut self, task_type: TaskTypeId, repetitions: u32) -> Result<TaskId> {
        if self.type_by_id(task_type).is_none() {
            return Err(CoreError::invalid_argument(format!(
                "unknown task type {task_type}"
            )));
        }
        let id = TaskId(self.tasks.len() as u64);
        self.tasks
            .push(AtomicTask::new(id, task_type, repetitions)?);
        Ok(id)
    }

    /// Adds `count` identical tasks and returns their ids.
    pub fn add_tasks(
        &mut self,
        task_type: TaskTypeId,
        repetitions: u32,
        count: usize,
    ) -> Result<Vec<TaskId>> {
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            ids.push(self.add_task(task_type, repetitions)?);
        }
        Ok(ids)
    }

    /// All registered task types.
    pub fn types(&self) -> &[TaskType] {
        &self.types
    }

    /// All atomic tasks in insertion order.
    pub fn tasks(&self) -> &[AtomicTask] {
        &self.tasks
    }

    /// Number of atomic tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Looks up a type by id.
    pub fn type_by_id(&self, id: TaskTypeId) -> Option<&TaskType> {
        self.types.get(id.0 as usize).filter(|t| t.id == id)
    }

    /// Looks up a task by id.
    pub fn task_by_id(&self, id: TaskId) -> Option<&AtomicTask> {
        self.tasks.get(id.0 as usize).filter(|t| t.id == id)
    }

    /// Repetition counts of all tasks, in task order. Convenient for building
    /// [`Allocation`](crate::money::Allocation)s.
    pub fn repetition_counts(&self) -> Vec<u32> {
        self.tasks.iter().map(|t| t.repetitions).collect()
    }

    /// Total number of repetition slots over all tasks; this is the minimum
    /// budget (in units) any valid allocation requires.
    pub fn total_repetitions(&self) -> u64 {
        self.tasks.iter().map(|t| u64::from(t.repetitions)).sum()
    }

    /// Whether all tasks share a single type.
    pub fn is_homogeneous_type(&self) -> bool {
        self.tasks
            .windows(2)
            .all(|w| w[0].task_type == w[1].task_type)
    }

    /// Whether all tasks require the same number of repetitions.
    pub fn is_uniform_repetitions(&self) -> bool {
        self.tasks
            .windows(2)
            .all(|w| w[0].repetitions == w[1].repetitions)
    }

    /// Groups tasks by repetition count only (the grouping used by
    /// Scenario II / Algorithm 2). Groups are returned sorted by repetition
    /// count.
    pub fn group_by_repetitions(&self) -> Vec<TaskGroup> {
        let mut map: BTreeMap<u32, Vec<TaskId>> = BTreeMap::new();
        for t in &self.tasks {
            map.entry(t.repetitions).or_default().push(t.id);
        }
        map.into_iter()
            .enumerate()
            .map(|(idx, (reps, members))| TaskGroup {
                index: idx,
                task_type: self.tasks[members[0].0 as usize].task_type,
                repetitions: reps,
                members,
            })
            .collect()
    }

    /// Groups tasks by `(type, repetitions)` (the grouping used by
    /// Scenario III / Algorithm 3). Groups are sorted by type then repetition
    /// count.
    pub fn group_by_type_and_repetitions(&self) -> Vec<TaskGroup> {
        let mut map: BTreeMap<(TaskTypeId, u32), Vec<TaskId>> = BTreeMap::new();
        for t in &self.tasks {
            map.entry((t.task_type, t.repetitions))
                .or_default()
                .push(t.id);
        }
        map.into_iter()
            .enumerate()
            .map(|(idx, ((ty, reps), members))| TaskGroup {
                index: idx,
                task_type: ty,
                repetitions: reps,
                members,
            })
            .collect()
    }

    /// Validates the set for use in a tuning problem: at least one task and
    /// every task with at least one repetition (enforced at construction).
    pub fn validate(&self) -> Result<()> {
        if self.tasks.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        Ok(())
    }
}

fn tasks_into(mut set: TaskSet, tasks: Vec<AtomicTask>) -> Result<TaskSet> {
    for t in &tasks {
        if set.type_by_id(t.task_type).is_none() {
            return Err(CoreError::invalid_argument(format!(
                "task {} references unknown type {}",
                t.id, t.task_type
            )));
        }
        if t.repetitions == 0 {
            return Err(CoreError::ZeroRepetitions { task_id: t.id.0 });
        }
    }
    set.tasks = tasks;
    Ok(set)
}

/// A maximal group of tasks sharing repetition count (and, for Scenario III,
/// type). Tuning algorithms RA and HA allocate payments at group granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGroup {
    /// Dense index of the group within the grouping that produced it.
    pub index: usize,
    /// The (representative) type of the group's members.
    pub task_type: TaskTypeId,
    /// Repetition count shared by all members.
    pub repetitions: u32,
    /// Ids of the member tasks.
    pub members: Vec<TaskId>,
}

impl TaskGroup {
    /// Number of member tasks (`n` in the paper's group latency formulas).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Number of repetition slots in this group: `n * k`. Raising the
    /// per-repetition payment of the whole group by one unit costs this many
    /// budget units (the `u_i` of Algorithms 2 and 3).
    pub fn unit_increment_cost(&self) -> u64 {
        self.members.len() as u64 * u64::from(self.repetitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> TaskSet {
        let mut set = TaskSet::new();
        let sort = set.add_type("sorting vote", 2.0).unwrap();
        let filter = set.add_type("yes/no vote", 3.0).unwrap();
        set.add_tasks(sort, 3, 2).unwrap();
        set.add_tasks(filter, 5, 3).unwrap();
        set
    }

    #[test]
    fn group_specs_round_trip_and_share_types() {
        let specs = vec![
            TaskGroupSpec {
                name: "vote".to_owned(),
                processing_rate: 2.0,
                tasks: 3,
                repetitions: 3,
            },
            TaskGroupSpec {
                name: "vote".to_owned(),
                processing_rate: 2.0,
                tasks: 4,
                repetitions: 5,
            },
        ];
        let set = TaskSet::from_group_specs(&specs).unwrap();
        assert_eq!(set.len(), 7);
        // Same (name, rate) pair → one registered type, so the set still
        // classifies as homogeneous (Scenario II shape).
        assert_eq!(set.types().len(), 1);
        assert!(set.is_homogeneous_type());
        assert!(!set.is_uniform_repetitions());
        // The wire form survives the round trip.
        assert_eq!(set.to_group_specs(), specs);
        // And matches the equivalent hand-built set exactly.
        let mut manual = TaskSet::new();
        let ty = manual.add_type("vote", 2.0).unwrap();
        manual.add_tasks(ty, 3, 3).unwrap();
        manual.add_tasks(ty, 5, 4).unwrap();
        assert_eq!(set, manual);
    }

    #[test]
    fn group_specs_distinguish_types_by_name_and_rate() {
        let spec = |name: &str, rate: f64| TaskGroupSpec {
            name: name.to_owned(),
            processing_rate: rate,
            tasks: 2,
            repetitions: 3,
        };
        let set =
            TaskSet::from_group_specs(&[spec("easy", 3.0), spec("hard", 1.0), spec("easy", 1.0)])
                .unwrap();
        assert_eq!(set.types().len(), 3, "name or rate difference splits types");
        assert!(!set.is_homogeneous_type());
    }

    #[test]
    fn group_specs_reject_invalid_shapes() {
        let spec = |tasks: u64, repetitions: u32, rate: f64| TaskGroupSpec {
            name: "t".to_owned(),
            processing_rate: rate,
            tasks,
            repetitions,
        };
        assert!(TaskSet::from_group_specs(&[spec(0, 3, 1.0)]).is_err());
        assert!(TaskSet::from_group_specs(&[spec(2, 0, 1.0)]).is_err());
        assert!(TaskSet::from_group_specs(&[spec(2, 3, 0.0)]).is_err());
        assert!(TaskSet::from_group_specs(&[spec(2, 3, f64::NAN)]).is_err());
        assert!(TaskSet::from_group_specs(&[]).unwrap().is_empty());
    }

    #[test]
    fn task_type_validation() {
        assert!(TaskType::new(TaskTypeId(0), "ok", 1.0).is_ok());
        assert!(TaskType::new(TaskTypeId(0), "bad", 0.0).is_err());
        assert!(TaskType::new(TaskTypeId(0), "bad", -1.0).is_err());
        assert!(TaskType::new(TaskTypeId(0), "bad", f64::NAN).is_err());
        assert!(TaskType::new(TaskTypeId(0), "bad", f64::INFINITY).is_err());
    }

    #[test]
    fn expected_processing_time_is_reciprocal_rate() {
        let t = TaskType::new(TaskTypeId(0), "t", 4.0).unwrap();
        assert!((t.expected_processing_time() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn atomic_task_rejects_zero_repetitions() {
        let err = AtomicTask::new(TaskId(9), TaskTypeId(0), 0).unwrap_err();
        assert_eq!(err, CoreError::ZeroRepetitions { task_id: 9 });
    }

    #[test]
    fn add_task_rejects_unknown_type() {
        let mut set = TaskSet::new();
        assert!(set.add_task(TaskTypeId(3), 1).is_err());
    }

    #[test]
    fn task_set_basic_accessors() {
        let set = sample_set();
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
        assert_eq!(set.types().len(), 2);
        assert_eq!(set.repetition_counts(), vec![3, 3, 5, 5, 5]);
        assert_eq!(set.total_repetitions(), 3 * 2 + 5 * 3);
        assert!(!set.is_homogeneous_type());
        assert!(!set.is_uniform_repetitions());
        assert!(set.validate().is_ok());
        assert!(set.task_by_id(TaskId(4)).is_some());
        assert!(set.task_by_id(TaskId(99)).is_none());
        assert!(set.type_by_id(TaskTypeId(1)).is_some());
        assert!(set.type_by_id(TaskTypeId(9)).is_none());
    }

    #[test]
    fn empty_set_fails_validation() {
        let set = TaskSet::new();
        assert_eq!(set.validate().unwrap_err(), CoreError::EmptyTaskSet);
    }

    #[test]
    fn grouping_by_repetitions_merges_across_types() {
        let mut set = TaskSet::new();
        let a = set.add_type("a", 1.0).unwrap();
        let b = set.add_type("b", 2.0).unwrap();
        set.add_task(a, 3).unwrap();
        set.add_task(b, 3).unwrap();
        set.add_task(b, 5).unwrap();
        let groups = set.group_by_repetitions();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].repetitions, 3);
        assert_eq!(groups[0].size(), 2);
        assert_eq!(groups[1].repetitions, 5);
        assert_eq!(groups[1].size(), 1);
        assert_eq!(groups[0].unit_increment_cost(), 6);
        assert_eq!(groups[1].unit_increment_cost(), 5);
    }

    #[test]
    fn grouping_by_type_and_repetitions_keeps_types_separate() {
        let set = sample_set();
        let groups = set.group_by_type_and_repetitions();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].task_type, TaskTypeId(0));
        assert_eq!(groups[0].repetitions, 3);
        assert_eq!(groups[0].size(), 2);
        assert_eq!(groups[1].task_type, TaskTypeId(1));
        assert_eq!(groups[1].repetitions, 5);
        assert_eq!(groups[1].size(), 3);
        // group indices are dense
        assert_eq!(groups[0].index, 0);
        assert_eq!(groups[1].index, 1);
    }

    #[test]
    fn homogeneous_detection() {
        let mut set = TaskSet::new();
        let a = set.add_type("a", 1.0).unwrap();
        set.add_tasks(a, 5, 10).unwrap();
        assert!(set.is_homogeneous_type());
        assert!(set.is_uniform_repetitions());
    }

    #[test]
    fn from_parts_validates_references() {
        let ty = TaskType::new(TaskTypeId(0), "a", 1.0).unwrap();
        let ok_task = AtomicTask::new(TaskId(0), TaskTypeId(0), 1).unwrap();
        let set = TaskSet::from_parts(vec![ty.clone()], vec![ok_task]).unwrap();
        assert_eq!(set.len(), 1);

        let bad_task = AtomicTask {
            id: TaskId(0),
            task_type: TaskTypeId(7),
            repetitions: 1,
        };
        assert!(TaskSet::from_parts(vec![ty], vec![bad_task]).is_err());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TaskTypeId(2)), "type#2");
        assert_eq!(format!("{}", TaskId(11)), "task#11");
    }
}

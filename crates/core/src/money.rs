//! Discrete money: payments, budgets and per-task allocations.
//!
//! The paper observes that the promised payment on real platforms has a
//! minimum granularity ($0.01 on Amazon Mechanical Turk), which turns budget
//! tuning into a *discrete* optimisation problem. We therefore represent all
//! monetary quantities as integral numbers of **payment units** — one unit is
//! the platform's minimum payment increment (one cent by default).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A payment for a single task repetition, expressed in indivisible payment
/// units (cents on AMT).
///
/// Payments are always strictly positive in a valid allocation: a repetition
/// with no reward would never be accepted.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Payment(pub u64);

impl Payment {
    /// The smallest legal payment: a single unit.
    pub const MIN: Payment = Payment(1);

    /// Zero payment. Only meaningful as an accumulator start value.
    pub const ZERO: Payment = Payment(0);

    /// Creates a payment of `units` units.
    pub const fn units(units: u64) -> Self {
        Payment(units)
    }

    /// Returns the raw number of units.
    pub const fn as_units(self) -> u64 {
        self.0
    }

    /// Returns the payment as a floating point number of units, convenient
    /// when feeding the value into a [`RateModel`](crate::rate::RateModel).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Converts the payment to dollars, given the value of one unit in
    /// dollars (e.g. `0.01` for AMT cents).
    pub fn to_dollars(self, unit_value: f64) -> f64 {
        self.0 as f64 * unit_value
    }

    /// Saturating increment by `delta` units.
    #[must_use]
    pub fn saturating_add(self, delta: u64) -> Self {
        Payment(self.0.saturating_add(delta))
    }
}

impl fmt::Display for Payment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", self.0)
    }
}

impl Add for Payment {
    type Output = Payment;
    fn add(self, rhs: Payment) -> Payment {
        Payment(self.0 + rhs.0)
    }
}

impl AddAssign for Payment {
    fn add_assign(&mut self, rhs: Payment) {
        self.0 += rhs.0;
    }
}

impl Sub for Payment {
    type Output = Payment;
    fn sub(self, rhs: Payment) -> Payment {
        Payment(self.0 - rhs.0)
    }
}

impl SubAssign for Payment {
    fn sub_assign(&mut self, rhs: Payment) {
        self.0 -= rhs.0;
    }
}

impl Sum for Payment {
    fn sum<I: Iterator<Item = Payment>>(iter: I) -> Payment {
        Payment(iter.map(|p| p.0).sum())
    }
}

impl From<u64> for Payment {
    fn from(units: u64) -> Self {
        Payment(units)
    }
}

/// A total budget for a job, expressed in payment units.
///
/// The budget is the single knob the requester controls: the H-Tuning problem
/// (Definition 3 in the paper) asks for the allocation of this budget over the
/// atomic tasks that minimises the latency target.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Budget(pub u64);

impl Budget {
    /// Creates a budget of `units` payment units.
    pub const fn units(units: u64) -> Self {
        Budget(units)
    }

    /// Creates a budget from dollars given the unit value in dollars
    /// (rounding down to whole units).
    pub fn from_dollars(dollars: f64, unit_value: f64) -> Self {
        assert!(unit_value > 0.0, "unit value must be positive");
        Budget((dollars / unit_value).floor().max(0.0) as u64)
    }

    /// Returns the raw number of units.
    pub const fn as_units(self) -> u64 {
        self.0
    }

    /// Returns the budget as `f64` units.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Whether this budget can cover `required` units.
    pub fn covers(self, required: u64) -> bool {
        self.0 >= required
    }

    /// Remaining budget after spending `spent` units (saturating at zero).
    #[must_use]
    pub fn remaining_after(self, spent: u64) -> Budget {
        Budget(self.0.saturating_sub(spent))
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B={}u", self.0)
    }
}

impl From<u64> for Budget {
    fn from(units: u64) -> Self {
        Budget(units)
    }
}

/// The budget allocation produced by a tuning strategy.
///
/// An allocation assigns a [`Payment`] to **every repetition of every atomic
/// task** in the task set. Repetitions of the same task may in principle
/// receive different payments (Algorithm 1 distributes remainder units one by
/// one), so the representation is a ragged matrix: `per_repetition[i][r]` is
/// the payment for repetition `r` of task `i` (task order follows the task
/// set order used to build the allocation).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Allocation {
    per_repetition: Vec<Vec<Payment>>,
}

impl Allocation {
    /// Creates an empty allocation with capacity for `tasks` tasks.
    pub fn with_capacity(tasks: usize) -> Self {
        Allocation {
            per_repetition: Vec::with_capacity(tasks),
        }
    }

    /// Creates an allocation directly from a ragged payment matrix.
    pub fn from_matrix(per_repetition: Vec<Vec<Payment>>) -> Self {
        Allocation { per_repetition }
    }

    /// Creates a flat allocation where every repetition of every task
    /// receives the same payment. `repetitions[i]` is the repetition count of
    /// task `i`.
    pub fn uniform(repetitions: &[u32], payment: Payment) -> Self {
        let per_repetition = repetitions
            .iter()
            .map(|&reps| vec![payment; reps as usize])
            .collect();
        Allocation { per_repetition }
    }

    /// Appends the payments for one task.
    pub fn push_task(&mut self, payments: Vec<Payment>) {
        self.per_repetition.push(payments);
    }

    /// Number of tasks covered by this allocation.
    pub fn task_count(&self) -> usize {
        self.per_repetition.len()
    }

    /// Payments for all repetitions of task `task_index`.
    pub fn task_payments(&self, task_index: usize) -> &[Payment] {
        &self.per_repetition[task_index]
    }

    /// Mutable access to the payments of task `task_index`.
    pub fn task_payments_mut(&mut self, task_index: usize) -> &mut Vec<Payment> {
        &mut self.per_repetition[task_index]
    }

    /// Total payment promised to task `task_index` across all repetitions.
    pub fn task_total(&self, task_index: usize) -> Payment {
        self.per_repetition[task_index].iter().copied().sum()
    }

    /// Total number of units spent across the whole allocation.
    pub fn total_spent(&self) -> u64 {
        self.per_repetition
            .iter()
            .flat_map(|task| task.iter())
            .map(|p| p.as_units())
            .sum()
    }

    /// Whether the allocation stays within `budget`.
    pub fn within_budget(&self, budget: Budget) -> bool {
        self.total_spent() <= budget.as_units()
    }

    /// Whether every repetition receives at least one unit.
    pub fn all_positive(&self) -> bool {
        self.per_repetition
            .iter()
            .all(|task| task.iter().all(|p| p.as_units() >= 1))
    }

    /// Iterator over `(task_index, repetition_index, payment)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Payment)> + '_ {
        self.per_repetition
            .iter()
            .enumerate()
            .flat_map(|(ti, reps)| reps.iter().enumerate().map(move |(ri, &p)| (ti, ri, p)))
    }

    /// The minimum per-repetition payment across the allocation, or `None`
    /// if the allocation is empty.
    pub fn min_payment(&self) -> Option<Payment> {
        self.per_repetition
            .iter()
            .flat_map(|t| t.iter())
            .copied()
            .min()
    }

    /// The maximum per-repetition payment across the allocation, or `None`
    /// if the allocation is empty.
    pub fn max_payment(&self) -> Option<Payment> {
        self.per_repetition
            .iter()
            .flat_map(|t| t.iter())
            .copied()
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payment_arithmetic_behaves_like_units() {
        let a = Payment::units(3);
        let b = Payment::units(4);
        assert_eq!(a + b, Payment::units(7));
        assert_eq!(b - a, Payment::units(1));
        let mut c = a;
        c += b;
        assert_eq!(c, Payment::units(7));
        c -= a;
        assert_eq!(c, Payment::units(4));
        let total: Payment = vec![a, b, c].into_iter().sum();
        assert_eq!(total, Payment::units(11));
    }

    #[test]
    fn payment_conversions() {
        let p = Payment::units(150);
        assert_eq!(p.as_units(), 150);
        assert!((p.as_f64() - 150.0).abs() < f64::EPSILON);
        assert!((p.to_dollars(0.01) - 1.5).abs() < 1e-12);
        assert_eq!(Payment::from(5u64), Payment::units(5));
        assert_eq!(format!("{p}"), "150u");
    }

    #[test]
    fn budget_from_dollars_rounds_down() {
        let b = Budget::from_dollars(6.0, 0.01);
        assert_eq!(b.as_units(), 600);
        let b = Budget::from_dollars(0.057, 0.01);
        assert_eq!(b.as_units(), 5);
        assert!(b.covers(5));
        assert!(!b.covers(6));
        assert_eq!(b.remaining_after(3), Budget::units(2));
        assert_eq!(b.remaining_after(100), Budget::units(0));
    }

    #[test]
    #[should_panic(expected = "unit value must be positive")]
    fn budget_from_dollars_rejects_zero_unit() {
        let _ = Budget::from_dollars(1.0, 0.0);
    }

    #[test]
    fn uniform_allocation_shape_and_totals() {
        let alloc = Allocation::uniform(&[1, 2, 3], Payment::units(2));
        assert_eq!(alloc.task_count(), 3);
        assert_eq!(alloc.task_payments(0), &[Payment::units(2)]);
        assert_eq!(alloc.task_total(2), Payment::units(6));
        assert_eq!(alloc.total_spent(), 12);
        assert!(alloc.within_budget(Budget::units(12)));
        assert!(!alloc.within_budget(Budget::units(11)));
        assert!(alloc.all_positive());
        assert_eq!(alloc.min_payment(), Some(Payment::units(2)));
        assert_eq!(alloc.max_payment(), Some(Payment::units(2)));
    }

    #[test]
    fn allocation_iter_yields_every_repetition() {
        let alloc = Allocation::from_matrix(vec![
            vec![Payment::units(1), Payment::units(2)],
            vec![Payment::units(3)],
        ]);
        let triples: Vec<_> = alloc.iter().collect();
        assert_eq!(
            triples,
            vec![
                (0, 0, Payment::units(1)),
                (0, 1, Payment::units(2)),
                (1, 0, Payment::units(3)),
            ]
        );
    }

    #[test]
    fn allocation_detects_zero_payments() {
        let alloc = Allocation::from_matrix(vec![vec![Payment::units(1), Payment::ZERO]]);
        assert!(!alloc.all_positive());
    }

    #[test]
    fn empty_allocation_edge_cases() {
        let alloc = Allocation::default();
        assert_eq!(alloc.task_count(), 0);
        assert_eq!(alloc.total_spent(), 0);
        assert!(alloc.all_positive());
        assert_eq!(alloc.min_payment(), None);
        assert_eq!(alloc.max_payment(), None);
    }

    #[test]
    fn push_task_and_mutation() {
        let mut alloc = Allocation::with_capacity(2);
        alloc.push_task(vec![Payment::units(1)]);
        alloc.push_task(vec![Payment::units(2), Payment::units(2)]);
        alloc.task_payments_mut(0)[0] = Payment::units(9);
        assert_eq!(alloc.task_total(0), Payment::units(9));
        assert_eq!(alloc.total_spent(), 13);
    }
}

//! High-level facade: build a task set, hand it to a [`Tuner`], get back an
//! allocation and a latency estimate.
//!
//! The lower-level pieces ([`HTuningProblem`], the individual strategies, the
//! estimators) remain available for fine-grained control; the `Tuner` wires
//! them together for the common path used by the examples and by downstream
//! crates (`crowdtune-crowd-db` plans queries and tunes them through this
//! type).

use crate::algorithms::{
    optimal_strategy_for, EvenAllocation, HeterogeneousAlgorithm, RepetitionAlgorithm,
};
use crate::error::Result;
use crate::latency::{JobLatencyEstimator, PhaseSelection};
use crate::money::Budget;
use crate::problem::{HTuningProblem, TuningResult, TuningStrategy};
use crate::rate::RateModel;
use crate::task::TaskSet;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which strategy the tuner should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum StrategyChoice {
    /// Pick EA / RA / HA automatically based on the task-set structure
    /// (the paper's scenario classification).
    #[default]
    Auto,
    /// Force the Even Allocation of Scenario I.
    EvenAllocation,
    /// Force the Repetition Algorithm of Scenario II.
    RepetitionAlgorithm,
    /// Force the Heterogeneous Algorithm of Scenario III.
    HeterogeneousAlgorithm,
}

/// A tuned plan: the allocation plus the estimated expected latency of the
/// job under that allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TunedPlan {
    /// The tuning result (strategy, allocation, objective value).
    pub result: TuningResult,
    /// Analytic estimate of the expected overall latency (both phases).
    pub expected_latency: f64,
    /// Analytic estimate of the expected on-hold-only latency.
    pub expected_on_hold_latency: f64,
}

impl TunedPlan {
    /// Attaches the analytic latency estimates to an already-computed tuning
    /// result. This is the estimate half of [`Tuner::plan`], split out so
    /// serving layers that obtain a [`TuningResult`] without a full solve
    /// (e.g. a plan-family table read) produce plans bit-identical to the
    /// cold path.
    pub fn from_result(problem: &HTuningProblem, result: TuningResult) -> Result<TunedPlan> {
        Ok(Self::from_result_timed(problem, result)?.0)
    }

    /// [`TunedPlan::from_result`] plus the wall-clock nanoseconds the
    /// estimate attach took — the telemetry hook serving layers use to split
    /// "solve" from "estimate" in per-stage latency histograms.
    pub fn from_result_timed(
        problem: &HTuningProblem,
        result: TuningResult,
    ) -> Result<(TunedPlan, u64)> {
        let started = std::time::Instant::now();
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let expected_latency =
            estimator.analytic_expected_latency(&result.allocation, PhaseSelection::Both)?;
        let expected_on_hold_latency =
            estimator.analytic_expected_latency(&result.allocation, PhaseSelection::OnHoldOnly)?;
        let estimate_ns = started.elapsed().as_nanos() as u64;
        Ok((
            TunedPlan {
                result,
                expected_latency,
                expected_on_hold_latency,
            },
            estimate_ns,
        ))
    }
}

/// Wall-clock breakdown of a [`Tuner::plan_timed`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanTiming {
    /// Nanoseconds spent in the strategy solve (problem build included).
    pub solve_ns: u64,
    /// Nanoseconds spent attaching the analytic latency estimates.
    pub estimate_ns: u64,
}

/// High-level budget tuner.
#[derive(Clone)]
pub struct Tuner {
    rate_model: Arc<dyn RateModel>,
    strategy: StrategyChoice,
}

impl Tuner {
    /// Creates a tuner for the given market (on-hold rate model), with
    /// automatic strategy selection.
    pub fn new(rate_model: Arc<dyn RateModel>) -> Self {
        Tuner {
            rate_model,
            strategy: StrategyChoice::Auto,
        }
    }

    /// Overrides the strategy choice.
    pub fn with_strategy(mut self, strategy: StrategyChoice) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured strategy choice.
    pub fn strategy(&self) -> StrategyChoice {
        self.strategy
    }

    /// The market rate model.
    pub fn rate_model(&self) -> &Arc<dyn RateModel> {
        &self.rate_model
    }

    /// Builds the [`HTuningProblem`] for a task set and budget.
    pub fn problem(&self, task_set: TaskSet, budget: Budget) -> Result<HTuningProblem> {
        HTuningProblem::new(task_set, budget, self.rate_model.clone())
    }

    /// Tunes the budget for the task set and returns the raw result.
    pub fn tune(&self, task_set: TaskSet, budget: Budget) -> Result<TuningResult> {
        let problem = self.problem(task_set, budget)?;
        self.tune_problem(&problem)
    }

    /// Tunes a pre-built problem.
    pub fn tune_problem(&self, problem: &HTuningProblem) -> Result<TuningResult> {
        let strategy: Box<dyn TuningStrategy> = match self.strategy {
            StrategyChoice::Auto => optimal_strategy_for(problem),
            StrategyChoice::EvenAllocation => Box::new(EvenAllocation::new()),
            StrategyChoice::RepetitionAlgorithm => Box::new(RepetitionAlgorithm::new()),
            StrategyChoice::HeterogeneousAlgorithm => Box::new(HeterogeneousAlgorithm::new()),
        };
        strategy.tune(problem)
    }

    /// Tunes the budget and attaches analytic latency estimates for the
    /// resulting allocation.
    pub fn plan(&self, task_set: TaskSet, budget: Budget) -> Result<TunedPlan> {
        Ok(self.plan_timed(task_set, budget)?.0)
    }

    /// [`Tuner::plan`] plus a wall-clock solve/estimate breakdown — the
    /// telemetry hook for serving layers that report per-stage latency.
    pub fn plan_timed(&self, task_set: TaskSet, budget: Budget) -> Result<(TunedPlan, PlanTiming)> {
        let started = std::time::Instant::now();
        let problem = self.problem(task_set, budget)?;
        let result = self.tune_problem(&problem)?;
        let solve_ns = started.elapsed().as_nanos() as u64;
        let (plan, estimate_ns) = TunedPlan::from_result_timed(&problem, result)?;
        Ok((
            plan,
            PlanTiming {
                solve_ns,
                estimate_ns,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::LinearRate;

    fn homogeneous_set() -> TaskSet {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", 2.0).unwrap();
        set.add_tasks(ty, 5, 10).unwrap();
        set
    }

    fn heterogeneous_set() -> TaskSet {
        let mut set = TaskSet::new();
        let easy = set.add_type("easy", 3.0).unwrap();
        let hard = set.add_type("hard", 1.0).unwrap();
        set.add_tasks(easy, 3, 4).unwrap();
        set.add_tasks(hard, 5, 4).unwrap();
        set
    }

    #[test]
    fn auto_strategy_selects_per_scenario() {
        let tuner = Tuner::new(Arc::new(LinearRate::unit_slope()));
        assert_eq!(tuner.strategy(), StrategyChoice::Auto);
        let result = tuner.tune(homogeneous_set(), Budget::units(200)).unwrap();
        assert_eq!(result.strategy, "EA");
        let result = tuner.tune(heterogeneous_set(), Budget::units(200)).unwrap();
        assert_eq!(result.strategy, "HA");
    }

    #[test]
    fn forced_strategy_is_respected() {
        let tuner = Tuner::new(Arc::new(LinearRate::unit_slope()))
            .with_strategy(StrategyChoice::RepetitionAlgorithm);
        let result = tuner.tune(heterogeneous_set(), Budget::units(200)).unwrap();
        assert_eq!(result.strategy, "RA");
        let tuner = tuner.with_strategy(StrategyChoice::EvenAllocation);
        let result = tuner.tune(homogeneous_set(), Budget::units(200)).unwrap();
        assert_eq!(result.strategy, "EA");
        let tuner = tuner.with_strategy(StrategyChoice::HeterogeneousAlgorithm);
        let result = tuner.tune(homogeneous_set(), Budget::units(200)).unwrap();
        assert_eq!(result.strategy, "HA");
    }

    #[test]
    fn plan_reports_consistent_latency_estimates() {
        let tuner = Tuner::new(Arc::new(LinearRate::moderate()));
        let plan = tuner.plan(heterogeneous_set(), Budget::units(300)).unwrap();
        assert!(plan.expected_latency > plan.expected_on_hold_latency);
        assert!(plan.expected_on_hold_latency > 0.0);
        assert!(plan.result.allocation.total_spent() <= 300);
    }

    #[test]
    fn plan_latency_improves_with_budget() {
        let tuner = Tuner::new(Arc::new(LinearRate::unit_slope()));
        let small = tuner.plan(homogeneous_set(), Budget::units(60)).unwrap();
        let large = tuner.plan(homogeneous_set(), Budget::units(600)).unwrap();
        assert!(large.expected_latency < small.expected_latency);
    }

    #[test]
    fn insufficient_budget_is_rejected() {
        let tuner = Tuner::new(Arc::new(LinearRate::unit_slope()));
        // 10 tasks × 5 reps = 50 slots; 49 units is not enough.
        assert!(tuner.tune(homogeneous_set(), Budget::units(49)).is_err());
        assert!(tuner.rate_model().on_hold_rate(1.0) > 0.0);
    }
}

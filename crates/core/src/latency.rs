//! Expected-latency computation for task groups and whole allocations.
//!
//! Two levels of machinery live here:
//!
//! 1. **Group formulas** used inside the tuning algorithms (Section 4.3.1 of
//!    the paper): expected phase-1 latency of a group of `n` tasks each
//!    requiring `k` repetitions at a common per-repetition payment, and the
//!    expected phase-2 (processing) latency that the payment cannot change.
//!
//! 2. **A job-level estimator** ([`JobLatencyEstimator`]) that evaluates an
//!    arbitrary [`Allocation`] against a [`TaskSet`]: analytically via a
//!    moment-matched Gamma approximation of each task's latency, and exactly
//!    in distribution via Monte Carlo sampling. The two are cross-validated
//!    in the test suite and in the ablation benches.

use crate::error::{CoreError, Result};
use crate::money::Allocation;
use crate::rate::RateModel;
use crate::stats::exponential::Exponential;
use crate::stats::numerical::integrate_to_infinity;
use crate::stats::order_stats::expected_max_erlang;
use crate::stats::special::GammaDist;
use crate::task::{TaskGroup, TaskSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which latency phases an estimate should include.
///
/// Scenarios I and II tune only the on-hold phase because the payment cannot
/// influence processing time and the processing phase is identical across
/// homogeneous tasks; Scenario III and the end-to-end experiments need both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PhaseSelection {
    /// Only the on-hold (acceptance) phase.
    OnHoldOnly,
    /// On-hold plus processing phase.
    #[default]
    Both,
}

impl PhaseSelection {
    /// Whether the processing phase is included.
    pub fn includes_processing(self) -> bool {
        matches!(self, PhaseSelection::Both)
    }
}

/// Expected phase-1 (on-hold) latency of a task group: the expected maximum
/// over `group_size` independent `Erlang(repetitions, on_hold_rate)`
/// latencies. This is the `E{L(g)}` of Section 4.3.1.
pub fn group_phase1_expected(group_size: u64, repetitions: u32, on_hold_rate: f64) -> Result<f64> {
    expected_max_erlang(group_size, repetitions, on_hold_rate)
}

/// Expected phase-2 (processing) latency accumulated by one task of the
/// group: `repetitions / processing_rate`. Independent of payment.
pub fn group_phase2_expected(repetitions: u32, processing_rate: f64) -> Result<f64> {
    if !processing_rate.is_finite() || processing_rate <= 0.0 {
        return Err(CoreError::invalid_distribution(format!(
            "processing rate must be positive and finite, got {processing_rate}"
        )));
    }
    Ok(f64::from(repetitions) / processing_rate)
}

/// Expected phase-1 + phase-2 latency of a task group; the `O2` component of
/// Scenario III (`E{L1(gi)} + E{L2(gi)}`).
pub fn group_total_expected(
    group_size: u64,
    repetitions: u32,
    on_hold_rate: f64,
    processing_rate: f64,
) -> Result<f64> {
    Ok(
        group_phase1_expected(group_size, repetitions, on_hold_rate)?
            + group_phase2_expected(repetitions, processing_rate)?,
    )
}

/// Expected phase-1 latency of a [`TaskGroup`] under a rate model and a
/// per-repetition payment (all repetitions of the group share the payment —
/// Lemma 2 shows the even split is optimal within a task).
pub fn group_phase1_expected_at_payment<M: RateModel + ?Sized>(
    group: &TaskGroup,
    rate_model: &M,
    per_repetition_payment: u64,
) -> Result<f64> {
    let rate = rate_model.on_hold_rate(per_repetition_payment as f64);
    if !rate.is_finite() || rate <= 0.0 {
        return Err(CoreError::InvalidRate {
            payment: per_repetition_payment,
            rate,
        });
    }
    group_phase1_expected(group.size() as u64, group.repetitions, rate)
}

/// Summary of a single task's latency distribution under an allocation:
/// mean and variance of each phase, used by the Gamma moment matching.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TaskLatencyMoments {
    /// Mean of the phase-1 (on-hold) latency summed across repetitions.
    pub phase1_mean: f64,
    /// Variance of the phase-1 latency.
    pub phase1_var: f64,
    /// Mean of the phase-2 (processing) latency summed across repetitions.
    pub phase2_mean: f64,
    /// Variance of the phase-2 latency.
    pub phase2_var: f64,
}

impl TaskLatencyMoments {
    /// Mean of the selected phases.
    pub fn mean(&self, phases: PhaseSelection) -> f64 {
        match phases {
            PhaseSelection::OnHoldOnly => self.phase1_mean,
            PhaseSelection::Both => self.phase1_mean + self.phase2_mean,
        }
    }

    /// Variance of the selected phases (phases are independent).
    pub fn variance(&self, phases: PhaseSelection) -> f64 {
        match phases {
            PhaseSelection::OnHoldOnly => self.phase1_var,
            PhaseSelection::Both => self.phase1_var + self.phase2_var,
        }
    }
}

/// Evaluates the expected overall latency of a job (the expected maximum of
/// the per-task latencies, Section 3.2.1) for an arbitrary allocation.
pub struct JobLatencyEstimator<'a, M: RateModel + ?Sized> {
    task_set: &'a TaskSet,
    rate_model: &'a M,
}

impl<'a, M: RateModel + ?Sized> JobLatencyEstimator<'a, M> {
    /// Creates an estimator for the given task set and on-hold rate model.
    pub fn new(task_set: &'a TaskSet, rate_model: &'a M) -> Self {
        JobLatencyEstimator {
            task_set,
            rate_model,
        }
    }

    /// Per-task latency moments under the allocation.
    pub fn task_moments(&self, allocation: &Allocation) -> Result<Vec<TaskLatencyMoments>> {
        self.task_set.validate()?;
        if allocation.task_count() != self.task_set.len() {
            return Err(CoreError::invalid_argument(format!(
                "allocation covers {} tasks but the task set has {}",
                allocation.task_count(),
                self.task_set.len()
            )));
        }
        let mut out = Vec::with_capacity(self.task_set.len());
        for (index, task) in self.task_set.tasks().iter().enumerate() {
            let payments = allocation.task_payments(index);
            if payments.len() != task.repetitions as usize {
                return Err(CoreError::invalid_argument(format!(
                    "task {index} has {} repetitions but the allocation provides {} payments",
                    task.repetitions,
                    payments.len()
                )));
            }
            let mut phase1_mean = 0.0;
            let mut phase1_var = 0.0;
            for payment in payments {
                let rate = self.rate_model.on_hold_rate(payment.as_f64());
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(CoreError::InvalidRate {
                        payment: payment.as_units(),
                        rate,
                    });
                }
                phase1_mean += 1.0 / rate;
                phase1_var += 1.0 / (rate * rate);
            }
            let task_type = self
                .task_set
                .type_by_id(task.task_type)
                .ok_or_else(|| CoreError::invalid_argument("task references unknown type"))?;
            let lp = task_type.processing_rate;
            let reps = f64::from(task.repetitions);
            out.push(TaskLatencyMoments {
                phase1_mean,
                phase1_var,
                phase2_mean: reps / lp,
                phase2_var: reps / (lp * lp),
            });
        }
        Ok(out)
    }

    /// Analytic estimate of the expected job latency.
    ///
    /// Each task's latency (a sum of exponential phases with possibly
    /// distinct rates) is approximated by a Gamma distribution with matched
    /// mean and variance; the expected maximum is then computed from the
    /// product of the per-task CDFs. For allocations with equal per-repetition
    /// payments the Gamma is exact (it reduces to an Erlang).
    pub fn analytic_expected_latency(
        &self,
        allocation: &Allocation,
        phases: PhaseSelection,
    ) -> Result<f64> {
        let moments = self.task_moments(allocation)?;
        // Collapse identical task profiles before integrating: the optimal
        // allocations pay every member of a group the same per-repetition
        // amount, so a job with hundreds of tasks typically has only a
        // handful of distinct `(shape, rate)` pairs. Each quadrature point
        // then costs one frozen-Gamma CDF per *distinct profile* (raised to
        // the multiplicity) instead of one incomplete-gamma evaluation per
        // task — the integrand this saves on used to dominate the whole
        // serve path.
        let mut profiles: Vec<(GammaDist, i32)> = Vec::with_capacity(moments.len().min(16));
        let mut profile_index: HashMap<(u64, u64), usize> = HashMap::new();
        let mut scale = 0.0_f64;
        for m in &moments {
            let mean = m.mean(phases);
            let var = m.variance(phases);
            if mean <= 0.0 || var <= 0.0 {
                return Err(CoreError::invalid_distribution(
                    "task latency moments must be positive".to_owned(),
                ));
            }
            let shape = mean * mean / var;
            let rate = mean / var;
            match profile_index.entry((shape.to_bits(), rate.to_bits())) {
                std::collections::hash_map::Entry::Occupied(entry) => {
                    profiles[*entry.get()].1 += 1;
                }
                std::collections::hash_map::Entry::Vacant(entry) => {
                    entry.insert(profiles.len());
                    profiles.push((GammaDist::new(shape, rate)?, 1));
                }
            }
            scale = scale.max(mean + 4.0 * var.sqrt());
        }
        integrate_to_infinity(
            move |t| {
                let mut product = 1.0;
                for &(dist, count) in &profiles {
                    let c = dist.cdf(t).unwrap_or(0.0);
                    product *= if count == 1 { c } else { c.powi(count) };
                    if product == 0.0 {
                        break;
                    }
                }
                1.0 - product
            },
            scale,
            1e-8,
        )
    }

    /// Monte-Carlo estimate of the expected job latency. Exact in
    /// distribution; the precision improves as `1/sqrt(trials)`.
    pub fn monte_carlo_expected_latency(
        &self,
        allocation: &Allocation,
        phases: PhaseSelection,
        trials: usize,
        seed: u64,
    ) -> Result<f64> {
        if trials == 0 {
            return Err(CoreError::invalid_argument(
                "at least one Monte Carlo trial is required".to_owned(),
            ));
        }
        self.task_set.validate()?;
        if allocation.task_count() != self.task_set.len() {
            return Err(CoreError::invalid_argument(format!(
                "allocation covers {} tasks but the task set has {}",
                allocation.task_count(),
                self.task_set.len()
            )));
        }
        // Pre-build the per-repetition exponential samplers once.
        let mut task_samplers: Vec<(Vec<Exponential>, Exponential, u32)> =
            Vec::with_capacity(self.task_set.len());
        for (index, task) in self.task_set.tasks().iter().enumerate() {
            let payments = allocation.task_payments(index);
            if payments.len() != task.repetitions as usize {
                return Err(CoreError::invalid_argument(format!(
                    "task {index} has {} repetitions but the allocation provides {} payments",
                    task.repetitions,
                    payments.len()
                )));
            }
            let mut on_hold = Vec::with_capacity(payments.len());
            for payment in payments {
                let rate = self.rate_model.on_hold_rate(payment.as_f64());
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(CoreError::InvalidRate {
                        payment: payment.as_units(),
                        rate,
                    });
                }
                on_hold.push(Exponential::new(rate)?);
            }
            let task_type = self
                .task_set
                .type_by_id(task.task_type)
                .ok_or_else(|| CoreError::invalid_argument("task references unknown type"))?;
            let processing = Exponential::new(task_type.processing_rate)?;
            task_samplers.push((on_hold, processing, task.repetitions));
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut job_latency = 0.0_f64;
            for (on_hold, processing, reps) in &task_samplers {
                let mut task_latency = 0.0;
                for sampler in on_hold {
                    task_latency += sampler.sample(&mut rng);
                }
                if phases.includes_processing() {
                    for _ in 0..*reps {
                        task_latency += processing.sample(&mut rng);
                    }
                }
                job_latency = job_latency.max(task_latency);
            }
            acc += job_latency;
        }
        Ok(acc / trials as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::money::Payment;
    use crate::rate::LinearRate;
    use crate::stats::order_stats::expected_max_exponential;

    fn homogeneous_set(tasks: usize, reps: u32, lp: f64) -> TaskSet {
        let mut set = TaskSet::new();
        let ty = set.add_type("vote", lp).unwrap();
        set.add_tasks(ty, reps, tasks).unwrap();
        set
    }

    #[test]
    fn phase_selection_flags() {
        assert!(!PhaseSelection::OnHoldOnly.includes_processing());
        assert!(PhaseSelection::Both.includes_processing());
        assert_eq!(PhaseSelection::default(), PhaseSelection::Both);
    }

    #[test]
    fn group_phase_formulas() {
        // single round, single task: 1/λ
        assert!((group_phase1_expected(1, 1, 2.0).unwrap() - 0.5).abs() < 1e-12);
        // single round, n tasks: H_n / λ
        let v = group_phase1_expected(4, 1, 2.0).unwrap();
        assert!((v - expected_max_exponential(4, 2.0).unwrap()).abs() < 1e-12);
        // phase 2 is reps / λp
        assert!((group_phase2_expected(5, 2.0).unwrap() - 2.5).abs() < 1e-12);
        assert!(group_phase2_expected(5, 0.0).is_err());
        // total is the sum
        let total = group_total_expected(4, 1, 2.0, 2.0).unwrap();
        assert!((total - (v + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn group_phase1_at_payment_uses_rate_model() {
        let set = homogeneous_set(3, 2, 2.0);
        let groups = set.group_by_repetitions();
        let model = LinearRate::unit_slope();
        let low = group_phase1_expected_at_payment(&groups[0], &model, 1).unwrap();
        let high = group_phase1_expected_at_payment(&groups[0], &model, 10).unwrap();
        assert!(high < low, "more payment must not slow the group down");
    }

    #[test]
    fn task_moments_match_hand_computation() {
        let set = homogeneous_set(1, 2, 4.0);
        let model = LinearRate::unit_slope(); // λo(p) = p + 1
        let estimator = JobLatencyEstimator::new(&set, &model);
        let alloc = Allocation::from_matrix(vec![vec![Payment::units(1), Payment::units(3)]]);
        let moments = estimator.task_moments(&alloc).unwrap();
        assert_eq!(moments.len(), 1);
        let m = moments[0];
        assert!((m.phase1_mean - (0.5 + 0.25)).abs() < 1e-12);
        assert!((m.phase1_var - (0.25 + 0.0625)).abs() < 1e-12);
        assert!((m.phase2_mean - 0.5).abs() < 1e-12);
        assert!((m.phase2_var - 0.125).abs() < 1e-12);
        assert!((m.mean(PhaseSelection::Both) - 1.25).abs() < 1e-12);
        assert!((m.variance(PhaseSelection::OnHoldOnly) - 0.3125).abs() < 1e-12);
    }

    #[test]
    fn estimator_rejects_mismatched_allocation() {
        let set = homogeneous_set(2, 2, 1.0);
        let model = LinearRate::unit_slope();
        let estimator = JobLatencyEstimator::new(&set, &model);
        // wrong number of tasks
        let alloc = Allocation::uniform(&[2], Payment::units(1));
        assert!(estimator.task_moments(&alloc).is_err());
        // wrong number of repetitions in one task
        let alloc = Allocation::from_matrix(vec![
            vec![Payment::units(1)],
            vec![Payment::units(1), Payment::units(1)],
        ]);
        assert!(estimator.task_moments(&alloc).is_err());
        assert!(estimator
            .monte_carlo_expected_latency(&alloc, PhaseSelection::Both, 10, 1)
            .is_err());
    }

    #[test]
    fn analytic_matches_closed_form_for_single_round_homogeneous_tasks() {
        // n identical single-round tasks with equal payments: expected max is
        // H_n / λ exactly, and the Gamma approximation is exact there.
        let set = homogeneous_set(6, 1, 10.0);
        let model = LinearRate::new(1.0, 0.0).unwrap(); // λ = p
        let estimator = JobLatencyEstimator::new(&set, &model);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(4));
        let analytic = estimator
            .analytic_expected_latency(&alloc, PhaseSelection::OnHoldOnly)
            .unwrap();
        let exact = expected_max_exponential(6, 4.0).unwrap();
        assert!(
            (analytic - exact).abs() < 1e-4,
            "analytic {analytic} vs exact {exact}"
        );
    }

    #[test]
    fn analytic_matches_monte_carlo_for_mixed_allocation() {
        let mut set = TaskSet::new();
        let easy = set.add_type("easy", 3.0).unwrap();
        let hard = set.add_type("hard", 1.0).unwrap();
        set.add_tasks(easy, 2, 3).unwrap();
        set.add_tasks(hard, 4, 2).unwrap();
        let model = LinearRate::moderate();
        let estimator = JobLatencyEstimator::new(&set, &model);
        let alloc = Allocation::from_matrix(vec![
            vec![Payment::units(2), Payment::units(2)],
            vec![Payment::units(1), Payment::units(3)],
            vec![Payment::units(2), Payment::units(2)],
            vec![Payment::units(5); 4],
            vec![Payment::units(1); 4],
        ]);
        let analytic = estimator
            .analytic_expected_latency(&alloc, PhaseSelection::Both)
            .unwrap();
        let mc = estimator
            .monte_carlo_expected_latency(&alloc, PhaseSelection::Both, 60_000, 99)
            .unwrap();
        assert!(
            (analytic - mc).abs() / mc < 0.05,
            "analytic {analytic} vs monte carlo {mc}"
        );
    }

    #[test]
    fn monte_carlo_is_deterministic_per_seed() {
        let set = homogeneous_set(4, 2, 2.0);
        let model = LinearRate::unit_slope();
        let estimator = JobLatencyEstimator::new(&set, &model);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(3));
        let a = estimator
            .monte_carlo_expected_latency(&alloc, PhaseSelection::Both, 5_000, 7)
            .unwrap();
        let b = estimator
            .monte_carlo_expected_latency(&alloc, PhaseSelection::Both, 5_000, 7)
            .unwrap();
        assert_eq!(a, b);
        let c = estimator
            .monte_carlo_expected_latency(&alloc, PhaseSelection::Both, 5_000, 8)
            .unwrap();
        assert_ne!(a, c);
        assert!(estimator
            .monte_carlo_expected_latency(&alloc, PhaseSelection::Both, 0, 7)
            .is_err());
    }

    #[test]
    fn more_budget_reduces_expected_latency() {
        let set = homogeneous_set(10, 3, 2.0);
        let model = LinearRate::unit_slope();
        let estimator = JobLatencyEstimator::new(&set, &model);
        let cheap = Allocation::uniform(&set.repetition_counts(), Payment::units(1));
        let rich = Allocation::uniform(&set.repetition_counts(), Payment::units(10));
        let cheap_latency = estimator
            .analytic_expected_latency(&cheap, PhaseSelection::OnHoldOnly)
            .unwrap();
        let rich_latency = estimator
            .analytic_expected_latency(&rich, PhaseSelection::OnHoldOnly)
            .unwrap();
        assert!(rich_latency < cheap_latency);
    }

    #[test]
    fn processing_phase_adds_latency() {
        let set = homogeneous_set(5, 2, 1.0);
        let model = LinearRate::unit_slope();
        let estimator = JobLatencyEstimator::new(&set, &model);
        let alloc = Allocation::uniform(&set.repetition_counts(), Payment::units(4));
        let phase1 = estimator
            .analytic_expected_latency(&alloc, PhaseSelection::OnHoldOnly)
            .unwrap();
        let both = estimator
            .analytic_expected_latency(&alloc, PhaseSelection::Both)
            .unwrap();
        assert!(both > phase1);
    }
}

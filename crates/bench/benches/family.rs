//! Budget-ladder benchmark of cross-job solve reuse (`dp_family`): many
//! tenants submit the *same* fig2-sized RA workload at a *spread of
//! budgets*. Without plan families every job pays a full cold solve; with
//! them the first job seeds a shared budget-indexed `DpTable` and every
//! other budget is a prefix read (budget below the table's coverage) or an
//! in-place warm-start extension (budget above it).
//!
//! Two levels are reported, both as medians over rounds with fresh rate
//! curves (so every "cold" number really is cold — the process-wide
//! interned latency tables are keyed by curve):
//!
//! * **serve level** — `PlanFamilies::serve` vs a cold `Tuner::plan`: what a
//!   job actually costs end to end, latency estimates included;
//! * **solve level** — the table read/extension alone vs the cold RA solve:
//!   the DP work the family layer removes.
//!
//! Results are printed and written to `BENCH_family.json` (override the
//! path with `BENCH_FAMILY_JSON`). Family-served plans are asserted
//! bit-identical to cold solves for every measured budget before any timing
//! is recorded.
//!
//! Set `CROWDTUNE_BENCH_QUICK=1` for the reduced CI smoke version.

use criterion::{criterion_group, criterion_main, Criterion};
use crowdtune_core::algorithms::RepetitionAlgorithm;
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, TunedPlan, Tuner};
use crowdtune_serve::{FamilyFingerprint, FamilyServe, PlanFamilies};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::var("CROWDTUNE_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The paper's Figure 2 Scenario-II shape: 100 tasks, half needing 3
/// repetitions, half 5, identical difficulty.
fn fig2_task_set() -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, 50).unwrap();
    set.add_tasks(ty, 5, 50).unwrap();
    set
}

fn problem(set: &TaskSet, budget: u64, model: &Arc<LinearRate>) -> HTuningProblem {
    HTuningProblem::new(set.clone(), Budget::units(budget), model.clone()).unwrap()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn assert_bit_identical(served: &TunedPlan, cold: &TunedPlan, context: &str) {
    assert_eq!(
        served.result.allocation, cold.result.allocation,
        "{context}"
    );
    assert_eq!(
        served.result.objective.unwrap().to_bits(),
        cold.result.objective.unwrap().to_bits(),
        "{context}"
    );
    assert_eq!(
        served.expected_latency.to_bits(),
        cold.expected_latency.to_bits(),
        "{context}"
    );
}

struct Row {
    budget: u64,
    kind: &'static str,
    cold_serve_ns: f64,
    family_serve_ns: f64,
    cold_solve_ns: f64,
    /// `None` for the seed row: seeding *is* the cold solve.
    family_solve_ns: Option<f64>,
}

fn bench_family_ladder(_c: &mut Criterion) {
    let quick = quick_mode();
    let rounds = if quick { 3 } else { 9 };
    // Ladder order matters: the first budget seeds the family, budgets below
    // it are prefix reads, budgets above it extend the table in place.
    let ladder: &[(u64, &'static str)] = &[
        (3000, "seed"),
        (1000, "prefix"),
        (2000, "prefix"),
        (4000, "extend"),
        (5000, "extend"),
    ];
    let set = fig2_task_set();
    let strategy = StrategyChoice::RepetitionAlgorithm;

    // Correctness gate before timing: family answers across the whole
    // ladder are bit-identical to cold solves.
    {
        let model = Arc::new(LinearRate::new(1.0, 1.0).unwrap());
        let families = PlanFamilies::new(4);
        for &(budget, _) in ladder {
            let p = problem(&set, budget, &model);
            let (plan, _) = families
                .serve(FamilyFingerprint::of(&p, strategy), &p)
                .unwrap();
            let cold = Tuner::new(model.clone())
                .plan(set.clone(), Budget::units(budget))
                .unwrap();
            assert_bit_identical(&plan, &cold, &format!("budget {budget}"));
        }
    }

    // Each measured sample gets a fresh curve (unique slope) so its cold
    // numbers pay the full latency-table integrations, exactly like the
    // first-ever job over that curve.
    let mut next_curve = 0u64;
    let mut fresh_model = move || {
        next_curve += 1;
        Arc::new(LinearRate::new(1.0 + next_curve as f64 * 1e-6, 1.0).unwrap())
    };

    let mut rows: Vec<Row> = Vec::new();
    for (index, &(budget, kind)) in ladder.iter().enumerate() {
        let mut cold_serve = Vec::new();
        let mut family_serve = Vec::new();
        let mut cold_solve = Vec::new();
        let mut family_solve = Vec::new();
        for _ in 0..rounds {
            // Cold baselines: fresh curves per sample so the latency-table
            // integrations are genuinely cold.
            let model = fresh_model();
            let start = Instant::now();
            let plan = Tuner::new(model.clone())
                .with_strategy(strategy)
                .plan(set.clone(), Budget::units(budget))
                .unwrap();
            cold_serve.push(start.elapsed().as_secs_f64() * 1e9);
            black_box(plan);
            let model = fresh_model();
            let p_solve = problem(&set, budget, &model);
            let start = Instant::now();
            let result = RepetitionAlgorithm::new().tune(&p_solve).unwrap();
            cold_solve.push(start.elapsed().as_secs_f64() * 1e9);
            black_box(result);

            if index == 0 {
                // The seed row measures the family build itself (a cold
                // solve plus table retention).
                let model = fresh_model();
                let families = PlanFamilies::new(4);
                let p = problem(&set, budget, &model);
                let key = FamilyFingerprint::of(&p, strategy);
                let start = Instant::now();
                let (plan, how) = families.serve(key, &p).unwrap();
                family_serve.push(start.elapsed().as_secs_f64() * 1e9);
                assert_eq!(how, FamilyServe::Seeded);
                black_box(plan);
            } else {
                // Serve level: seed the family at the ladder head with a
                // fresh curve, then time serving this budget from it.
                let model = fresh_model();
                let families = PlanFamilies::new(4);
                let seed_problem = problem(&set, ladder[0].0, &model);
                let key = FamilyFingerprint::of(&seed_problem, strategy);
                let (_, how) = families.serve(key, &seed_problem).unwrap();
                assert_eq!(how, FamilyServe::Seeded);
                let p = problem(&set, budget, &model);
                let start = Instant::now();
                let (plan, how) = families.serve(key, &p).unwrap();
                family_serve.push(start.elapsed().as_secs_f64() * 1e9);
                assert_eq!(how, FamilyServe::Hit);
                black_box(plan);

                // Solve level: the table read (and, for "extend" rows, the
                // warm-start growth the first job at that budget pays)
                // without the latency estimates — measured on a fresh table
                // so the extension cost is not already paid.
                let model = fresh_model();
                let p0 = problem(&set, ladder[0].0, &model);
                let (_, mut table) = RepetitionAlgorithm::new().tune_with_table(&p0).unwrap();
                let p = problem(&set, budget, &model);
                let start = Instant::now();
                RepetitionAlgorithm::extend_table(&p, &mut table).unwrap();
                let result = RepetitionAlgorithm::result_from_table(&p, &table).unwrap();
                family_solve.push(start.elapsed().as_secs_f64() * 1e9);
                black_box(result);
            }
        }
        rows.push(Row {
            budget,
            kind,
            cold_serve_ns: median(cold_serve),
            family_serve_ns: median(family_serve),
            cold_solve_ns: median(cold_solve),
            family_solve_ns: (!family_solve.is_empty()).then(|| median(family_solve)),
        });
    }

    let mut serve_speedups = Vec::new();
    let mut solve_speedups = Vec::new();
    for row in &rows {
        let serve_speedup = row.cold_serve_ns / row.family_serve_ns;
        println!(
            "dp_family/fig2_ra/budget/{:<5} [{:>6}] cold serve {:>10.0} ns | family serve \
             {:>10.0} ns ({serve_speedup:>5.1}x) | cold solve {:>10.0} ns | family solve \
             {:>10.0} ns",
            row.budget,
            row.kind,
            row.cold_serve_ns,
            row.family_serve_ns,
            row.cold_solve_ns,
            row.family_solve_ns.unwrap_or(f64::NAN),
        );
        if let Some(family_solve_ns) = row.family_solve_ns {
            serve_speedups.push(serve_speedup);
            solve_speedups.push(row.cold_solve_ns / family_solve_ns);
        }
    }
    let median_serve_speedup = median(serve_speedups);
    let median_solve_speedup = median(solve_speedups);
    println!(
        "dp_family: family-hit median speedup vs per-job cold: {median_serve_speedup:.1}x \
         end-to-end (latency estimates included), {median_solve_speedup:.1}x solve-only"
    );

    let json_path = std::env::var("BENCH_FAMILY_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_family.json").to_owned()
    });
    let mut json = String::from("{\n  \"bench\": \"dp_family_budget_ladder_fig2_ra\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"median_family_hit_speedup_end_to_end\": {median_serve_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"median_family_hit_speedup_solve_only\": {median_solve_speedup:.2},\n  \"results\": [\n"
    ));
    for (idx, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"budget\": {}, \"kind\": \"{}\", \"cold_serve_ns\": {:.0}, \
             \"family_serve_ns\": {:.0}, \"serve_speedup\": {:.2}, \"cold_solve_ns\": {:.0}, \
             \"family_solve_ns\": {}}}{}",
            row.budget,
            row.kind,
            row.cold_serve_ns,
            row.family_serve_ns,
            row.cold_serve_ns / row.family_serve_ns,
            row.cold_solve_ns,
            row.family_solve_ns
                .map_or_else(|| "null".to_owned(), |ns| format!("{ns:.0}")),
            if idx + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&json_path, json) {
        eprintln!("dp_family: could not write {json_path}: {err}");
    } else {
        println!("dp_family: wrote {json_path}");
    }
}

criterion_group!(benches, bench_family_ladder);
criterion_main!(benches);

//! Criterion benchmark over the Figure 2 panels: time to produce one panel
//! (tune every strategy at every budget and evaluate the latencies) for each
//! scenario, using a reduced workload so the bench suite stays fast. The
//! full-size sweep is produced by the `fig2_synthetic` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdtune_bench::{run_panel, SyntheticConfig, SyntheticScenario};
use crowdtune_core::rate::PaperRateModel;

fn bench_panels(c: &mut Criterion) {
    let config = SyntheticConfig::small();
    let mut group = c.benchmark_group("fig2_panel");
    group.sample_size(10);
    for scenario in SyntheticScenario::ALL {
        group.bench_with_input(
            BenchmarkId::new("scenario", scenario.label()),
            &scenario,
            |b, &scenario| {
                b.iter(|| run_panel(scenario, PaperRateModel::UnitSlope, &config).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_nonlinear_panel(c: &mut Criterion) {
    let config = SyntheticConfig::small();
    let mut group = c.benchmark_group("fig2_panel_nonlinear");
    group.sample_size(10);
    for model in [PaperRateModel::Quadratic, PaperRateModel::Logarithmic] {
        group.bench_with_input(
            BenchmarkId::new("model", model.label()),
            &model,
            |b, &model| {
                b.iter(|| run_panel(SyntheticScenario::Repetition, model, &config).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_panels, bench_nonlinear_panel);
criterion_main!(benches);

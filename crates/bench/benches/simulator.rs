//! Criterion benchmarks of the marketplace simulator and the analytic
//! latency estimator: the two evaluation paths every experiment relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdtune_core::latency::{JobLatencyEstimator, PhaseSelection};
use crowdtune_core::money::{Allocation, Payment};
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use crowdtune_market::{ChoiceModel, MarketConfig, MarketSimulator, WorkerPoolConfig};

fn task_set(tasks: usize) -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 5, tasks).unwrap();
    set
}

fn bench_independent_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_independent");
    group.sample_size(20);
    for &tasks in &[50usize, 200] {
        let set = task_set(tasks);
        let allocation = Allocation::uniform(&set.repetition_counts(), Payment::units(3));
        group.bench_with_input(BenchmarkId::new("tasks", tasks), &tasks, |b, _| {
            let simulator = MarketSimulator::new(MarketConfig::independent(1));
            b.iter(|| {
                simulator
                    .run(&set, &allocation, &LinearRate::unit_slope())
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_worker_pool_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_worker_pool");
    group.sample_size(10);
    let set = task_set(50);
    let allocation = Allocation::uniform(&set.repetition_counts(), Payment::units(10));
    let pool = WorkerPoolConfig {
        arrival_rate: 5.0,
        choice: ChoiceModel::PriceProbability { scale: 0.05 },
    };
    group.bench_function("50_tasks", |b| {
        let simulator = MarketSimulator::new(MarketConfig::worker_pool(1, pool));
        b.iter(|| {
            simulator
                .run(&set, &allocation, &LinearRate::unit_slope())
                .unwrap()
        });
    });
    group.finish();
}

fn bench_analytic_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_estimator");
    group.sample_size(20);
    for &tasks in &[50usize, 200] {
        let set = task_set(tasks);
        let allocation = Allocation::uniform(&set.repetition_counts(), Payment::units(3));
        let model = LinearRate::unit_slope();
        group.bench_with_input(BenchmarkId::new("tasks", tasks), &tasks, |b, _| {
            let estimator = JobLatencyEstimator::new(&set, &model);
            b.iter(|| {
                estimator
                    .analytic_expected_latency(&allocation, PhaseSelection::Both)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_independent_mode,
    bench_worker_pool_mode,
    bench_analytic_estimator
);
criterion_main!(benches);

//! Service-level benchmark of `crowdtune-serve`: sustained job throughput
//! through the queue + worker pool, the plan-cache hit rate under realistic
//! (repetitive) tenant traffic, and the latency improvement delivered by
//! online re-tuning on a drifting market.
//!
//! Run with: `cargo bench -p crowdtune-bench --bench serve_throughput`
//! (add `--features parallel` to also multi-thread the DP latency tables).

use crowdtune_bench::{compare_tune_once_vs_retuned, DriftScenario};
use crowdtune_core::money::Budget;
use crowdtune_core::prelude::*;
use crowdtune_serve::{JobRequest, MarketId, ServiceConfig, TuningService};
use std::sync::Arc;
use std::time::Instant;

/// A small catalogue of workload shapes; tenant traffic cycles through it,
/// which is what makes a plan cache worth having.
fn workload(shape: usize) -> (TaskSet, Budget) {
    let mut set = TaskSet::new();
    match shape % 4 {
        0 => {
            let ty = set.add_type("filter vote", 2.0).unwrap();
            set.add_tasks(ty, 3, 30).unwrap();
            (set, Budget::units(270))
        }
        1 => {
            let ty = set.add_type("sort vote", 2.0).unwrap();
            set.add_tasks(ty, 3, 20).unwrap();
            set.add_tasks(ty, 5, 20).unwrap();
            (set, Budget::units(480))
        }
        2 => {
            let easy = set.add_type("easy", 3.0).unwrap();
            let hard = set.add_type("hard", 1.0).unwrap();
            set.add_tasks(easy, 3, 15).unwrap();
            set.add_tasks(hard, 5, 15).unwrap();
            (set, Budget::units(360))
        }
        _ => {
            let ty = set.add_type("max vote", 2.5).unwrap();
            set.add_tasks(ty, 4, 25).unwrap();
            (set, Budget::units(400))
        }
    }
}

fn request(tenant: usize, shape: usize) -> JobRequest {
    let (task_set, budget) = workload(shape);
    JobRequest {
        tenant: format!("tenant-{tenant}"),
        market: MarketId::DEFAULT,
        task_set,
        budget,
        rate_model: Arc::new(LinearRate::unit_slope()),
        strategy: StrategyChoice::Auto,
    }
}

fn bench_throughput() {
    let tenants = 16;
    let jobs_per_tenant = 50;
    let total_jobs = tenants * jobs_per_tenant;

    let service = Arc::new(TuningService::start(ServiceConfig::default()));
    let start = Instant::now();
    let joins: Vec<_> = (0..tenants)
        .map(|tenant| {
            let service = service.clone();
            std::thread::spawn(move || {
                for job in 0..jobs_per_tenant {
                    service
                        .tune(request(tenant, tenant + job))
                        .expect("job must be served");
                }
            })
        })
        .collect();
    for join in joins {
        join.join().unwrap();
    }
    let elapsed = start.elapsed();
    let stats = service.cache_stats();
    let throughput = total_jobs as f64 / elapsed.as_secs_f64();
    println!(
        "service throughput: {total_jobs} jobs from {tenants} tenants in {:.2?} -> {throughput:.0} jobs/s",
        elapsed
    );
    println!(
        "plan cache: {} hits / {} misses (hit rate {:.1}%), {} entries, {} evictions",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate(),
        stats.entries,
        stats.evictions
    );
    assert!(
        stats.hit_rate() > 0.0,
        "repetitive traffic must produce cache hits"
    );

    // Same traffic with a cache too small to hold even one shape, as the
    // no-cache baseline.
    let cold = Arc::new(TuningService::start(ServiceConfig {
        cache_shards: 1,
        cache_capacity_per_shard: 1,
        ..ServiceConfig::default()
    }));
    let start = Instant::now();
    let joins: Vec<_> = (0..tenants)
        .map(|tenant| {
            let cold = cold.clone();
            std::thread::spawn(move || {
                for job in 0..jobs_per_tenant {
                    cold.tune(request(tenant, tenant + job)).unwrap();
                }
            })
        })
        .collect();
    for join in joins {
        join.join().unwrap();
    }
    let cold_elapsed = start.elapsed();
    println!(
        "without an effective cache: {:.2?} ({:.1}x slower)",
        cold_elapsed,
        cold_elapsed.as_secs_f64() / elapsed.as_secs_f64()
    );
}

fn bench_retuning_improvement() {
    // The drifting-market scenario shared with examples/online_retuning.rs.
    let scenario = DriftScenario::wide_and_deep();
    let trials = 120;
    let start = Instant::now();
    let comparison = compare_tune_once_vs_retuned(&scenario, trials).unwrap();
    println!(
        "online re-tuning under drift ({trials} trials, {:.2?}): tune-once {:.2}s, \
         re-tuned {:.2}s ({:+.1}% latency)",
        start.elapsed(),
        comparison.tune_once_mean,
        comparison.retuned_mean,
        100.0 * comparison.latency_change()
    );
}

fn main() {
    bench_throughput();
    bench_retuning_improvement();
}

//! Criterion micro-benchmarks of the tuning algorithms themselves: how long
//! EA, RA and HA take as the budget and the task count grow (the paper's
//! complexity claims: EA is O(1), RA and HA are O(n·B')).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdtune_core::algorithms::{EvenAllocation, HeterogeneousAlgorithm, RepetitionAlgorithm};
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use std::sync::Arc;

fn homogeneous_problem(tasks: usize, budget: u64) -> HTuningProblem {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 5, tasks).unwrap();
    HTuningProblem::new(
        set,
        Budget::units(budget),
        Arc::new(LinearRate::unit_slope()),
    )
    .unwrap()
}

fn repetition_problem(tasks: usize, budget: u64) -> HTuningProblem {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, tasks / 2).unwrap();
    set.add_tasks(ty, 5, tasks - tasks / 2).unwrap();
    HTuningProblem::new(
        set,
        Budget::units(budget),
        Arc::new(LinearRate::unit_slope()),
    )
    .unwrap()
}

fn heterogeneous_problem(tasks: usize, budget: u64) -> HTuningProblem {
    let mut set = TaskSet::new();
    let easy = set.add_type("easy", 2.0).unwrap();
    let hard = set.add_type("hard", 3.0).unwrap();
    set.add_tasks(easy, 3, tasks / 2).unwrap();
    set.add_tasks(hard, 5, tasks - tasks / 2).unwrap();
    HTuningProblem::new(
        set,
        Budget::units(budget),
        Arc::new(LinearRate::unit_slope()),
    )
    .unwrap()
}

fn bench_even_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("even_allocation");
    group.sample_size(20);
    for &tasks in &[100usize, 1000] {
        let problem = homogeneous_problem(tasks, tasks as u64 * 20);
        group.bench_with_input(BenchmarkId::new("tasks", tasks), &problem, |b, problem| {
            let strategy = EvenAllocation::new().without_objective();
            b.iter(|| strategy.tune(problem).unwrap());
        });
    }
    group.finish();
}

fn bench_repetition_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("repetition_algorithm");
    group.sample_size(10);
    for &budget in &[1000u64, 2000, 4000] {
        let problem = repetition_problem(100, budget);
        group.bench_with_input(
            BenchmarkId::new("budget", budget),
            &problem,
            |b, problem| {
                let strategy = RepetitionAlgorithm::new();
                b.iter(|| strategy.tune(problem).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_heterogeneous_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("heterogeneous_algorithm");
    group.sample_size(10);
    for &budget in &[1000u64, 2000] {
        let problem = heterogeneous_problem(100, budget);
        group.bench_with_input(
            BenchmarkId::new("budget", budget),
            &problem,
            |b, problem| {
                let strategy = HeterogeneousAlgorithm::new();
                b.iter(|| strategy.tune(problem).unwrap());
            },
        );
    }
    group.finish();
}

/// The hot path the `parallel` feature targets: many heterogeneous groups
/// with high repetition counts, where the numerical integrations behind the
/// expected-latency tables dominate the solve. Compare
/// `cargo bench -p crowdtune-bench --bench algorithms -- parallel_hot_path`
/// against the same command with `--features parallel` to see the speedup
/// from fanning the integrations over all cores. On a single-core machine
/// the parallel build intentionally degrades to the lazy path (the fan-out
/// would be pure overhead), so both variants report the same numbers there —
/// the printed core count says which regime you measured.
fn bench_parallel_hot_path(c: &mut Criterion) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel_hot_path: feature {} on {cores} core(s)",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF"
        }
    );
    let mut group = c.benchmark_group(if cfg!(feature = "parallel") {
        "parallel_hot_path/threads"
    } else {
        "parallel_hot_path/serial"
    });
    group.sample_size(10);
    for &budget in &[4_000u64, 8_000] {
        // 20 heterogeneous groups: 10 types × 2 high-repetition classes, so
        // each table entry is an expensive expected-max-Erlang quadrature.
        let mut set = TaskSet::new();
        for t in 0..10 {
            let ty = set
                .add_type(format!("type{t}"), 0.5 + t as f64 * 0.25)
                .unwrap();
            set.add_tasks(ty, 8, 10).unwrap();
            set.add_tasks(ty, 12, 10).unwrap();
        }
        let problem = HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("budget", budget),
            &problem,
            |b, problem| {
                let strategy = HeterogeneousAlgorithm::new();
                b.iter(|| strategy.tune(problem).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_even_allocation,
    bench_repetition_algorithm,
    bench_heterogeneous_algorithm,
    bench_parallel_hot_path
);
criterion_main!(benches);

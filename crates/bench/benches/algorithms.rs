//! Criterion micro-benchmarks of the tuning algorithms themselves: how long
//! EA, RA and HA take as the budget and the task count grow (the paper's
//! complexity claims: EA is O(1), RA and HA are O(n·B')), plus a
//! before/after comparison of the marginal DP scan itself (`dp_scan`): the
//! clone-based reference DP that shipped first, the current closure path,
//! and the incremental separable path (O(1) per candidate). The `dp_scan`
//! comparison also writes its medians to `BENCH_dp.json` so CI can record
//! the performance trajectory.
//!
//! Set `CROWDTUNE_BENCH_QUICK=1` to run a reduced-iteration smoke version
//! (used by the CI bench-smoke step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdtune_core::algorithms::{
    marginal_budget_dp, marginal_budget_dp_separable, EvenAllocation, GroupLatencyCache,
    HeterogeneousAlgorithm, RepetitionAlgorithm,
};
use crowdtune_core::error::Result as CoreResult;
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::rate::{LinearRate, RateModel};
use crowdtune_core::task::TaskSet;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Reduced-iteration smoke mode for CI: fewer budgets and samples, same
/// code paths.
fn quick_mode() -> bool {
    std::env::var("CROWDTUNE_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn homogeneous_problem(tasks: usize, budget: u64) -> HTuningProblem {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 5, tasks).unwrap();
    HTuningProblem::new(
        set,
        Budget::units(budget),
        Arc::new(LinearRate::unit_slope()),
    )
    .unwrap()
}

/// The paper's Figure 2 Scenario-II shape: half the tasks need 3
/// repetitions, half 5, identical difficulty (the paper uses 100 tasks and
/// budgets 1000..5000).
fn repetition_problem(tasks: usize, budget: u64) -> HTuningProblem {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).unwrap();
    set.add_tasks(ty, 3, tasks / 2).unwrap();
    set.add_tasks(ty, 5, tasks - tasks / 2).unwrap();
    HTuningProblem::new(
        set,
        Budget::units(budget),
        Arc::new(LinearRate::unit_slope()),
    )
    .unwrap()
}

fn heterogeneous_problem(tasks: usize, budget: u64) -> HTuningProblem {
    let mut set = TaskSet::new();
    let easy = set.add_type("easy", 2.0).unwrap();
    let hard = set.add_type("hard", 3.0).unwrap();
    set.add_tasks(easy, 3, tasks / 2).unwrap();
    set.add_tasks(hard, 5, tasks - tasks / 2).unwrap();
    HTuningProblem::new(
        set,
        Budget::units(budget),
        Arc::new(LinearRate::unit_slope()),
    )
    .unwrap()
}

fn bench_even_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("even_allocation");
    group.sample_size(if quick_mode() { 5 } else { 20 });
    let sizes: &[usize] = if quick_mode() { &[100] } else { &[100, 1000] };
    for &tasks in sizes {
        let problem = homogeneous_problem(tasks, tasks as u64 * 20);
        group.bench_with_input(BenchmarkId::new("tasks", tasks), &problem, |b, problem| {
            let strategy = EvenAllocation::new().without_objective();
            b.iter(|| strategy.tune(problem).unwrap());
        });
    }
    group.finish();
}

fn bench_repetition_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("repetition_algorithm");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    let budgets: &[u64] = if quick_mode() {
        &[1000]
    } else {
        &[1000, 2000, 4000]
    };
    for &budget in budgets {
        let problem = repetition_problem(100, budget);
        group.bench_with_input(
            BenchmarkId::new("budget", budget),
            &problem,
            |b, problem| {
                let strategy = RepetitionAlgorithm::new();
                b.iter(|| strategy.tune(problem).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_heterogeneous_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("heterogeneous_algorithm");
    group.sample_size(if quick_mode() { 3 } else { 10 });
    let budgets: &[u64] = if quick_mode() { &[1000] } else { &[1000, 2000] };
    for &budget in budgets {
        let problem = heterogeneous_problem(100, budget);
        group.bench_with_input(
            BenchmarkId::new("budget", budget),
            &problem,
            |b, problem| {
                let strategy = HeterogeneousAlgorithm::new();
                b.iter(|| strategy.tune(problem).unwrap());
            },
        );
    }
    group.finish();
}

/// Faithful copy of the marginal DP as it first shipped (PR 1): a full
/// `(payments, objective, spent)` state per budget level, with a `Vec`
/// clone and an O(n) objective evaluation per candidate. Kept here — not in
/// the library — purely as the "before" side of the `dp_scan` comparison.
fn reference_dp_pr1<F>(unit_costs: &[u64], extra_budget: u64, mut objective: F) -> CoreResult<f64>
where
    F: FnMut(&[u64]) -> CoreResult<f64>,
{
    let base = vec![1u64; unit_costs.len()];
    let base_objective = objective(&base)?;
    let mut states: Vec<(Vec<u64>, f64, u64)> = Vec::with_capacity(extra_budget as usize + 1);
    states.push((base, base_objective, 0));
    for x in 1..=extra_budget {
        let mut best = states[(x - 1) as usize].clone();
        for (i, &u) in unit_costs.iter().enumerate() {
            if u <= x {
                let prev = &states[(x - u) as usize];
                let mut candidate = prev.0.clone();
                candidate[i] += 1;
                let value = objective(&candidate)?;
                let spent = prev.2 + u;
                let epsilon = 1e-12 * value.abs().max(1.0);
                if value < best.1 - epsilon || (value <= best.1 + epsilon && spent > best.2) {
                    best = (candidate, value, spent);
                }
            }
        }
        states.push(best);
    }
    Ok(states[extra_budget as usize].1)
}

/// RA's group-sum objective (`Σ_i E_i(p_i)`) over the warm latency cache —
/// the closure-path form of what `dp_scan` measures.
fn group_sum<M: RateModel + ?Sized>(
    cache: &GroupLatencyCache<'_, M>,
    payments: &[u64],
) -> CoreResult<f64> {
    let mut sum = 0.0;
    for (i, &p) in payments.iter().enumerate() {
        sum += cache.phase1(i, p)?;
    }
    Ok(sum)
}

/// Median wall-clock nanoseconds of `samples` runs of `f`.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Before/after comparison of the DP scan on fig2-sized RA problems. The
/// expected-latency tables are fully warmed first, so the numbers isolate
/// the scan itself (the part the separable rework targets) from the
/// numerical integrations. Results are printed and written to
/// `BENCH_dp.json` (override the path with `BENCH_DP_JSON`).
fn bench_dp_scan(_c: &mut Criterion) {
    let quick = quick_mode();
    let budgets: &[u64] = if quick {
        &[1000, 3000]
    } else {
        &[1000, 3000, 5000]
    };
    let samples = if quick { 7 } else { 31 };
    let mut rows = Vec::new();
    for &budget in budgets {
        let problem = repetition_problem(100, budget);
        let groups = problem.task_set().group_by_repetitions();
        let unit_costs: Vec<u64> = groups.iter().map(|g| g.unit_increment_cost()).collect();
        let extra_budget = problem.discretionary_budget();
        let rate_model = problem.rate_model().clone();

        // Warm every (group, payment) pair the scan can reach, so the bench
        // measures the DP itself rather than the integrations.
        let cache = GroupLatencyCache::new(&rate_model, &groups);
        for (i, &u) in unit_costs.iter().enumerate() {
            for payment in 1..=(1 + extra_budget / u) {
                cache.phase1(i, payment).unwrap();
            }
        }

        // Sanity first: the two current paths agree bit-for-bit on the plan
        // (also serves as a warm-up for the timed runs below).
        let closure_outcome =
            marginal_budget_dp(&unit_costs, extra_budget, |p| group_sum(&cache, p)).unwrap();
        let separable_outcome =
            marginal_budget_dp_separable(&unit_costs, extra_budget, |group, payment| {
                cache.phase1(group, payment)
            })
            .unwrap();
        assert_eq!(closure_outcome.payments, separable_outcome.payments);
        assert_eq!(
            closure_outcome.objective.to_bits(),
            separable_outcome.objective.to_bits()
        );

        let reference_ns = median_ns(samples, || {
            let objective =
                reference_dp_pr1(&unit_costs, extra_budget, |p| group_sum(&cache, p)).unwrap();
            black_box(objective);
        });
        let closure_ns = median_ns(samples, || {
            let outcome =
                marginal_budget_dp(&unit_costs, extra_budget, |p| group_sum(&cache, p)).unwrap();
            black_box(outcome);
        });
        let separable_ns = median_ns(samples, || {
            let outcome =
                marginal_budget_dp_separable(&unit_costs, extra_budget, |group, payment| {
                    cache.phase1(group, payment)
                })
                .unwrap();
            black_box(outcome);
        });

        println!(
            "dp_scan/fig2_ra/budget/{budget:<5} reference {:>10.0} ns | closure {:>10.0} ns | \
             separable {:>10.0} ns | speedup vs reference {:>5.1}x, vs closure {:>4.1}x",
            reference_ns,
            closure_ns,
            separable_ns,
            reference_ns / separable_ns,
            closure_ns / separable_ns,
        );
        rows.push((budget, reference_ns, closure_ns, separable_ns));
    }

    // Default to the workspace root regardless of the invocation CWD (cargo
    // runs benches from the package directory).
    let json_path = std::env::var("BENCH_DP_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dp.json").to_owned());
    let mut json = String::from("{\n  \"bench\": \"dp_scan_fig2_ra\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"results\": [\n"));
    for (idx, (budget, reference_ns, closure_ns, separable_ns)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"budget\": {budget}, \"reference_ns\": {reference_ns:.0}, \
             \"closure_ns\": {closure_ns:.0}, \"separable_ns\": {separable_ns:.0}, \
             \"speedup_vs_reference\": {:.2}, \"speedup_vs_closure\": {:.2}}}{}",
            reference_ns / separable_ns,
            closure_ns / separable_ns,
            if idx + 1 < rows.len() { ",\n" } else { "\n" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(err) = std::fs::write(&json_path, json) {
        eprintln!("dp_scan: could not write {json_path}: {err}");
    } else {
        println!("dp_scan: wrote {json_path}");
    }
}

/// The hot path the `parallel` feature targets: many heterogeneous groups
/// with high repetition counts, where the numerical integrations behind the
/// expected-latency tables dominate the solve. Compare
/// `cargo bench -p crowdtune-bench --bench algorithms -- parallel_hot_path`
/// against the same command with `--features parallel` to see the speedup
/// from fanning the integrations over all cores. On a single-core machine
/// the parallel build intentionally degrades to the lazy path (the fan-out
/// would be pure overhead), so both variants report the same numbers there —
/// the printed core count says which regime you measured.
fn bench_parallel_hot_path(c: &mut Criterion) {
    if quick_mode() {
        println!("parallel_hot_path: skipped in quick mode");
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "parallel_hot_path: feature {} on {cores} core(s)",
        if cfg!(feature = "parallel") {
            "ON"
        } else {
            "OFF"
        }
    );
    let mut group = c.benchmark_group(if cfg!(feature = "parallel") {
        "parallel_hot_path/threads"
    } else {
        "parallel_hot_path/serial"
    });
    group.sample_size(10);
    for &budget in &[4_000u64, 8_000] {
        // 20 heterogeneous groups: 10 types × 2 high-repetition classes, so
        // each table entry is an expensive expected-max-Erlang quadrature.
        let mut set = TaskSet::new();
        for t in 0..10 {
            let ty = set
                .add_type(format!("type{t}"), 0.5 + t as f64 * 0.25)
                .unwrap();
            set.add_tasks(ty, 8, 10).unwrap();
            set.add_tasks(ty, 12, 10).unwrap();
        }
        let problem = HTuningProblem::new(
            set,
            Budget::units(budget),
            Arc::new(LinearRate::unit_slope()),
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("budget", budget),
            &problem,
            |b, problem| {
                let strategy = HeterogeneousAlgorithm::new();
                b.iter(|| strategy.tune(problem).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_even_allocation,
    bench_repetition_algorithm,
    bench_heterogeneous_algorithm,
    bench_dp_scan,
    bench_parallel_hot_path
);
criterion_main!(benches);

//! # crowdtune-bench
//!
//! The experiment harness of the `crowdtune` reproduction of *"Tuning
//! Crowdsourced Human Computation"* (ICDE 2017). Each binary in `src/bin/`
//! regenerates one table or figure of the paper's evaluation (see
//! `DESIGN.md` for the per-experiment index and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison); the Criterion benches in `benches/`
//! measure the cost of the tuning algorithms and the simulator themselves.
//!
//! | module | content |
//! |---|---|
//! | [`synthetic`] | Figure 2 workload builders, strategy line-ups and the 18-panel sweep |
//! | [`output`] | aligned text tables and CSV emission used by every binary |
//! | [`retune_demo`] | the shared drifting-market scenario for the online re-tuning example and bench |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod output;
pub mod retune_demo;
pub mod synthetic;

pub use output::Table;
pub use retune_demo::{compare_tune_once_vs_retuned, DriftComparison, DriftScenario};
pub use synthetic::{
    run_figure2, run_panel, PanelResult, PanelRow, SyntheticConfig, SyntheticScenario,
};

/// Directory (relative to the workspace root) where binaries drop their CSV
/// output.
pub const RESULTS_DIR: &str = "results";

/// Convenience: formats a `(strategy, latency)` list as `strategy=latency`
/// pairs for compact logging.
pub fn format_latencies(latencies: &[(String, f64)]) -> String {
    latencies
        .iter()
        .map(|(label, latency)| format!("{label}={latency:.3}"))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_latencies_is_compact() {
        let formatted = format_latencies(&[("opt".to_owned(), 1.23456), ("te".to_owned(), 2.0)]);
        assert_eq!(formatted, "opt=1.235  te=2.000");
        assert_eq!(format_latencies(&[]), "");
    }
}

//! Experiment output helpers: aligned text tables and CSV emission.
//!
//! Every figure/table binary prints a human-readable table to stdout (the
//! rows and series the paper reports) and can additionally dump CSV into
//! `results/` for plotting.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table that renders to plain text (markdown-ish).
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Appends a row of floating point values formatted to `precision`
    /// decimals, prefixed by a label cell.
    pub fn push_numeric_row(&mut self, label: impl Into<String>, values: &[f64], precision: usize) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let width = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        let mut separator = String::from("|");
        for width in &widths {
            separator.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        separator.push('\n');
        out.push_str(&separator);
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut file = fs::File::create(path)?;
        file.write_all(self.to_csv().as_bytes())
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut table = Table::new("demo", &["budget", "opt", "baseline"]);
        table.push_numeric_row("1000", &[1.25, 2.5], 2);
        table.push_numeric_row("5000", &[0.5, 1.0], 2);
        let text = table.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("| budget |"));
        assert!(text.contains("| 1000   | 1.25 | 2.50     |"));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = Table::new("x", &["a", "b"]);
        table.push_row(vec!["hello, world".to_owned(), "say \"hi\"".to_owned()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"hello, world\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join(format!("crowdtune-test-{}", std::process::id()));
        let path = dir.join("nested/out.csv");
        let mut table = Table::new("x", &["a"]);
        table.push_row(vec!["1".to_owned()]);
        table.write_csv(&path).unwrap();
        let contents = fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("a\n"));
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Reproduces **Figure 1 / Example 1** of the paper: the motivating budget
//! allocations for (a) a sorting job with repetitions and (b) a mixed
//! sorting + filtering job, showing that the load-sensitive allocation beats
//! the even split in expected completion time.
//!
//! Example 1(a): tasks T = {{o1,o2}×1, {o3,o4}×2}, budget $6.
//!   * case 1 (even): $3 to each task → per-repetition rates λ=3 and λ=1.5;
//!   * case 2 (load-sensitive): $2 / $4 → rates λ=2 and λ=2.
//!
//! Example 1(b): one sorting vote and one yes/no vote, budget $6, with the
//! processing rates of Table 1 folded in.

use crowdtune_bench::Table;
use crowdtune_core::stats::{expected_max_independent_cdfs, Erlang, Exponential, TwoPhaseLatency};

/// Expected completion of two parallel tasks given closures for their CDFs.
fn expected_max_of_two(cdf_a: impl Fn(f64) -> f64, cdf_b: impl Fn(f64) -> f64) -> f64 {
    let cdfs: Vec<Box<dyn Fn(f64) -> f64>> = vec![Box::new(cdf_a), Box::new(cdf_b)];
    expected_max_independent_cdfs(&cdfs, 5.0).expect("integration converges")
}

fn main() {
    // ---- Example 1(a): repetition-aware allocation of a sorting job ----
    // Sorting-vote uptake follows Table 1 (λ ≈ reward in dollars).
    let case = |p1: f64, p2_total: f64| {
        let per_rep = p2_total / 2.0;
        let t1 = Exponential::new(p1).expect("positive rate");
        let t2 = Erlang::new(2, per_rep).expect("valid Erlang");
        expected_max_of_two(move |t| t1.cdf(t), move |t| t2.cdf(t))
    };
    let even = case(3.0, 3.0);
    let load_sensitive = case(2.0, 4.0);

    let mut table_a = Table::new(
        "Figure 1(a) / Example 1 — sorting job, budget $6 (phase-1 expected latency)",
        &["allocation", "task1 ($)", "task2 ($)", "E[latency]"],
    );
    table_a.push_row(vec![
        "case 1 (even)".into(),
        "3".into(),
        "3".into(),
        format!("{even:.3}"),
    ]);
    table_a.push_row(vec![
        "case 2 (load-sensitive)".into(),
        "2".into(),
        "4".into(),
        format!("{load_sensitive:.3}"),
    ]);
    table_a.print();
    println!(
        "=> load-sensitive beats even by {:.1}% (paper reports 2.25s vs 2.93s)\n",
        100.0 * (even - load_sensitive) / even
    );

    // ---- Example 1(b): heterogeneous job (sorting + filtering) ----
    // Table 1 uptake rates; processing rates 2.0 (sorting) and 3.0 (yes/no).
    let heter_case = |sort_reward: f64, filter_reward: f64| {
        let sort = TwoPhaseLatency::new(sort_reward, 2.0).expect("valid rates");
        // yes/no uptake from Table 1 is roughly 1.67×reward
        let filter = TwoPhaseLatency::new(1.67 * filter_reward, 3.0).expect("valid rates");
        expected_max_of_two(move |t| sort.cdf(t), move |t| filter.cdf(t))
    };
    let even_heter = heter_case(3.0, 3.0);
    let difficulty_aware = heter_case(4.0, 2.0);

    let mut table_b = Table::new(
        "Figure 1(b) / Example 2 — mixed sorting + filtering job, budget $6 (both phases)",
        &["allocation", "sorting ($)", "filtering ($)", "E[latency]"],
    );
    table_b.push_row(vec![
        "even".into(),
        "3".into(),
        "3".into(),
        format!("{even_heter:.3}"),
    ]);
    table_b.push_row(vec![
        "difficulty-aware".into(),
        "4".into(),
        "2".into(),
        format!("{difficulty_aware:.3}"),
    ]);
    table_b.print();
    println!(
        "=> difficulty-aware beats even by {:.1}% (paper reports 2.7s vs 3.5s)",
        100.0 * (even_heter - difficulty_aware) / even_heter
    );

    table_a
        .write_csv("results/fig1_example1.csv")
        .expect("can write results CSV");
    table_b
        .write_csv("results/fig1_example2.csv")
        .expect("can write results CSV");
}

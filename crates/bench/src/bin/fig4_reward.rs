//! Reproduces **Figure 4** of the paper: "Money v.s. Latency".
//!
//! Rewards from $0.05 to $0.12 with 10 repetitions per task: higher rewards
//! shorten the on-hold latency, and the inferred rates support the Linearity
//! Hypothesis (the paper reports λ = 0.0038, 0.0062, 0.0121, 0.0131 s⁻¹).

use crowdtune_bench::Table;
use crowdtune_core::inference::{estimate_rate_random_period, fit_linearity, PriceRatePoint};
use crowdtune_market::MarketConfig;
use crowdtune_platform::campaign::CampaignRunner;

fn main() {
    let rewards_cents = [5u64, 8, 10, 12];
    let repetitions = 10u32;
    let hits_per_reward = 10usize;
    let runner = CampaignRunner::new(11)
        .with_market_config(MarketConfig::independent(11).without_processing());
    let sweep = runner
        .reward_sweep(&rewards_cents, 4, 10, repetitions, hits_per_reward, 4242)
        .expect("reward sweep runs");

    let mut table = Table::new(
        "Figure 4 — reward vs on-hold latency (10 repetitions per task)",
        &[
            "reward ($)",
            "mean on-hold (min)",
            "p90 on-hold (min)",
            "inferred λ (1/s)",
        ],
    );
    let mut points = Vec::with_capacity(sweep.len());
    for (reward, outcome) in &sweep {
        let mut latencies = outcome.phase1_latencies();
        latencies.sort_by(f64::total_cmp);
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let p90 = latencies[(latencies.len() as f64 * 0.9) as usize - 1];
        // Per-repetition on-hold delays are i.i.d. Exp(λ); the MLE over the
        // pooled sample is N / Σ delays.
        let rate = latencies.len() as f64 / latencies.iter().sum::<f64>();
        points.push(PriceRatePoint::new(*reward as f64, rate));
        table.push_numeric_row(
            format!("{:.2}", *reward as f64 / 100.0),
            &[mean / 60.0, p90 / 60.0, rate],
            4,
        );
    }
    table.print();
    table
        .write_csv("results/fig4_reward.csv")
        .expect("can write results CSV");

    let fit = fit_linearity(&points).expect("linearity fit runs");
    println!(
        "Linearity Hypothesis fit over the inferred rates: λo(c) = {:.5}·c + {:.5}, R² = {:.3} ({})",
        fit.k,
        fit.b,
        fit.r_squared,
        if fit.supports_hypothesis(0.85) {
            "supported"
        } else {
            "NOT supported"
        }
    );

    // Cross-check: the rate at the largest reward should exceed the rate at
    // the smallest (the paper's monotone-latency finding).
    let first = points.first().expect("non-empty");
    let last = points.last().expect("non-empty");
    println!(
        "rate at ${:.2} = {:.5} s⁻¹, rate at ${:.2} = {:.5} s⁻¹ → {}",
        first.price / 100.0,
        first.rate,
        last.price / 100.0,
        last.rate,
        if last.rate > first.rate {
            "higher reward, faster uptake (matches the paper)"
        } else {
            "UNEXPECTED ordering"
        }
    );

    let arrival_epoch_check = estimate_rate_random_period(&sweep[0].1.acceptance_epochs());
    if let Ok(estimate) = arrival_epoch_check {
        println!(
            "sanity: pooled $0.05 arrival-epoch MLE = {:.5} s⁻¹; CSV in results/fig4_reward.csv",
            estimate.rate
        );
    }
}

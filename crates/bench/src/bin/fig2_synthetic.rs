//! Reproduces **Figure 2** of the paper: the 18-panel synthetic sweep.
//!
//! Three scenarios (Homogeneity, Repetition, Heterogeneous) × six
//! price-to-rate models (λ = 1+p, 10p+1, 0.1p+10, 3p+3, 1+p², log(1+p)),
//! 100 tasks, budgets 1000–5000, optimal strategy vs two baselines per
//! scenario. One table per panel is printed and a CSV per panel is written to
//! `results/fig2/`.
//!
//! Run with `--small` for a fast smoke-test configuration.

use crowdtune_bench::{format_latencies, run_figure2, SyntheticConfig, Table};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let config = if small {
        SyntheticConfig::small()
    } else {
        SyntheticConfig::default()
    };
    println!(
        "Figure 2 sweep: {} tasks, budgets {:?}{}",
        config.tasks,
        config.budgets,
        if small { " (small mode)" } else { "" }
    );

    let panels = run_figure2(&config).expect("figure-2 sweep runs");
    let mut dominated = 0usize;
    for panel in &panels {
        let title = format!(
            "Figure 2 [{} | λ(p) = {}] — expected latency vs budget",
            panel.scenario.label(),
            panel.model.label()
        );
        let header: Vec<&str> = std::iter::once("budget")
            .chain(
                panel.rows[0]
                    .latencies
                    .iter()
                    .map(|(label, _)| label.as_str()),
            )
            .collect();
        let mut table = Table::new(title, &header);
        for row in &panel.rows {
            let values: Vec<f64> = row.latencies.iter().map(|(_, l)| *l).collect();
            table.push_numeric_row(row.budget.to_string(), &values, 3);
        }
        table.print();
        let path = format!(
            "results/fig2/{}_{}.csv",
            panel.scenario.label(),
            panel.model.label().replace(['+', '(', ')', '^'], "_")
        );
        table.write_csv(&path).expect("can write results CSV");

        if panel.optimal_dominates(0.02) {
            dominated += 1;
        } else {
            println!(
                "NOTE: opt did not dominate in panel {} / {} — last row: {}",
                panel.scenario.label(),
                panel.model.label(),
                format_latencies(&panel.rows.last().expect("rows nonempty").latencies)
            );
        }
    }
    println!(
        "\nopt dominated the baselines in {dominated}/{} panels; CSVs in results/fig2/",
        panels.len()
    );
}

//! Reproduces **Figure 5(c)** of the paper: "OPT v.s. Heuristic".
//!
//! Three task types with different repetition requirements (10 / 15 / 20) and
//! difficulties are published with total budgets from $6 to $10. The optimal
//! allocation (the Heterogeneous Algorithm) is compared against the heuristic
//! that pays every type the same; for every budget we report the per-type
//! completion latency and the overall job latency, measured by simulating the
//! calibrated market.

use crowdtune_bench::Table;
use crowdtune_core::algorithms::{HeterogeneousAlgorithm, UniformPerGroupAllocation};
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::task::TaskSet;
use crowdtune_market::{MarketConfig, MarketSimulator};
use crowdtune_platform::AmtCalibration;
use std::sync::Arc;

fn build_task_set(calibration: &AmtCalibration) -> (TaskSet, Vec<(String, usize)>) {
    // Three task types: t1 (easy, 10 reps), t2 (medium, 15 reps),
    // t3 (hard, 20 reps); one task of each type, as in the AMT experiment.
    let mut set = TaskSet::new();
    let mut type_tasks = Vec::new();
    for (name, votes, reps) in [("t1", 4u32, 10u32), ("t2", 6, 15), ("t3", 8, 20)] {
        let ty = set
            .add_type(name, calibration.processing_rate(votes))
            .expect("valid type");
        set.add_task(ty, reps).expect("valid task");
        type_tasks.push((name.to_string(), type_tasks.len()));
    }
    (set, type_tasks)
}

fn main() {
    let calibration = AmtCalibration::paper();
    let rate_model: Arc<dyn crowdtune_core::rate::RateModel> = Arc::new(
        calibration
            .rate_model_for_votes(6)
            .expect("calibration is valid"),
    );
    let budgets_cents = [600u64, 700, 800, 900, 1000];
    let trials = 40usize;

    let mut table = Table::new(
        "Figure 5(c) — OPT vs Heuristic: mean completion latency (minutes) per task type",
        &[
            "budget ($)",
            "OPT(t1)",
            "OPT(t2)",
            "OPT(t3)",
            "OPT(max)",
            "HEU(t1)",
            "HEU(t2)",
            "HEU(t3)",
            "HEU(max)",
        ],
    );

    let mut opt_wins = 0usize;
    for &budget in &budgets_cents {
        let (task_set, type_tasks) = build_task_set(&calibration);
        let problem = HTuningProblem::new(task_set, Budget::units(budget), rate_model.clone())
            .expect("problem is feasible");

        let mut row = Vec::new();
        let mut job_latencies = Vec::new();
        for strategy in [
            Box::new(HeterogeneousAlgorithm::new()) as Box<dyn TuningStrategy>,
            Box::new(UniformPerGroupAllocation::new()),
        ] {
            let result = strategy.tune(&problem).expect("tuning succeeds");
            let simulator = MarketSimulator::new(MarketConfig::independent(97 + budget));
            let reports = simulator
                .run_many(problem.task_set(), &result.allocation, &rate_model, trials)
                .expect("simulation runs");
            let mut per_type = vec![0.0_f64; type_tasks.len()];
            let mut overall = 0.0;
            for report in &reports {
                for (_, task_index) in &type_tasks {
                    per_type[*task_index] +=
                        report.task_completion(*task_index).unwrap_or(0.0) / trials as f64;
                }
                overall += report.job_latency() / trials as f64;
            }
            row.extend(per_type.iter().map(|secs| secs / 60.0));
            row.push(overall / 60.0);
            job_latencies.push(overall);
        }
        if job_latencies[0] <= job_latencies[1] {
            opt_wins += 1;
        }
        table.push_numeric_row(format!("{:.0}", budget as f64 / 100.0), &row, 1);
    }
    table.print();
    table
        .write_csv("results/fig5c_opt_vs_heuristic.csv")
        .expect("can write results CSV");
    println!(
        "OPT achieved a lower overall latency than the heuristic at {opt_wins}/{} budgets \
         (the paper reports OPT winning at every budget); CSV in results/fig5c_opt_vs_heuristic.csv",
        budgets_cents.len()
    );
}

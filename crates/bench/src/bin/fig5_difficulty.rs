//! Reproduces **Figure 5(a) and 5(b)** of the paper: "Difficulty v.s.
//! Latency" for the two phases.
//!
//! Six configurations — rewards {$0.05, $0.08} × internal votes {4, 6, 8} —
//! are replayed on the calibrated market. Harder tasks (more votes) are taken
//! up more slowly (phase 1) and processed more slowly (phase 2); a higher
//! reward speeds up phase 1 but leaves phase 2 unchanged.

use crowdtune_bench::Table;
use crowdtune_market::MarketConfig;
use crowdtune_platform::campaign::{Campaign, CampaignRunner, CampaignTaskSpec};

fn main() {
    let rewards_cents = [5u64, 8];
    let votes_levels = [4u32, 6, 8];
    let hits = 30usize;
    let repetitions = 3u32;

    let mut phase1 = Table::new(
        "Figure 5(a) — difficulty vs phase-1 (on-hold) latency, minutes",
        &["configuration", "mean", "p50", "p90"],
    );
    let mut phase2 = Table::new(
        "Figure 5(b) — difficulty vs phase-2 (processing) latency, seconds",
        &["configuration", "mean", "p50", "p90"],
    );

    let mut means_by_config: Vec<(u64, u32, f64, f64)> = Vec::new();
    for (index, &reward) in rewards_cents.iter().enumerate() {
        for (jndex, &votes) in votes_levels.iter().enumerate() {
            let seed = 1000 + (index * 10 + jndex) as u64;
            let runner =
                CampaignRunner::new(seed).with_market_config(MarketConfig::independent(seed));
            let campaign = Campaign::new(
                vec![CampaignTaskSpec {
                    count: hits,
                    votes,
                    threshold: 10,
                    reward_cents: reward,
                    repetitions,
                }],
                seed,
            );
            let outcome = runner.run(&campaign).expect("campaign runs");
            let label = format!("${:.2} + {votes}v", reward as f64 / 100.0);

            let summarize = |mut values: Vec<f64>| {
                values.sort_by(f64::total_cmp);
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let p50 = values[values.len() / 2];
                let p90 = values[(values.len() as f64 * 0.9) as usize - 1];
                (mean, p50, p90)
            };
            let (mean1, p50_1, p90_1) = summarize(outcome.phase1_latencies());
            let (mean2, p50_2, p90_2) = summarize(outcome.phase2_latencies());
            phase1.push_numeric_row(
                label.clone(),
                &[mean1 / 60.0, p50_1 / 60.0, p90_1 / 60.0],
                2,
            );
            phase2.push_numeric_row(label, &[mean2, p50_2, p90_2], 1);
            means_by_config.push((reward, votes, mean1, mean2));
        }
    }
    phase1.print();
    phase2.print();
    phase1
        .write_csv("results/fig5a_difficulty_phase1.csv")
        .expect("can write results CSV");
    phase2
        .write_csv("results/fig5b_difficulty_phase2.csv")
        .expect("can write results CSV");

    // Shape checks reported alongside the tables.
    let mean_for = |reward: u64, votes: u32, phase: usize| {
        means_by_config
            .iter()
            .find(|(r, v, _, _)| *r == reward && *v == votes)
            .map(|(_, _, p1, p2)| if phase == 1 { *p1 } else { *p2 })
            .expect("configuration present")
    };
    println!(
        "difficulty effect on phase 1 at $0.05: 4v {:.0}s < 8v {:.0}s → {}",
        mean_for(5, 4, 1),
        mean_for(5, 8, 1),
        if mean_for(5, 8, 1) > mean_for(5, 4, 1) {
            "harder tasks wait longer (matches Fig 5a)"
        } else {
            "UNEXPECTED"
        }
    );
    println!(
        "difficulty effect on phase 2 at $0.08: 4v {:.0}s < 8v {:.0}s → {}",
        mean_for(8, 4, 2),
        mean_for(8, 8, 2),
        if mean_for(8, 8, 2) > mean_for(8, 4, 2) {
            "harder tasks process longer (matches Fig 5b)"
        } else {
            "UNEXPECTED"
        }
    );
    println!(
        "reward effect on phase 1 at 6 votes: $0.05 {:.0}s vs $0.08 {:.0}s → {}",
        mean_for(5, 6, 1),
        mean_for(8, 6, 1),
        if mean_for(8, 6, 1) < mean_for(5, 6, 1) {
            "higher reward, faster uptake"
        } else {
            "UNEXPECTED"
        }
    );
}

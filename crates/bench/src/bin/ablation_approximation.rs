//! Ablation experiments for the design choices called out in `DESIGN.md`:
//!
//! 1. **Group-sum approximation** (Section 4.3.1): how far is the Scenario II
//!    objective — the sum of expected group latencies — from the true
//!    expected maximum it upper-bounds, as the budget grows?
//! 2. **Marginal DP vs exhaustive search**: does Algorithm 2's budget-indexed
//!    DP actually reach the exhaustive optimum of its objective on small
//!    instances?
//! 3. **Closeness norm**: does the L1 (paper) vs L2 choice in Algorithm 3
//!    change the selected allocation?

use crowdtune_bench::Table;
use crowdtune_core::algorithms::{
    exhaustive_group_search, ClosenessNorm, GroupLatencyCache, HeterogeneousAlgorithm,
    RepetitionAlgorithm,
};
use crowdtune_core::latency::{JobLatencyEstimator, PhaseSelection};
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::rate::LinearRate;
use crowdtune_core::task::TaskSet;
use std::sync::Arc;

fn repetition_set(tasks: usize) -> TaskSet {
    let mut set = TaskSet::new();
    let ty = set.add_type("vote", 2.0).expect("valid type");
    set.add_tasks(ty, 3, tasks / 2).expect("valid tasks");
    set.add_tasks(ty, 5, tasks - tasks / 2)
        .expect("valid tasks");
    set
}

fn heterogeneous_set(tasks: usize) -> TaskSet {
    let mut set = TaskSet::new();
    let easy = set.add_type("easy", 2.0).expect("valid type");
    let hard = set.add_type("hard", 3.0).expect("valid type");
    set.add_tasks(easy, 3, tasks / 2).expect("valid tasks");
    set.add_tasks(hard, 5, tasks - tasks / 2)
        .expect("valid tasks");
    set
}

fn main() {
    let model: Arc<dyn crowdtune_core::rate::RateModel> = Arc::new(LinearRate::unit_slope());

    // --- Ablation 1: group-sum objective vs true expected maximum ---
    let mut approx = Table::new(
        "Ablation 1 — group-sum objective vs Monte-Carlo expected max (Scenario II, 20 tasks)",
        &["budget", "group-sum objective", "MC expected max", "ratio"],
    );
    for budget in [100u64, 200, 400, 800] {
        let set = repetition_set(20);
        let problem =
            HTuningProblem::new(set, Budget::units(budget), model.clone()).expect("feasible");
        let result = RepetitionAlgorithm::new().tune(&problem).expect("tunes");
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let true_max = estimator
            .monte_carlo_expected_latency(&result.allocation, PhaseSelection::OnHoldOnly, 20_000, 7)
            .expect("monte carlo runs");
        let objective = result.objective.expect("RA reports its objective");
        approx.push_numeric_row(
            budget.to_string(),
            &[objective, true_max, objective / true_max],
            3,
        );
    }
    approx.print();
    println!("the group-sum objective upper-bounds the true expected max and tracks it as the budget grows\n");

    // --- Ablation 2: marginal DP vs exhaustive optimum ---
    let mut dp_table = Table::new(
        "Ablation 2 — Algorithm 2 DP vs exhaustive search (4 tasks, group-sum objective)",
        &["budget", "DP objective", "exhaustive objective", "gap"],
    );
    for budget in [16u64, 20, 24, 32] {
        let set = repetition_set(4);
        let problem =
            HTuningProblem::new(set, Budget::units(budget), model.clone()).expect("feasible");
        let dp = RepetitionAlgorithm::new().tune(&problem).expect("tunes");
        let groups = problem.task_set().group_by_repetitions();
        let unit_costs: Vec<u64> = groups.iter().map(|g| g.unit_increment_cost()).collect();
        let rate_model = problem.rate_model().clone();
        let cache = GroupLatencyCache::new(&rate_model, &groups);
        let brute = exhaustive_group_search(&unit_costs, problem.discretionary_budget(), |p| {
            let mut sum = 0.0;
            for (i, &payment) in p.iter().enumerate() {
                sum += cache.phase1(i, payment)?;
            }
            Ok(sum)
        })
        .expect("exhaustive search runs");
        let dp_objective = dp.objective.expect("RA reports its objective");
        dp_table.push_numeric_row(
            budget.to_string(),
            &[
                dp_objective,
                brute.objective,
                dp_objective - brute.objective,
            ],
            4,
        );
    }
    dp_table.print();

    // --- Ablation 3: closeness norm in the Heterogeneous Algorithm ---
    let mut norm_table = Table::new(
        "Ablation 3 — HA closeness norm: expected overall latency of the selected allocation",
        &["budget", "L1 (paper)", "L2"],
    );
    for budget in [120u64, 240, 480] {
        let set = heterogeneous_set(12);
        let problem =
            HTuningProblem::new(set, Budget::units(budget), model.clone()).expect("feasible");
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let mut row = Vec::new();
        for norm in [ClosenessNorm::L1, ClosenessNorm::L2] {
            let result = HeterogeneousAlgorithm::with_norm(norm)
                .tune(&problem)
                .expect("tunes");
            let latency = estimator
                .analytic_expected_latency(&result.allocation, PhaseSelection::Both)
                .expect("estimates");
            row.push(latency);
        }
        norm_table.push_numeric_row(budget.to_string(), &row, 3);
    }
    norm_table.print();
    println!("the norm choice barely moves the selected allocation's latency, supporting the paper's use of the first-order distance");

    approx
        .write_csv("results/ablation_group_sum.csv")
        .expect("can write results CSV");
    dp_table
        .write_csv("results/ablation_dp_vs_exhaustive.csv")
        .expect("can write results CSV");
    norm_table
        .write_csv("results/ablation_closeness_norm.csv")
        .expect("can write results CSV");
}

//! Reproduces **Table 1** of the paper: "HPU Processing Rate for Motivation
//! Example" — the on-hold clock rate of the two vote types (sorting vote,
//! yes/no vote) at rewards $1.5, $2 and $3.
//!
//! The table is generated from the two tabulated rate models used throughout
//! the motivation examples, so the same models feed Figure 1's latency
//! computation (`fig1_motivation`).

use crowdtune_bench::Table;
use crowdtune_core::rate::{RateModel, TabulatedRate};

fn main() {
    // Table 1 of the paper: sorting votes are taken up more slowly than
    // yes/no votes at the same price.
    let sorting = TabulatedRate::new(vec![(1.5, 1.5), (2.0, 2.0), (3.0, 3.0)])
        .expect("sorting-vote table is valid");
    let yes_no = TabulatedRate::new(vec![(1.5, 2.0), (2.0, 3.0), (3.0, 5.0)])
        .expect("yes/no-vote table is valid");

    let mut table = Table::new(
        "Table 1 — HPU processing (uptake) rate for the motivation example",
        &["reward ($)", "sorting vote", "yes or no vote"],
    );
    for reward in [2.0, 3.0, 1.5] {
        table.push_numeric_row(
            format!("{reward}"),
            &[sorting.on_hold_rate(reward), yes_no.on_hold_rate(reward)],
            1,
        );
    }
    table.print();
    table
        .write_csv("results/table1_motivation.csv")
        .expect("can write results CSV");
    println!("CSV written to results/table1_motivation.csv");
}

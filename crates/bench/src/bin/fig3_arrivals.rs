//! Reproduces **Figure 3** of the paper: "Worker Arrival Moments".
//!
//! The paper publishes image-filter tasks at $0.05 and plots, for the first
//! 20 arrivals, the cumulative phase-1 epoch, the phase-2 latency and the
//! overall latency against the arrival order; the phase-1 epochs grow
//! linearly with the order, supporting the Poisson-process model. We replay
//! the same probe on the calibrated simulated market.

use crowdtune_bench::Table;
use crowdtune_core::inference::{estimate_rate_random_period, fit_linearity, PriceRatePoint};
use crowdtune_market::MarketConfig;
use crowdtune_platform::campaign::{Campaign, CampaignRunner, CampaignTaskSpec};

fn main() {
    let arrivals = 20u32;
    let reward_cents = 5u64;
    // One HIT asking for 20 sequential answers reproduces the probe: each
    // acceptance is a fresh exposure to the worker pool, so the acceptance
    // epochs form the arrival trace.
    let campaign = Campaign::new(
        vec![CampaignTaskSpec {
            count: 1,
            votes: 4,
            threshold: 10,
            reward_cents,
            repetitions: arrivals,
        }],
        2024,
    );
    let runner = CampaignRunner::new(7).with_market_config(MarketConfig::independent(7));
    let outcome = runner.run(&campaign).expect("campaign runs");

    let mut assignments = outcome.assignments.clone();
    assignments.sort_by(|a, b| a.submitted_at_secs.total_cmp(&b.submitted_at_secs));

    let mut table = Table::new(
        format!(
            "Figure 3 — worker arrival moments (reward ${:.2}, first {arrivals} arrivals)",
            reward_cents as f64 / 100.0
        ),
        &[
            "order",
            "phase1 epoch (min)",
            "phase2 (min)",
            "overall (min)",
        ],
    );
    let mut phase1_cumulative = 0.0;
    let mut epochs = Vec::with_capacity(assignments.len());
    for (order, assignment) in assignments.iter().enumerate() {
        phase1_cumulative += assignment.on_hold_secs;
        epochs.push(phase1_cumulative);
        table.push_numeric_row(
            (order + 1).to_string(),
            &[
                phase1_cumulative / 60.0,
                assignment.processing_secs / 60.0,
                (phase1_cumulative + assignment.processing_secs) / 60.0,
            ],
            2,
        );
    }
    table.print();
    table
        .write_csv("results/fig3_arrivals.csv")
        .expect("can write results CSV");

    // The paper's reading of the figure: the arrival epochs are linear in the
    // order (Poisson process). Quantify that with a linear fit of epoch vs
    // order and the MLE of the arrival rate.
    let points: Vec<PriceRatePoint> = epochs
        .iter()
        .enumerate()
        .map(|(order, &epoch)| PriceRatePoint::new((order + 1) as f64, epoch))
        .collect();
    let fit = fit_linearity(&points).expect("fit runs");
    let rate = estimate_rate_random_period(&epochs).expect("rate estimate");
    println!(
        "arrival epochs vs order: slope {:.1}s per arrival, R² = {:.3} (linear ⇒ Poisson arrivals hold)",
        fit.k, fit.r_squared
    );
    println!(
        "MLE arrival rate λ̂ = {:.5} s⁻¹ (paper's $0.05 estimate: 0.0038 s⁻¹); CSV in results/fig3_arrivals.csv",
        rate.rate
    );
}

//! The shared drifting-market scenario behind `examples/online_retuning.rs`
//! and the `serve_throughput` benchmark, so the example's asserted claim and
//! the benchmark's reported number can never drift apart.

use crowdtune_core::error::Result;
use crowdtune_core::money::Budget;
use crowdtune_core::problem::HTuningProblem;
use crowdtune_core::rate::{LinearRate, RateModel};
use crowdtune_core::task::TaskSet;
use crowdtune_core::tuner::{StrategyChoice, TunedPlan, Tuner};
use crowdtune_market::control::{NoopController, PiecewiseRate};
use crowdtune_market::{MarketConfig, MarketSimulator};
use crowdtune_serve::{RetunePolicy, Retuner};
use std::sync::Arc;

/// A job on a market that switches regimes mid-flight.
#[derive(Clone)]
pub struct DriftScenario {
    /// The job's task set.
    pub tasks: TaskSet,
    /// Total budget.
    pub budget: Budget,
    /// The requester's probed belief, in force until the switch.
    pub belief: Arc<dyn RateModel>,
    /// The regime the market switches into.
    pub drifted: Arc<dyn RateModel>,
    /// Simulation time of the regime switch.
    pub switch_time: f64,
    /// Re-tuning policy for the re-tuned arm.
    pub policy: RetunePolicy,
}

impl DriftScenario {
    /// The canonical demonstration: a wide group of short task chains
    /// (4 repetitions × 20 tasks) plus two deep 12-repetition chains. The
    /// flat belief makes the tuner park the wide group at the one-unit
    /// minimum and funnel spare budget into the deep chains; when the market
    /// turns steep, the wide group becomes the bottleneck and only
    /// mid-flight re-pricing of its unpublished repetitions can help.
    pub fn wide_and_deep() -> Self {
        let mut tasks = TaskSet::new();
        let vote = tasks.add_type("majority vote", 6.0).expect("valid type");
        tasks.add_tasks(vote, 4, 20).expect("valid tasks");
        tasks.add_tasks(vote, 12, 2).expect("valid tasks");
        DriftScenario {
            tasks,
            budget: Budget::units(254),
            belief: Arc::new(LinearRate::new(0.02, 2.0).expect("valid rate")),
            drifted: Arc::new(LinearRate::new(1.0, 0.02).expect("valid rate")),
            switch_time: 0.4,
            policy: RetunePolicy {
                every_completions: 3,
                min_observations: 6,
                drift_threshold: 0.35,
                ..RetunePolicy::default()
            },
        }
    }

    /// The offline plan a tune-once requester would post.
    pub fn offline_plan(&self) -> Result<TunedPlan> {
        Tuner::new(self.belief.clone()).plan(self.tasks.clone(), self.budget)
    }

    /// The drifting market as simulated for one trial.
    pub fn market(&self) -> PiecewiseRate {
        PiecewiseRate::new(self.belief.clone()).switch_at(self.switch_time, self.drifted.clone())
    }
}

/// Mean simulated job latencies of the two arms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftComparison {
    /// Tune once, never look back.
    pub tune_once_mean: f64,
    /// Same initial plan, with a [`Retuner`] subscribed to the events.
    pub retuned_mean: f64,
    /// Average number of re-tunes per job in the re-tuned arm.
    pub retunes_per_job: f64,
}

impl DriftComparison {
    /// Relative latency change of re-tuning, negative = faster.
    pub fn latency_change(&self) -> f64 {
        (self.retuned_mean - self.tune_once_mean) / self.tune_once_mean
    }
}

/// Runs both arms over `trials` seeded simulations of the scenario.
pub fn compare_tune_once_vs_retuned(
    scenario: &DriftScenario,
    trials: u64,
) -> Result<DriftComparison> {
    let plan = scenario.offline_plan()?;
    let problem = HTuningProblem::new(
        scenario.tasks.clone(),
        scenario.budget,
        scenario.belief.clone(),
    )?;
    let mut tune_once_total = 0.0;
    let mut retuned_total = 0.0;
    let mut retunes = 0u32;
    for seed in 0..trials {
        let market = scenario.market();
        let simulator = MarketSimulator::new(MarketConfig::independent(seed));
        tune_once_total += simulator
            .run_controlled(
                &scenario.tasks,
                &plan.result.allocation,
                &market,
                &mut NoopController,
            )?
            .job_latency();
        let mut retuner = Retuner::new(problem.clone(), StrategyChoice::Auto, scenario.policy);
        retuned_total += simulator
            .run_controlled(
                &scenario.tasks,
                &plan.result.allocation,
                &market,
                &mut retuner,
            )?
            .job_latency();
        retunes += retuner.stats().retunes;
    }
    Ok(DriftComparison {
        tune_once_mean: tune_once_total / trials as f64,
        retuned_mean: retuned_total / trials as f64,
        retunes_per_job: f64::from(retunes) / trials as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retuned_arm_is_no_slower_under_drift() {
        let comparison = compare_tune_once_vs_retuned(&DriftScenario::wide_and_deep(), 40).unwrap();
        assert!(
            comparison.retuned_mean <= comparison.tune_once_mean * 1.02,
            "re-tuning must not slow the job: {comparison:?}"
        );
        assert!(comparison.retunes_per_job > 0.0, "{comparison:?}");
    }
}

//! The synthetic experiment machinery behind Figure 2 of the paper.
//!
//! Figure 2 is an 18-panel grid: three scenarios (Homogeneity, Repetition,
//! Heterogeneous) crossed with six price-to-rate models (four linear, two
//! non-linear), each panel sweeping the budget from 1000 to 5000 units over
//! 100 tasks and comparing the optimal strategy against two baselines. The
//! builders here reproduce the exact workload settings of Section 5.1.1 and
//! evaluate every strategy's allocation with the analytic expected-latency
//! estimator (both phases), so the binaries and Criterion benches only have
//! to iterate panels.

use crowdtune_core::algorithms::{
    BiasedAllocation, EvenAllocation, HeterogeneousAlgorithm, RepetitionAlgorithm,
    RepetitionEvenAllocation, TaskEvenAllocation,
};
use crowdtune_core::error::Result;
use crowdtune_core::latency::{JobLatencyEstimator, PhaseSelection};
use crowdtune_core::money::Budget;
use crowdtune_core::problem::{HTuningProblem, TuningStrategy};
use crowdtune_core::rate::PaperRateModel;
use crowdtune_core::task::TaskSet;
use serde::{Deserialize, Serialize};

/// The three scenario columns of Figure 2, with the paper's workload
/// parameters baked in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticScenario {
    /// 100 identical tasks, 5 repetitions each, `λp = 2.0`; baselines are the
    /// biased allocations with `α = 0.67` and `α = 0.75`.
    Homogeneous,
    /// 50 tasks with 3 repetitions and 50 with 5, identical difficulty
    /// (`λp = 2.0`); baselines are task-even and rep-even.
    Repetition,
    /// 50 tasks with 3 repetitions (`λp = 2.0`) and 50 with 5 repetitions
    /// (`λp = 3.0`); baselines are task-even and rep-even.
    Heterogeneous,
}

impl SyntheticScenario {
    /// All three scenarios in paper order.
    pub const ALL: [SyntheticScenario; 3] = [
        SyntheticScenario::Homogeneous,
        SyntheticScenario::Repetition,
        SyntheticScenario::Heterogeneous,
    ];

    /// Short label used in output files (`homo`, `repe`, `heter`).
    pub fn label(self) -> &'static str {
        match self {
            SyntheticScenario::Homogeneous => "homo",
            SyntheticScenario::Repetition => "repe",
            SyntheticScenario::Heterogeneous => "heter",
        }
    }

    /// Builds the paper's task set for this scenario scaled to `tasks` atomic
    /// tasks (the paper uses 100).
    pub fn build_task_set(self, tasks: usize) -> Result<TaskSet> {
        let mut set = TaskSet::new();
        match self {
            SyntheticScenario::Homogeneous => {
                let ty = set.add_type("vote", 2.0)?;
                set.add_tasks(ty, 5, tasks)?;
            }
            SyntheticScenario::Repetition => {
                let ty = set.add_type("vote", 2.0)?;
                set.add_tasks(ty, 3, tasks / 2)?;
                set.add_tasks(ty, 5, tasks - tasks / 2)?;
            }
            SyntheticScenario::Heterogeneous => {
                let easy = set.add_type("easy vote", 2.0)?;
                let hard = set.add_type("hard vote", 3.0)?;
                set.add_tasks(easy, 3, tasks / 2)?;
                set.add_tasks(hard, 5, tasks - tasks / 2)?;
            }
        }
        Ok(set)
    }

    /// The strategies plotted in this scenario's panels, optimal first.
    pub fn strategies(self) -> Vec<(String, Box<dyn TuningStrategy>)> {
        match self {
            SyntheticScenario::Homogeneous => vec![
                (
                    "opt".to_owned(),
                    Box::new(EvenAllocation::new().without_objective()) as Box<dyn TuningStrategy>,
                ),
                ("bias_1".to_owned(), Box::new(BiasedAllocation::bias_1())),
                ("bias_2".to_owned(), Box::new(BiasedAllocation::bias_2())),
            ],
            SyntheticScenario::Repetition => vec![
                (
                    "opt".to_owned(),
                    Box::new(RepetitionAlgorithm::new()) as Box<dyn TuningStrategy>,
                ),
                ("te".to_owned(), Box::new(TaskEvenAllocation::new())),
                ("re".to_owned(), Box::new(RepetitionEvenAllocation::new())),
            ],
            SyntheticScenario::Heterogeneous => vec![
                (
                    "opt".to_owned(),
                    Box::new(HeterogeneousAlgorithm::new()) as Box<dyn TuningStrategy>,
                ),
                ("te".to_owned(), Box::new(TaskEvenAllocation::new())),
                ("re".to_owned(), Box::new(RepetitionEvenAllocation::new())),
            ],
        }
    }
}

/// One budget level of one panel: the expected latency achieved by every
/// strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelRow {
    /// Budget in payment units.
    pub budget: u64,
    /// `(strategy label, expected latency)` pairs in strategy order.
    pub latencies: Vec<(String, f64)>,
}

/// One panel of Figure 2: a scenario × rate-model combination swept over the
/// budgets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PanelResult {
    /// The scenario column.
    pub scenario: SyntheticScenario,
    /// The price-to-rate model row.
    pub model: PaperRateModel,
    /// One row per budget level.
    pub rows: Vec<PanelRow>,
}

impl PanelResult {
    /// Whether the optimal strategy ("opt", the first column) is no worse
    /// than every baseline at every budget, up to `tolerance` relative slack.
    pub fn optimal_dominates(&self, tolerance: f64) -> bool {
        self.rows.iter().all(|row| {
            let opt = row.latencies[0].1;
            row.latencies[1..]
                .iter()
                .all(|(_, baseline)| opt <= baseline * (1.0 + tolerance))
        })
    }
}

/// Configuration of a Figure 2 reproduction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of atomic tasks per panel (the paper uses 100).
    pub tasks: usize,
    /// Budget levels to sweep (the paper uses 1000–5000).
    pub budgets: Vec<u64>,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            tasks: 100,
            budgets: vec![1000, 2000, 3000, 4000, 5000],
        }
    }
}

impl SyntheticConfig {
    /// A reduced configuration for quick smoke tests and Criterion benches.
    pub fn small() -> Self {
        SyntheticConfig {
            tasks: 20,
            budgets: vec![200, 400, 800],
        }
    }
}

/// Runs one panel: builds the workload, tunes it with every strategy at every
/// budget and evaluates the expected latency (both phases) analytically.
pub fn run_panel(
    scenario: SyntheticScenario,
    model: PaperRateModel,
    config: &SyntheticConfig,
) -> Result<PanelResult> {
    let task_set = scenario.build_task_set(config.tasks)?;
    let rate_model: std::sync::Arc<dyn crowdtune_core::rate::RateModel> = model.build().into();
    let strategies = scenario.strategies();
    let mut rows = Vec::with_capacity(config.budgets.len());
    for &budget in &config.budgets {
        let problem =
            HTuningProblem::new(task_set.clone(), Budget::units(budget), rate_model.clone())?;
        let estimator = JobLatencyEstimator::new(problem.task_set(), problem.rate_model());
        let mut latencies = Vec::with_capacity(strategies.len());
        for (label, strategy) in &strategies {
            let result = strategy.tune(&problem)?;
            let latency =
                estimator.analytic_expected_latency(&result.allocation, PhaseSelection::Both)?;
            latencies.push((label.clone(), latency));
        }
        rows.push(PanelRow { budget, latencies });
    }
    Ok(PanelResult {
        scenario,
        model,
        rows,
    })
}

/// Runs the full 18-panel grid, parallelising across panels with scoped
/// threads.
pub fn run_figure2(config: &SyntheticConfig) -> Result<Vec<PanelResult>> {
    let combos: Vec<(SyntheticScenario, PaperRateModel)> = SyntheticScenario::ALL
        .into_iter()
        .flat_map(|s| PaperRateModel::ALL.into_iter().map(move |m| (s, m)))
        .collect();
    let mut results: Vec<Option<Result<PanelResult>>> = Vec::new();
    results.resize_with(combos.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(combos.len());
        for &(scenario, model) in &combos {
            handles.push(scope.spawn(move || run_panel(scenario, model, config)));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("panel thread panicked"));
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every panel slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_sets_match_paper_settings() {
        let homo = SyntheticScenario::Homogeneous.build_task_set(100).unwrap();
        assert_eq!(homo.len(), 100);
        assert!(homo.is_uniform_repetitions());
        assert!(homo.is_homogeneous_type());

        let repe = SyntheticScenario::Repetition.build_task_set(100).unwrap();
        assert_eq!(repe.len(), 100);
        assert!(!repe.is_uniform_repetitions());
        assert!(repe.is_homogeneous_type());
        assert_eq!(repe.group_by_repetitions().len(), 2);

        let heter = SyntheticScenario::Heterogeneous
            .build_task_set(100)
            .unwrap();
        assert!(!heter.is_homogeneous_type());
        assert_eq!(heter.group_by_type_and_repetitions().len(), 2);
        assert_eq!(SyntheticScenario::Homogeneous.label(), "homo");
    }

    #[test]
    fn strategies_have_opt_first() {
        for scenario in SyntheticScenario::ALL {
            let strategies = scenario.strategies();
            assert_eq!(strategies.len(), 3);
            assert_eq!(strategies[0].0, "opt");
        }
    }

    #[test]
    fn panel_runs_and_optimal_dominates_on_linear_models() {
        let config = SyntheticConfig::small();
        for scenario in SyntheticScenario::ALL {
            let panel = run_panel(scenario, PaperRateModel::UnitSlope, &config).unwrap();
            assert_eq!(panel.rows.len(), config.budgets.len());
            assert!(
                panel.optimal_dominates(0.02),
                "{scenario:?} opt should dominate: {:?}",
                panel.rows
            );
            // latency decreases (weakly) with budget for the optimal strategy
            let opt: Vec<f64> = panel.rows.iter().map(|r| r.latencies[0].1).collect();
            assert!(opt.windows(2).all(|w| w[1] <= w[0] + 1e-6));
        }
    }

    #[test]
    fn panel_handles_nonlinear_models() {
        let config = SyntheticConfig::small();
        let panel = run_panel(
            SyntheticScenario::Repetition,
            PaperRateModel::Logarithmic,
            &config,
        )
        .unwrap();
        assert!(panel
            .rows
            .iter()
            .all(|r| r.latencies.iter().all(|(_, l)| l.is_finite() && *l > 0.0)));
    }

    #[test]
    fn full_grid_has_eighteen_panels() {
        let config = SyntheticConfig {
            tasks: 10,
            budgets: vec![100, 200],
        };
        let grid = run_figure2(&config).unwrap();
        assert_eq!(grid.len(), 18);
        // Every (scenario, model) combination appears exactly once.
        let mut seen = std::collections::BTreeSet::new();
        for panel in &grid {
            seen.insert((panel.scenario.label(), panel.model.label()));
        }
        assert_eq!(seen.len(), 18);
    }
}

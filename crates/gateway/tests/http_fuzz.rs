//! Seeded property/fuzz tests of the gateway's HTTP parser (and the server
//! behind it): the parser must **never panic** and must classify every
//! input as a request, a clean close, or a typed error that maps to a 4xx/
//! 5xx response — across malformed request lines, oversized heads, torn
//! reads at every byte boundary, and pipelined requests.

use crowdtune_gateway::http::{read_request, Limits, Request, RequestError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, Read};

/// A reader that yields its data in caller-chosen chunks, simulating torn
/// socket reads. Wrapped in a tiny-capacity `BufReader` so each `fill_buf`
/// surfaces at most one chunk to the parser.
struct Torn {
    data: Vec<u8>,
    cuts: Vec<usize>,
    pos: usize,
}

impl Torn {
    /// Splits `data` at every index in `cuts` (sorted, deduplicated by the
    /// caller); reads never cross a cut.
    fn new(data: Vec<u8>, cuts: Vec<usize>) -> Self {
        Torn { data, cuts, pos: 0 }
    }
}

impl Read for Torn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let next_cut = self
            .cuts
            .iter()
            .copied()
            .find(|&c| c > self.pos)
            .unwrap_or(self.data.len())
            .min(self.data.len());
        let n = (next_cut - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn parse_whole(text: &[u8], limits: &Limits) -> Result<Option<Request>, RequestError> {
    read_request(&mut BufReader::new(text), limits)
}

fn valid_request(rng: &mut StdRng) -> String {
    let bodies = ["", "{}", "{\"k\":1}", "0123456789abcdef"];
    let body = bodies[rng.gen_range(0usize..bodies.len())];
    let path =
        ["/healthz", "/v1/metrics", "/v1/jobs/17", "/v1/jobs?wait=1"][rng.gen_range(0usize..4)];
    let method = if body.is_empty() { "GET" } else { "POST" };
    let mut text = format!("{method} {path} HTTP/1.1\r\n");
    if rng.gen_bool(0.5) {
        text.push_str("Host: fuzz.local\r\n");
    }
    if rng.gen_bool(0.3) {
        text.push_str("X-Fill: some filler value\r\n");
    }
    if !body.is_empty() || rng.gen_bool(0.2) {
        text.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    if rng.gen_bool(0.2) {
        text.push_str("Connection: keep-alive\r\n");
    }
    text.push_str("\r\n");
    text.push_str(body);
    text
}

/// Every valid request parses identically no matter where the transport
/// tears it — exhaustively, at *every* byte boundary (and at random
/// multi-cut combinations).
#[test]
fn torn_reads_at_every_boundary_parse_identically() {
    let mut rng = StdRng::seed_from_u64(0xB0A7);
    let limits = Limits::default();
    for _ in 0..24 {
        let text = valid_request(&mut rng);
        let reference = parse_whole(text.as_bytes(), &limits)
            .expect("valid request parses")
            .expect("valid request is not EOF");
        for cut in 1..text.len() {
            let torn = Torn::new(text.clone().into_bytes(), vec![cut]);
            let parsed = read_request(&mut BufReader::with_capacity(16, torn), &limits)
                .unwrap_or_else(|e| panic!("cut at {cut} of {text:?}: {e}"))
                .expect("torn request still parses");
            assert_eq!(parsed, reference, "cut at byte {cut}");
        }
        // A few random many-cut shreddings on top of the exhaustive single
        // cuts.
        for _ in 0..8 {
            let mut cuts: Vec<usize> = (0..rng.gen_range(2usize..9))
                .map(|_| rng.gen_range(1usize..text.len()))
                .collect();
            cuts.sort_unstable();
            cuts.dedup();
            let torn = Torn::new(text.clone().into_bytes(), cuts.clone());
            let parsed = read_request(&mut BufReader::with_capacity(8, torn), &limits)
                .unwrap_or_else(|e| panic!("cuts {cuts:?} of {text:?}: {e}"))
                .expect("shredded request still parses");
            assert_eq!(parsed, reference, "cuts {cuts:?}");
        }
    }
}

/// Truncating a valid request at any byte is either a clean EOF (nothing
/// sent yet) or a malformed-request error — never a panic, never a success.
#[test]
fn truncations_never_panic_and_never_parse() {
    let mut rng = StdRng::seed_from_u64(0x7A11);
    let limits = Limits::default();
    for _ in 0..16 {
        let text = valid_request(&mut rng);
        for cut in 0..text.len() {
            match parse_whole(&text.as_bytes()[..cut], &limits) {
                Ok(None) => assert_eq!(cut, 0, "only zero bytes is a clean EOF"),
                Ok(Some(_)) => panic!("truncated request at {cut} must not parse: {text:?}"),
                Err(e) => {
                    let status = e.status().expect("truncation is never an I/O error");
                    assert_eq!(status, 400, "truncation at {cut} -> {e}");
                }
            }
        }
    }
}

/// Random byte soup and mutated requests: the parser always returns — with
/// any outcome mapping to a response or a close, never a panic. Seeded, so
/// a failure reproduces.
#[test]
fn random_garbage_is_classified_never_panicking() {
    let mut rng = StdRng::seed_from_u64(0xF022);
    let limits = Limits {
        max_request_line: 128,
        max_header_line: 128,
        max_headers: 8,
        max_body: 256,
    };
    for case in 0..2048u32 {
        let data: Vec<u8> = if rng.gen_bool(0.5) {
            // Pure soup.
            (0..rng.gen_range(0usize..256))
                .map(|_| rng.gen_range(0u32..256) as u8)
                .collect()
        } else {
            // A valid request, mutated: flips, truncation, garbage splice.
            let mut data = valid_request(&mut rng).into_bytes();
            for _ in 0..rng.gen_range(1usize..6) {
                if data.is_empty() {
                    break;
                }
                let at = rng.gen_range(0usize..data.len());
                match rng.gen_range(0u32..3) {
                    0 => data[at] ^= 1 << rng.gen_range(0u32..8),
                    1 => {
                        data.truncate(at);
                    }
                    _ => data.insert(at, rng.gen_range(0u32..256) as u8),
                }
            }
            data
        };
        match parse_whole(&data, &limits) {
            Ok(_) => {}
            Err(e) => {
                if let Some(status) = e.status() {
                    assert!(
                        (400..=599).contains(&status),
                        "case {case}: status {status} for {e}"
                    );
                }
            }
        }
    }
}

/// Oversized heads are refused with 431 without buffering them: a request
/// line, single header, or header count beyond the limits errors out even
/// when the input keeps streaming.
#[test]
fn oversized_heads_hit_the_bounds() {
    let limits = Limits {
        max_request_line: 64,
        max_header_line: 64,
        max_headers: 4,
        max_body: 64,
    };
    let mut rng = StdRng::seed_from_u64(0x512E);
    for _ in 0..64 {
        let kind = rng.gen_range(0u32..3);
        let text = match kind {
            0 => format!(
                "GET /{} HTTP/1.1\r\n\r\n",
                "x".repeat(rng.gen_range(80usize..4096))
            ),
            1 => format!(
                "GET / HTTP/1.1\r\nx-long: {}\r\n\r\n",
                "v".repeat(rng.gen_range(80usize..4096))
            ),
            _ => {
                let mut text = "GET / HTTP/1.1\r\n".to_owned();
                for i in 0..rng.gen_range(5usize..32) {
                    text.push_str(&format!("x-{i}: v\r\n"));
                }
                text.push_str("\r\n");
                text
            }
        };
        let err = parse_whole(text.as_bytes(), &limits).unwrap_err();
        assert_eq!(err.status(), Some(431), "kind {kind}");
    }
    // Declared bodies beyond the bound are refused from the header alone.
    let err = parse_whole(b"POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n", &limits).unwrap_err();
    assert_eq!(err.status(), Some(413));
}

/// Pipelined request streams parse back to back, even shredded by torn
/// reads, and a trailing partial request is a malformed error — the earlier
/// requests are unaffected.
#[test]
fn pipelined_streams_parse_in_order() {
    let mut rng = StdRng::seed_from_u64(0x9199);
    let limits = Limits::default();
    for _ in 0..32 {
        let count = rng.gen_range(2usize..6);
        let requests: Vec<String> = (0..count).map(|_| valid_request(&mut rng)).collect();
        let stream: String = requests.concat();
        let references: Vec<Request> = requests
            .iter()
            .map(|r| parse_whole(r.as_bytes(), &limits).unwrap().unwrap())
            .collect();

        let mut cuts: Vec<usize> = (0..rng.gen_range(0usize..12))
            .map(|_| rng.gen_range(1usize..stream.len()))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let torn = Torn::new(stream.clone().into_bytes(), cuts);
        let mut reader = BufReader::with_capacity(16, torn);
        for (i, reference) in references.iter().enumerate() {
            let parsed = read_request(&mut reader, &limits)
                .unwrap_or_else(|e| panic!("request {i}: {e}"))
                .expect("pipelined request present");
            assert_eq!(&parsed, reference, "pipelined request {i}");
        }
        assert!(
            read_request(&mut reader, &limits).unwrap().is_none(),
            "stream fully consumed"
        );

        // The same stream with a torn final request: earlier requests parse,
        // the tail is malformed (or clean EOF if nothing of it was sent).
        let partial = valid_request(&mut rng);
        let cut = rng.gen_range(1usize..partial.len());
        let mut with_tail = stream.into_bytes();
        with_tail.extend_from_slice(&partial.as_bytes()[..cut]);
        let mut reader = BufReader::with_capacity(16, Torn::new(with_tail, vec![]));
        for reference in &references {
            let parsed = read_request(&mut reader, &limits).unwrap().unwrap();
            assert_eq!(&parsed, reference);
        }
        let tail = read_request(&mut reader, &limits);
        assert!(
            matches!(tail, Err(RequestError::Malformed(_))),
            "torn tail must be malformed, got {tail:?}"
        );
    }
}

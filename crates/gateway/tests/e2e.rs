//! End-to-end tests over real sockets: a `TuningService` behind a
//! `Gateway`, exercised with a minimal raw-TCP HTTP client. Covers the
//! happy paths (sync and async submission, polling, metrics, health), the
//! full error mapping (400/404/405/422/429/503), plan bit-identity against
//! in-process submits, keep-alive + pipelining, malformed-input resilience,
//! drain semantics, and the `StoreStats::dropped` metrics exposure under a
//! forced-full write-behind queue.

use crowdtune_core::rate::{LinearRate, RateSpec};
use crowdtune_core::task::TaskGroupSpec;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_gateway::{Gateway, GatewayConfig, JobRequestWire};
use crowdtune_serve::{
    AdmissionPolicy, FsyncPolicy, PlanSource, ServiceConfig, StoreOptions, TuningService,
};
use serde::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One parsed HTTP response.
struct HttpResponse {
    status: u16,
    content_type: String,
    body: String,
}

impl HttpResponse {
    fn json(&self) -> Value {
        serde_json::parse_value_str(&self.body)
            .unwrap_or_else(|e| panic!("body is not JSON ({e}): {}", self.body))
    }
}

/// A keep-alive test client over one TCP connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to gateway");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send_raw(&mut self, text: &str) {
        self.stream.write_all(text.as_bytes()).expect("send");
    }

    fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> HttpResponse {
        self.request_with(method, target, &[], body)
    }

    fn request_with(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> HttpResponse {
        let mut text = format!("{method} {target} HTTP/1.1\r\nHost: test\r\n");
        for (name, value) in headers {
            text.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            text.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        text.push_str("\r\n");
        if let Some(body) = body {
            text.push_str(body);
        }
        self.send_raw(&text);
        self.read_response().expect("response")
    }

    fn read_response(&mut self) -> Option<HttpResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        let mut content_type = String::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content length");
                } else if name.eq_ignore_ascii_case("content-type") {
                    content_type = value.trim().to_owned();
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        Some(HttpResponse {
            status,
            content_type,
            body: String::from_utf8(body).expect("utf-8 body"),
        })
    }
}

fn one_shot(addr: SocketAddr, method: &str, target: &str, body: Option<&str>) -> HttpResponse {
    Client::connect(addr).request(method, target, body)
}

fn ra_wire(tenant: &str, budget: u64) -> JobRequestWire {
    JobRequestWire {
        tenant: tenant.to_owned(),
        market: None,
        groups: vec![
            TaskGroupSpec {
                name: "vote".to_owned(),
                processing_rate: 2.0,
                tasks: 4,
                repetitions: 3,
            },
            TaskGroupSpec {
                name: "vote".to_owned(),
                processing_rate: 2.0,
                tasks: 4,
                repetitions: 5,
            },
        ],
        budget,
        rate: RateSpec::Linear(LinearRate::new(1.5, 0.5).unwrap()),
        strategy: StrategyChoice::Auto,
    }
}

fn start_gateway(
    service_config: ServiceConfig,
    config: GatewayConfig,
) -> (Arc<TuningService>, Gateway) {
    let service = Arc::new(TuningService::start(service_config));
    let gateway = Gateway::start(service.clone(), "127.0.0.1:0", config).expect("bind gateway");
    (service, gateway)
}

fn field<'v>(value: &'v Value, name: &str) -> &'v Value {
    value.field(name).unwrap_or_else(|e| panic!("{e}"))
}

fn as_u64(value: &Value) -> u64 {
    match value {
        Value::I64(v) => u64::try_from(*v).expect("non-negative"),
        Value::U64(v) => *v,
        other => panic!("expected integer, got {other:?}"),
    }
}

fn as_str(value: &Value) -> &str {
    match value {
        Value::Str(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

/// A process-unique scratch directory (no tempfile crate offline).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "crowdtune-gateway-test-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sync submission end to end: the plan served over HTTP is byte-identical
/// (as rendered JSON) to an in-process submit of the same wire request, the
/// `PlanSource` is reported, and a repeat hits the cache.
#[test]
fn sync_submission_serves_bit_identical_plans() {
    let (service, gateway) = start_gateway(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        GatewayConfig::default(),
    );
    let addr = gateway.local_addr();
    let wire = ra_wire("acme", 120);
    let body = serde_json::to_string(&wire).unwrap();

    let response = one_shot(addr, "POST", "/v1/jobs?wait=1", Some(&body));
    assert_eq!(response.status, 200, "{}", response.body);
    let json = response.json();
    assert_eq!(as_str(field(&json, "status")), "done");
    assert_eq!(as_str(field(&json, "source")), "cold");

    // The in-process reference: same wire request through `submit` directly.
    let reference = service
        .tune(wire.to_request(1_000_000).unwrap())
        .expect("in-process submit");
    assert_eq!(
        reference.source,
        PlanSource::CacheHit,
        "the HTTP submit warmed the exact-match cache"
    );
    let reference_plan = serde_json::to_string(&*reference.plan).unwrap();
    let served_plan = serde_json::to_string(field(&json, "plan")).unwrap();
    assert_eq!(
        served_plan, reference_plan,
        "HTTP-served plan must be bit-identical to the in-process plan"
    );

    // Repeat over HTTP: exact-match cache hit, same bytes.
    let repeat = one_shot(addr, "POST", "/v1/jobs?wait=1", Some(&body));
    assert_eq!(repeat.status, 200);
    let repeat_json = repeat.json();
    assert_eq!(as_str(field(&repeat_json, "source")), "cache");
    assert_eq!(
        serde_json::to_string(field(&repeat_json, "plan")).unwrap(),
        reference_plan
    );
    gateway.shutdown();
}

/// Async submission: 202 + id, poll until done, the outcome is retained for
/// later polls, unknown ids are 404.
#[test]
fn async_submission_polls_to_completion() {
    let (_service, gateway) = start_gateway(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        GatewayConfig::default(),
    );
    let addr = gateway.local_addr();
    let body = serde_json::to_string(&ra_wire("acme", 90)).unwrap();
    let mut client = Client::connect(addr);

    let submitted = client.request("POST", "/v1/jobs", Some(&body));
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let job_id = as_u64(field(&submitted.json(), "job_id"));

    let target = format!("/v1/jobs/{job_id}");
    let done = loop {
        let polled = client.request("GET", &target, None);
        assert_eq!(polled.status, 200);
        let json = polled.json();
        match as_str(field(&json, "status")) {
            "pending" => std::thread::yield_now(),
            "done" => break json,
            other => panic!("unexpected status {other}"),
        }
    };
    assert_eq!(as_str(field(&done, "source")), "cold");
    assert!(!matches!(field(&done, "plan"), Value::Null));

    // The outcome is retained: polling again returns the identical body.
    let again = client.request("GET", &target, None);
    assert_eq!(
        serde_json::to_string(&again.json()).unwrap(),
        serde_json::to_string(&done).unwrap()
    );

    let missing = client.request("GET", "/v1/jobs/999999", None);
    assert_eq!(missing.status, 404);
    let not_an_id = client.request("GET", "/v1/jobs/xyz", None);
    assert_eq!(not_an_id.status, 404);
    drop(client);
    gateway.shutdown();
}

/// The error mapping: malformed JSON → 400, semantic errors → 422,
/// insufficient budget → 422 (tuning), unknown route → 404, wrong method →
/// 405, per-tenant admission → 429, global queue-full → 503.
#[test]
fn error_mapping_over_http() {
    let (_service, gateway) = start_gateway(
        ServiceConfig {
            workers: 1,
            admission: AdmissionPolicy {
                max_pending: 2,
                max_pending_per_tenant: 1,
            },
            ..ServiceConfig::default()
        },
        GatewayConfig::default(),
    );
    let addr = gateway.local_addr();
    let mut client = Client::connect(addr);

    let bad_json = client.request("POST", "/v1/jobs", Some("{not json"));
    assert_eq!(bad_json.status, 400);
    assert_eq!(as_str(field(&bad_json.json(), "error")), "bad_request");

    let no_body = client.request("POST", "/v1/jobs", None);
    assert_eq!(no_body.status, 400);

    let mut zero_reps = ra_wire("acme", 100);
    zero_reps.groups[0].repetitions = 0;
    let invalid = client.request(
        "POST",
        "/v1/jobs",
        Some(&serde_json::to_string(&zero_reps).unwrap()),
    );
    assert_eq!(invalid.status, 422);
    assert_eq!(as_str(field(&invalid.json(), "error")), "invalid_job");

    // Budget below the mandatory slots: the solver rejects → 422 tuning.
    let broke = client.request(
        "POST",
        "/v1/jobs?wait=1",
        Some(&serde_json::to_string(&ra_wire("acme", 5)).unwrap()),
    );
    assert_eq!(broke.status, 422);
    assert_eq!(as_str(field(&broke.json(), "error")), "tuning_failed");

    assert_eq!(client.request("GET", "/nope", None).status, 404);
    assert_eq!(client.request("DELETE", "/v1/jobs", None).status, 405);
    assert_eq!(client.request("POST", "/healthz", Some("{}")).status, 405);
    assert_eq!(
        client.request("GET", "/v1/jobs", None).status,
        405,
        "known path, wrong method — the collection has no GET"
    );
    assert_eq!(
        client.request("DELETE", "/v1/jobs/1", None).status,
        404,
        "DELETE is routed now; an unknown id is 404, not 405"
    );

    // Flood one tenant with async submissions: the per-tenant depth bound
    // (1) must answer 429 once a job is queued behind the busy worker.
    let mut saw_tenant_limit = false;
    for i in 0..64 {
        let body = serde_json::to_string(&ra_wire("flood", 2000 + i)).unwrap();
        let response = client.request("POST", "/v1/jobs", Some(&body));
        match response.status {
            202 => continue,
            429 => {
                assert_eq!(
                    as_str(field(&response.json(), "error")),
                    "tenant_over_limit"
                );
                saw_tenant_limit = true;
                break;
            }
            other => panic!("unexpected status {other}: {}", response.body),
        }
    }
    assert!(saw_tenant_limit, "per-tenant admission must surface as 429");

    // Distinct tenants exhaust the tiny global bound → 503 queue_full.
    let mut saw_queue_full = false;
    for i in 0..64 {
        let body = serde_json::to_string(&ra_wire(&format!("t{i}"), 3000 + i)).unwrap();
        let response = client.request("POST", "/v1/jobs", Some(&body));
        match response.status {
            202 | 429 => continue,
            503 => {
                assert_eq!(as_str(field(&response.json(), "error")), "queue_full");
                saw_queue_full = true;
                break;
            }
            other => panic!("unexpected status {other}: {}", response.body),
        }
    }
    assert!(saw_queue_full, "global queue-full must surface as 503");
    drop(client);
    gateway.shutdown();
}

/// Keep-alive and pipelining at the socket level: several requests written
/// in one burst come back as in-order responses on the same connection.
#[test]
fn keep_alive_pipelining_over_one_socket() {
    let (_service, gateway) = start_gateway(ServiceConfig::default(), GatewayConfig::default());
    let mut client = Client::connect(gateway.local_addr());
    client.send_raw(
        "GET /healthz HTTP/1.1\r\n\r\nGET /v1/metrics HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    let first = client.read_response().expect("first");
    assert_eq!(first.status, 200);
    assert_eq!(as_str(field(&first.json(), "status")), "healthy");
    let second = client.read_response().expect("second");
    assert_eq!(second.status, 200);
    assert!(second.body.contains("cache_hits"));
    let third = client.read_response().expect("third");
    assert_eq!(third.status, 200);
    assert!(
        client.read_response().is_none(),
        "Connection: close ends the stream"
    );
    gateway.shutdown();
}

/// Malformed input over a real socket: a 400 comes back, the connection
/// closes, and the server keeps serving fresh connections.
#[test]
fn malformed_requests_answer_400_and_the_server_survives() {
    let (_service, gateway) = start_gateway(ServiceConfig::default(), GatewayConfig::default());
    let addr = gateway.local_addr();
    let mut client = Client::connect(addr);
    client.send_raw("THIS IS NOT HTTP\r\n\r\n");
    let response = client.read_response().expect("error response");
    assert_eq!(response.status, 400);
    assert!(
        client.read_response().is_none(),
        "connection closes after a parse error"
    );
    // Fresh connections still work.
    let health = one_shot(addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    gateway.shutdown();
}

/// Drain semantics: a draining service answers health with `draining:
/// true`, refuses new submissions with 503, and gateway shutdown completes
/// with a client connection open.
#[test]
fn drain_rejects_submissions_and_shutdown_completes() {
    let (service, gateway) = start_gateway(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        GatewayConfig {
            keep_alive_timeout: Duration::from_millis(200),
            ..GatewayConfig::default()
        },
    );
    let addr = gateway.local_addr();
    let mut client = Client::connect(addr);
    let health = client.request("GET", "/healthz", None);
    assert_eq!(health.status, 200);
    assert_eq!(as_str(field(&health.json(), "status")), "healthy");
    assert!(matches!(
        field(&health.json(), "draining"),
        Value::Bool(false)
    ));

    service.begin_drain();
    let health = client.request("GET", "/healthz", None);
    assert_eq!(health.status, 503, "probes take a draining node out");
    assert_eq!(as_str(field(&health.json(), "status")), "draining");
    assert!(matches!(
        field(&health.json(), "draining"),
        Value::Bool(true)
    ));
    let refused = client.request(
        "POST",
        "/v1/jobs",
        Some(&serde_json::to_string(&ra_wire("acme", 90)).unwrap()),
    );
    assert_eq!(refused.status, 503);
    assert_eq!(as_str(field(&refused.json(), "error")), "draining");

    // Shutdown with the keep-alive client still connected: bounded by the
    // idle timeout, not hung.
    gateway.shutdown();
    // The gateway is gone: either the connect is refused or the socket
    // yields no response.
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = [0u8; 1];
            let got = stream.read(&mut buf);
            assert!(
                matches!(got, Ok(0) | Err(_)),
                "no live server behind the address"
            );
        }
    }
}

/// Fire-and-forget async submissions must not grow the job registry
/// without bound: past the retention cap the oldest entries are reaped
/// (resolved if answered, dropped otherwise) while the newest stay
/// pollable.
#[test]
fn unpolled_async_jobs_are_bounded_not_leaked() {
    let (_service, gateway) = start_gateway(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        GatewayConfig {
            max_completed_jobs: 4,
            ..GatewayConfig::default()
        },
    );
    let mut client = Client::connect(gateway.local_addr());
    let mut ids = Vec::new();
    for budget in 0..12u64 {
        let body = serde_json::to_string(&ra_wire("acme", 100 + budget)).unwrap();
        let response = client.request("POST", "/v1/jobs", Some(&body));
        assert_eq!(response.status, 202, "{}", response.body);
        ids.push(as_u64(field(&response.json(), "job_id")));
    }
    // The newest 4 submissions fit the cap and are still tracked; polling
    // them to completion fills the bounded retained set...
    for &id in &ids[8..12] {
        loop {
            let polled = client.request("GET", &format!("/v1/jobs/{id}"), None);
            assert_eq!(polled.status, 200, "job {id}: {}", polled.body);
            match as_str(field(&polled.json(), "status")) {
                "pending" => std::thread::yield_now(),
                "done" => break,
                other => panic!("job {id} ended as {other}"),
            }
        }
    }
    // ...which leaves no room for the oldest submission: it was either
    // dropped while still pending at reap time, or resolved early and then
    // FIFO-evicted by the four newer outcomes. Either way the registry
    // stayed bounded and the oldest id no longer resolves.
    let oldest = client.request("GET", &format!("/v1/jobs/{}", ids[0]), None);
    assert_eq!(oldest.status, 404, "oldest unpolled job must be evicted");
    let newest = client.request("GET", &format!("/v1/jobs/{}", ids[11]), None);
    assert_eq!(newest.status, 200, "{}", newest.body);
    drop(client);
    gateway.shutdown();
}

/// A client trickling bytes slower than the request deadline must not pin
/// a pool thread forever: the connection is closed once the whole-request
/// deadline passes, even though each individual read stays under the
/// keep-alive timeout.
#[test]
fn trickled_requests_hit_the_request_deadline() {
    let (_service, gateway) = start_gateway(
        ServiceConfig::default(),
        GatewayConfig {
            keep_alive_timeout: Duration::from_millis(400),
            request_deadline: Duration::from_millis(600),
            ..GatewayConfig::default()
        },
    );
    let addr = gateway.local_addr();
    let mut trickler = Client::connect(addr);
    let started = std::time::Instant::now();
    // One header fragment per 150ms: each read beats the 400ms socket
    // timeout, so only the total deadline can stop this.
    trickler.send_raw("GET /healthz HTTP/1.1\r\n");
    let mut closed = false;
    for fragment in 0..40 {
        std::thread::sleep(Duration::from_millis(150));
        if trickler
            .stream
            .write_all(format!("X-Drip-{fragment}: v\r\n").as_bytes())
            .is_err()
        {
            closed = true;
            break;
        }
        // A closed connection may only surface on the next read.
        let mut buf = [0u8; 256];
        match trickler.stream.read(&mut buf) {
            Ok(0) => {
                closed = true;
                break;
            }
            _ => continue,
        }
    }
    assert!(closed, "trickled request must be cut off");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "cut-off must come from the deadline, not the 6s of drip"
    );
    // The pool thread is free again: a well-behaved client is served.
    let health = one_shot(addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    gateway.shutdown();
}

/// Pulls the value of `name{labels}` out of a Prometheus text exposition.
fn prom_value(text: &str, name: &str, labels: &str) -> Option<u64> {
    let needle = if labels.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{labels}}}")
    };
    text.lines().find_map(|line| {
        let (metric, value) = line.rsplit_once(' ')?;
        (metric == needle).then(|| value.parse().ok())?
    })
}

/// The observability surface over real sockets: `/v1/metrics` negotiates
/// JSON (back-compat default) vs the Prometheus text exposition, the
/// exposition carries the gateway's own transport metrics, and
/// `/v1/debug/slowest` returns the per-stage trace ring.
#[test]
fn observability_endpoints_over_http() {
    let (_service, gateway) = start_gateway(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        GatewayConfig::default(),
    );
    let addr = gateway.local_addr();
    let mut client = Client::connect(addr);
    for budget in [120, 120, 90] {
        let body = serde_json::to_string(&ra_wire("acme", budget)).unwrap();
        let response = client.request("POST", "/v1/jobs?wait=1", Some(&body));
        assert_eq!(response.status, 200, "{}", response.body);
    }

    // Default: the JSON snapshot, exactly as before the exposition existed.
    let json_metrics = client.request("GET", "/v1/metrics", None);
    assert_eq!(json_metrics.status, 200);
    assert_eq!(json_metrics.content_type, "application/json");
    assert_eq!(as_u64(field(&json_metrics.json(), "submitted")), 3);

    // `?format=prometheus` switches to the text exposition.
    let prom = client.request("GET", "/v1/metrics?format=prometheus", None);
    assert_eq!(prom.status, 200);
    assert_eq!(prom.content_type, "text/plain; version=0.0.4");
    assert!(prom.body.starts_with("# HELP"), "{}", prom.body);
    let text = &prom.body;
    assert_eq!(
        prom_value(text, "crowdtune_jobs_submitted_total", ""),
        Some(3)
    );
    // The gateway's own transport metrics ride the same scrape.
    assert_eq!(
        prom_value(
            text,
            "crowdtune_gateway_requests_total",
            "endpoint=\"post_jobs\",class=\"2xx\""
        ),
        Some(3)
    );
    assert!(
        prom_value(
            text,
            "crowdtune_gateway_request_seconds_count",
            "endpoint=\"post_jobs\""
        ) == Some(3)
    );
    assert!(prom_value(text, "crowdtune_gateway_connections_accepted_total", "") >= Some(1));
    assert!(prom_value(text, "crowdtune_gateway_bytes_in_total", "") > Some(0));
    assert!(prom_value(text, "crowdtune_gateway_bytes_out_total", "") > Some(0));

    // `Accept: text/plain` negotiates the exposition too; an explicit
    // `format` outranks the header.
    let via_accept = client.request_with("GET", "/v1/metrics", &[("Accept", "text/plain")], None);
    assert_eq!(via_accept.content_type, "text/plain; version=0.0.4");
    let forced_json = client.request_with(
        "GET",
        "/v1/metrics?format=json",
        &[("Accept", "text/plain")],
        None,
    );
    assert_eq!(forced_json.content_type, "application/json");

    // Parse rejects are classed: a malformed request (separate socket — the
    // gateway closes it) bumps the malformed counter.
    let mut broken = Client::connect(addr);
    broken.send_raw("THIS IS NOT HTTP\r\n\r\n");
    assert_eq!(broken.read_response().expect("error response").status, 400);
    drop(broken);
    let text = client
        .request("GET", "/v1/metrics?format=prometheus", None)
        .body;
    assert!(
        prom_value(
            &text,
            "crowdtune_gateway_parse_rejects_total",
            "class=\"malformed\""
        ) >= Some(1),
        "{text}"
    );

    // The slowest-trace ring: traces fold in after the response is sent, so
    // poll briefly for all three.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let slowest = loop {
        let response = client.request("GET", "/v1/debug/slowest", None);
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/json");
        let json = response.json();
        let Value::Arr(traces) = field(&json, "traces") else {
            panic!("traces is not an array: {}", response.body);
        };
        if traces.len() >= 3 {
            break traces.clone();
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slowest ring never filled: {}",
            response.body
        );
        std::thread::yield_now();
    };
    let mut last_total = f64::INFINITY;
    for trace in &slowest {
        assert_eq!(as_str(field(trace, "tenant")), "acme");
        assert!(!as_str(field(trace, "scenario")).is_empty());
        assert!(matches!(
            as_str(field(trace, "source")),
            "cache" | "family" | "cold"
        ));
        let total = match field(trace, "total_seconds") {
            Value::F64(v) => *v,
            Value::I64(v) => *v as f64,
            Value::U64(v) => *v as f64,
            other => panic!("total_seconds is {other:?}"),
        };
        assert!(total <= last_total, "ring not sorted slowest-first");
        assert!(total >= 0.0);
        last_total = total;
    }

    // The debug route participates in the 405 contract.
    assert_eq!(
        client.request("POST", "/v1/debug/slowest", None).status,
        405
    );
    drop(client);
    gateway.shutdown();
}

/// The metrics endpoint exposes every counter surface — including
/// `store.dropped`, the write-behind backpressure loss, which must
/// increment under a forced-full (capacity-1) writer queue.
#[test]
fn metrics_expose_store_backpressure_drops() {
    let dir = scratch_dir("metrics-dropped");
    let service = Arc::new(
        TuningService::recover_with(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            &dir,
            StoreOptions {
                queue_capacity: 1,
                fsync: FsyncPolicy::Off,
                ..StoreOptions::default()
            },
        )
        .expect("open durable service"),
    );
    let gateway = Gateway::start(service.clone(), "127.0.0.1:0", GatewayConfig::default())
        .expect("bind gateway");
    let addr = gateway.local_addr();
    let mut client = Client::connect(addr);

    // Distinct budgets force distinct cold solves; every completion enqueues
    // a plan record plus journal records into the capacity-1 queue, so the
    // producer overruns the writer almost immediately.
    let mut dropped = 0;
    for budget in 0..500u64 {
        let body = serde_json::to_string(&ra_wire("acme", 200 + budget)).unwrap();
        let response = client.request("POST", "/v1/jobs?wait=1", Some(&body));
        assert_eq!(response.status, 200, "{}", response.body);
        dropped = service.store_stats().expect("store attached").dropped;
        if dropped > 0 {
            break;
        }
    }
    assert!(dropped > 0, "capacity-1 queue must shed records");

    let metrics = client.request("GET", "/v1/metrics", None);
    assert_eq!(metrics.status, 200);
    let json = metrics.json();
    let store = field(&json, "store");
    assert!(
        as_u64(field(store, "dropped")) >= dropped,
        "metrics must expose the dropped counter: {}",
        metrics.body
    );
    assert!(as_u64(field(store, "enqueued")) > 0);
    assert!(as_u64(field(&json, "submitted")) > 0);
    assert!(as_u64(field(&json, "cold_solves")) > 0);
    drop(client);
    gateway.shutdown();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end coverage of the v1 API contract added with the event-driven
//! gateway: API-key authentication (401/403 and the legacy body-tenant
//! fallback), per-tenant token-bucket quotas (429 + `Retry-After`, distinct
//! from queue-depth admission), the result lifecycle (idempotent `DELETE`,
//! TTL expiry, retention counters), and the reactor's headline property —
//! thousands of idle keep-alive connections held open without starving a
//! fresh submit.

use crowdtune_core::rate::{LinearRate, RateSpec};
use crowdtune_core::task::TaskGroupSpec;
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_gateway::{AuthConfig, Gateway, GatewayConfig, JobRequestWire, QuotaConfig};
use crowdtune_serve::{ServiceConfig, TuningService};
use serde::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parsed HTTP response, including the `Retry-After` header when the
/// server sent one.
struct HttpResponse {
    status: u16,
    retry_after: Option<u64>,
    traceparent: Option<String>,
    body: String,
}

impl HttpResponse {
    fn json(&self) -> Value {
        serde_json::parse_value_str(&self.body)
            .unwrap_or_else(|e| panic!("body is not JSON ({e}): {}", self.body))
    }

    fn error_code(&self) -> String {
        as_str(field(&self.json(), "error")).to_owned()
    }
}

/// A keep-alive test client over one TCP connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to gateway");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn request(&mut self, method: &str, target: &str, body: Option<&str>) -> HttpResponse {
        self.request_with(method, target, &[], body)
    }

    fn request_with(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> HttpResponse {
        let mut text = format!("{method} {target} HTTP/1.1\r\nHost: test\r\n");
        for (name, value) in headers {
            text.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(body) = body {
            text.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        text.push_str("\r\n");
        if let Some(body) = body {
            text.push_str(body);
        }
        self.stream.write_all(text.as_bytes()).expect("send");
        self.read_response().expect("response")
    }

    fn read_response(&mut self) -> Option<HttpResponse> {
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        let mut retry_after = None;
        let mut traceparent = None;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content length");
                } else if name.eq_ignore_ascii_case("retry-after") {
                    retry_after = Some(value.trim().parse().expect("retry-after seconds"));
                } else if name.eq_ignore_ascii_case("traceparent") {
                    traceparent = Some(value.trim().to_owned());
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        Some(HttpResponse {
            status,
            retry_after,
            traceparent,
            body: String::from_utf8(body).expect("utf-8 body"),
        })
    }
}

fn ra_wire(tenant: &str, budget: u64) -> JobRequestWire {
    JobRequestWire {
        tenant: tenant.to_owned(),
        market: None,
        groups: vec![TaskGroupSpec {
            name: "vote".to_owned(),
            processing_rate: 2.0,
            tasks: 4,
            repetitions: 3,
        }],
        budget,
        rate: RateSpec::Linear(LinearRate::new(1.5, 0.5).unwrap()),
        strategy: StrategyChoice::Auto,
    }
}

fn wire_body(tenant: &str, budget: u64) -> String {
    serde_json::to_string(&ra_wire(tenant, budget)).unwrap()
}

fn start_gateway(config: GatewayConfig) -> (Arc<TuningService>, Gateway) {
    let service = Arc::new(TuningService::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    }));
    let gateway = Gateway::start(service.clone(), "127.0.0.1:0", config).expect("bind gateway");
    (service, gateway)
}

fn field<'v>(value: &'v Value, name: &str) -> &'v Value {
    value.field(name).unwrap_or_else(|e| panic!("{e}"))
}

fn as_str(value: &Value) -> &str {
    match value {
        Value::Str(s) => s.as_str(),
        other => panic!("expected string, got {other:?}"),
    }
}

fn as_u64(value: &Value) -> u64 {
    match value {
        Value::I64(v) => u64::try_from(*v).expect("non-negative"),
        Value::U64(v) => *v,
        other => panic!("expected integer, got {other:?}"),
    }
}

/// Pulls the value of `name{labels}` out of a Prometheus text exposition.
fn prom_value(text: &str, name: &str, labels: &str) -> Option<u64> {
    let needle = if labels.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{labels}}}")
    };
    text.lines().find_map(|line| {
        let (metric, value) = line.rsplit_once(' ')?;
        (metric == needle).then(|| value.parse().ok())?
    })
}

fn scrape(client: &mut Client) -> String {
    let response = client.request("GET", "/v1/metrics?format=prometheus", None);
    assert_eq!(response.status, 200);
    response.body
}

/// Polls `GET /v1/jobs/{id}` until the job reports `done`.
fn poll_done(client: &mut Client, job_id: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let polled = client.request("GET", &format!("/v1/jobs/{job_id}"), None);
        assert_eq!(polled.status, 200, "job {job_id}: {}", polled.body);
        match as_str(field(&polled.json(), "status")) {
            "pending" => {
                assert!(Instant::now() < deadline, "job {job_id} never completed");
                std::thread::yield_now();
            }
            "done" => return,
            other => panic!("job {job_id} ended as {other}"),
        }
    }
}

/// With `allow_body_tenant` off, every submit must present a key the
/// gateway knows: keyless and unknown-key submits are 401, a key vouching
/// for a different tenant than the body names is 403, and the tenant that
/// runs is always the key's — whether the body repeats it or leaves the
/// field empty. Both header spellings work, and the rejects land in the
/// scrape by reason.
#[test]
fn auth_contract_enforced_when_body_tenant_disallowed() {
    let mut keys = HashMap::new();
    keys.insert("sk-acme".to_owned(), "acme".to_owned());
    keys.insert("sk-beta".to_owned(), "beta".to_owned());
    let (_service, gateway) = start_gateway(GatewayConfig {
        auth: AuthConfig {
            keys,
            allow_body_tenant: false,
        },
        ..GatewayConfig::default()
    });
    let mut client = Client::connect(gateway.local_addr());
    let body = wire_body("acme", 40);

    // No credential at all: 401, even though the body names a tenant.
    let keyless = client.request("POST", "/v1/jobs", Some(&body));
    assert_eq!(keyless.status, 401, "{}", keyless.body);
    assert_eq!(keyless.error_code(), "unauthenticated");

    // A key the gateway has never heard of: 401.
    let unknown = client.request_with(
        "POST",
        "/v1/jobs",
        &[("Authorization", "Bearer sk-nope")],
        Some(&body),
    );
    assert_eq!(unknown.status, 401);
    assert_eq!(unknown.error_code(), "unauthenticated");

    // An Authorization scheme we don't speak must not silently fall
    // through to the legacy body-tenant path.
    let basic = client.request_with(
        "POST",
        "/v1/jobs",
        &[("Authorization", "Basic dXNlcjpwdw==")],
        Some(&body),
    );
    assert_eq!(basic.status, 401);

    // A valid key whose tenant contradicts the body: 403.
    let mismatch = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("Authorization", "Bearer sk-beta")],
        Some(&body),
    );
    assert_eq!(mismatch.status, 403, "{}", mismatch.body);
    assert_eq!(mismatch.error_code(), "tenant_mismatch");

    // The happy paths: Bearer with a matching body tenant, Bearer with an
    // empty body tenant (the key alone names the principal), and the
    // X-Api-Key spelling.
    let matching = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("Authorization", "Bearer sk-acme")],
        Some(&body),
    );
    assert_eq!(matching.status, 200, "{}", matching.body);

    let tenantless = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("Authorization", "bearer sk-acme")],
        Some(&wire_body("", 41)),
    );
    assert_eq!(tenantless.status, 200, "{}", tenantless.body);

    let api_key = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("X-Api-Key", "sk-beta")],
        Some(&wire_body("beta", 42)),
    );
    assert_eq!(api_key.status, 200, "{}", api_key.body);

    // The scrape accounts for every reject, by reason.
    let text = scrape(&mut client);
    assert_eq!(
        prom_value(
            &text,
            "crowdtune_gateway_auth_rejects_total",
            "reason=\"unauthenticated\""
        ),
        Some(3),
        "{text}"
    );
    assert_eq!(
        prom_value(
            &text,
            "crowdtune_gateway_auth_rejects_total",
            "reason=\"tenant_mismatch\""
        ),
        Some(1)
    );
    drop(client);
    gateway.shutdown();
}

/// The default config keeps the pre-auth wire contract: keyless submits
/// run under the body's self-declared tenant. But presenting a key still
/// means opting in to authentication — an unknown key is refused, never
/// silently downgraded to the legacy path.
#[test]
fn legacy_body_tenant_works_until_a_key_is_presented() {
    let (_service, gateway) = start_gateway(GatewayConfig::default());
    let mut client = Client::connect(gateway.local_addr());

    let legacy = client.request("POST", "/v1/jobs?wait=1", Some(&wire_body("acme", 50)));
    assert_eq!(legacy.status, 200, "{}", legacy.body);

    let with_key = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("Authorization", "Bearer sk-unknown")],
        Some(&wire_body("acme", 51)),
    );
    assert_eq!(with_key.status, 401, "{}", with_key.body);
    assert_eq!(with_key.error_code(), "unauthenticated");

    // A keyless submit with no tenant at all is still a 422 (invalid job),
    // exactly as before auth existed.
    let tenantless = client.request("POST", "/v1/jobs", Some(&wire_body("", 52)));
    assert_eq!(tenantless.status, 422, "{}", tenantless.body);
    drop(client);
    gateway.shutdown();
}

/// The token-bucket quota: a tenant may spend its burst, then gets 429
/// `quota_exceeded` with a `Retry-After` header — a different refusal than
/// the queue-depth `tenant_over_limit` — while other tenants are
/// unaffected. Rejects land in the scrape.
#[test]
fn quota_answers_429_with_retry_after() {
    let (_service, gateway) = start_gateway(GatewayConfig {
        quota: Some(QuotaConfig {
            requests_per_sec: 0.2,
            burst: 2.0,
        }),
        ..GatewayConfig::default()
    });
    let mut client = Client::connect(gateway.local_addr());

    // The burst of 2 is spendable immediately...
    for budget in [60, 61] {
        let ok = client.request("POST", "/v1/jobs", Some(&wire_body("metered", budget)));
        assert_eq!(ok.status, 202, "{}", ok.body);
    }
    // ...and the third submit is over quota: at 0.2 tokens/s the next token
    // is ~5s out, and the refusal says so in the header and the body.
    let over = client.request("POST", "/v1/jobs", Some(&wire_body("metered", 62)));
    assert_eq!(over.status, 429, "{}", over.body);
    assert_eq!(over.error_code(), "quota_exceeded");
    let retry_after = over.retry_after.expect("429 carries Retry-After");
    assert!(
        (1..=6).contains(&retry_after),
        "Retry-After {retry_after} should be ~5s"
    );

    // The bucket is per-tenant: someone else still gets through.
    let other = client.request("POST", "/v1/jobs", Some(&wire_body("unmetered", 63)));
    assert_eq!(other.status, 202, "{}", other.body);

    let text = scrape(&mut client);
    assert_eq!(
        prom_value(&text, "crowdtune_gateway_quota_rejects_total", ""),
        Some(1),
        "{text}"
    );
    drop(client);
    gateway.shutdown();
}

/// The result lifecycle: `DELETE /v1/jobs/{id}` releases a retained result
/// (204 the time it existed, 404 ever after, and the id stops resolving),
/// and a configured TTL expires unfetched results on its own. Both paths
/// are visible in the scrape: `jobs_deleted_total`, `jobs_expired_total`,
/// and the `jobs_retained` gauge.
#[test]
fn delete_is_idempotent_and_ttl_expires_results() {
    let (_service, gateway) = start_gateway(GatewayConfig {
        result_ttl: Some(Duration::from_millis(250)),
        ..GatewayConfig::default()
    });
    let mut client = Client::connect(gateway.local_addr());

    // Job one: complete it, then delete it.
    let submitted = client.request("POST", "/v1/jobs", Some(&wire_body("acme", 70)));
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let job_id = as_u64(field(&submitted.json(), "job_id"));
    poll_done(&mut client, job_id);

    let target = format!("/v1/jobs/{job_id}");
    let deleted = client.request("DELETE", &target, None);
    assert_eq!(deleted.status, 204, "{}", deleted.body);
    let again = client.request("DELETE", &target, None);
    assert_eq!(
        again.status, 404,
        "DELETE is idempotent: second call is 404"
    );
    assert_eq!(client.request("GET", &target, None).status, 404);

    // Job two: complete it, let the TTL lapse, and watch it vanish.
    let submitted = client.request("POST", "/v1/jobs", Some(&wire_body("acme", 71)));
    assert_eq!(submitted.status, 202);
    let expiring_id = as_u64(field(&submitted.json(), "job_id"));
    poll_done(&mut client, expiring_id);
    std::thread::sleep(Duration::from_millis(400));
    let expired = client.request("GET", &format!("/v1/jobs/{expiring_id}"), None);
    assert_eq!(expired.status, 404, "{}", expired.body);

    let text = scrape(&mut client);
    assert_eq!(
        prom_value(&text, "crowdtune_gateway_jobs_deleted_total", ""),
        Some(1),
        "{text}"
    );
    assert!(
        prom_value(&text, "crowdtune_gateway_jobs_expired_total", "") >= Some(1),
        "{text}"
    );
    assert_eq!(
        prom_value(&text, "crowdtune_gateway_jobs_retained", ""),
        Some(0),
        "nothing should remain retained: {text}"
    );
    drop(client);
    gateway.shutdown();
}

/// Reads this process's soft open-files limit, the binding constraint on
/// how many sockets the herd test may hold (each held connection costs two
/// descriptors here — client and server ends live in the same process).
fn open_files_limit() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    limits
        .lines()
        .find(|line| line.starts_with("Max open files"))
        .and_then(|line| line.split_whitespace().nth(3))
        .and_then(|soft| soft.parse().ok())
        .unwrap_or(1024)
}

/// The reactor's headline property: thousands of idle keep-alive
/// connections parked on the event loop cost no threads and no service
/// capacity — a fresh connection's synchronous submit still completes
/// promptly, the herd stays live, and the `connections_open` gauge reports
/// the crowd.
#[test]
fn idle_keep_alive_herd_does_not_starve_fresh_submits() {
    let (_service, gateway) = start_gateway(GatewayConfig {
        // The herd must outlive the test, not the idle reaper.
        keep_alive_timeout: Duration::from_secs(120),
        max_connections: 16_384,
        ..GatewayConfig::default()
    });
    let addr = gateway.local_addr();

    // Size the herd to the fd budget: two descriptors per held connection,
    // plus slack for the harness itself.
    let herd_size = (open_files_limit().saturating_sub(128) / 2).min(3000);
    assert!(
        herd_size >= 200,
        "fd limit too low to exercise the reactor meaningfully"
    );
    let mut herd = Vec::with_capacity(herd_size);
    for _ in 0..herd_size {
        herd.push(TcpStream::connect(addr).expect("connect herd member"));
    }

    // Every member is accepted and registered: the open-connections gauge
    // reaches the herd (+1 for the scraping client itself).
    let mut observer = Client::connect(addr);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = scrape(&mut observer);
        let open = prom_value(&text, "crowdtune_gateway_connections_open", "").unwrap_or(0);
        if open >= herd_size as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {open}/{herd_size} connections registered"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // A fresh connection's synchronous submit is not starved by the herd.
    let started = Instant::now();
    let mut fresh = Client::connect(addr);
    let response = fresh.request("POST", "/v1/jobs?wait=1", Some(&wire_body("acme", 80)));
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(as_str(field(&response.json(), "status")), "done");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "submit took {:?} with {herd_size} idle connections parked",
        started.elapsed()
    );

    // The herd is still live: a member picked from the middle can speak.
    let mid = herd.swap_remove(herd_size / 2);
    mid.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut member = Client {
        reader: BufReader::new(mid.try_clone().unwrap()),
        stream: mid,
    };
    let health = member.request("GET", "/healthz", None);
    assert_eq!(health.status, 200, "{}", health.body);

    drop(member);
    drop(fresh);
    drop(observer);
    drop(herd);
    gateway.shutdown();
}

/// The tentpole acceptance path over a real socket: a submit carrying a
/// sampled W3C `traceparent` joins the caller's trace, the response echoes
/// a `traceparent` naming the gateway's root span under the same trace id,
/// and `GET /v1/debug/traces/{trace_id}` serves a span tree covering the
/// gateway stages and the job's whole serve-side life — parse, dispatch,
/// queue wait, solve, store persist. The summary listing filters by tenant,
/// and a malformed `traceparent` is counted and replaced, not trusted.
#[test]
fn traceparent_joins_submit_and_span_tree_is_queryable() {
    // A durable store so the tree includes the persist stage.
    let dir = std::env::temp_dir().join(format!("crowdtune-v1api-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let service = Arc::new(
        TuningService::recover(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            dir.join("store"),
        )
        .expect("open durable store"),
    );
    let gateway = Gateway::start(service.clone(), "127.0.0.1:0", GatewayConfig::default())
        .expect("bind gateway");
    let mut client = Client::connect(gateway.local_addr());

    let trace_id = "af7651916cd43dd8448eb211c80319c7";
    let sent = format!("00-{trace_id}-00f067aa0ba902b7-01");
    let response = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("traceparent", sent.as_str())],
        Some(&wire_body("acme", 80)),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    let echoed = response.traceparent.expect("response echoes traceparent");
    assert!(
        echoed.starts_with(&format!("00-{trace_id}-")),
        "echo keeps the caller's trace id: {echoed}"
    );
    assert!(
        !echoed.contains("00f067aa0ba902b7"),
        "echo names the gateway's root span, not the caller's parent: {echoed}"
    );

    // The trace flushes asynchronously when its last handle drops (after
    // store persist) — poll the tree endpoint briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    let tree = loop {
        let got = client.request("GET", &format!("/v1/debug/traces/{trace_id}"), None);
        if got.status == 200 {
            break got.json();
        }
        assert!(
            Instant::now() < deadline,
            "trace {trace_id} never reached the span store: {}",
            got.body
        );
        std::thread::yield_now();
    };
    assert_eq!(as_str(field(field(&tree, "trace"), "trace_id")), trace_id);
    assert_eq!(as_str(field(field(&tree, "trace"), "tenant")), "acme");
    assert_eq!(as_str(field(field(&tree, "trace"), "status")), "ok");
    let spans = match field(&tree, "spans") {
        Value::Arr(spans) => spans,
        other => panic!("spans is not an array: {other:?}"),
    };
    let names: Vec<&str> = spans
        .iter()
        .map(|span| as_str(field(span, "name")))
        .collect();
    for expected in [
        "http.request",
        "gateway.parse",
        "gateway.auth",
        "gateway.dispatch",
        "job",
        "queue.wait",
        "solve",
        "store.persist",
    ] {
        assert!(names.contains(&expected), "no {expected} span in {names:?}");
    }

    // The summary listing finds the trace by tenant and misses on others.
    let listed = client.request("GET", "/v1/debug/traces?tenant=acme", None);
    assert_eq!(listed.status, 200);
    let body = listed.json();
    let traces = match field(&body, "traces") {
        Value::Arr(traces) => traces,
        other => panic!("traces is not an array: {other:?}"),
    };
    assert!(traces
        .iter()
        .any(|t| as_str(field(t, "trace_id")) == trace_id));
    let missed = client.request("GET", "/v1/debug/traces?tenant=nobody", None);
    let missed_body = missed.json();
    match field(&missed_body, "traces") {
        Value::Arr(traces) => assert!(traces.is_empty(), "{:?}", missed.body),
        other => panic!("traces is not an array: {other:?}"),
    }

    // A malformed traceparent is ignored (fresh ids minted) and counted.
    let response = client.request_with(
        "POST",
        "/v1/jobs?wait=1",
        &[("traceparent", "garbage-header")],
        Some(&wire_body("acme", 80)),
    );
    assert_eq!(response.status, 200, "{}", response.body);
    let minted = response.traceparent.expect("fresh traceparent minted");
    assert!(!minted.contains(trace_id), "minted ids are fresh: {minted}");
    let text = scrape(&mut client);
    assert_eq!(
        prom_value(&text, "crowdtune_gateway_traceparent_invalid_total", ""),
        Some(1)
    );

    gateway.shutdown();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Gateway rejects are visible in the structured log ring: a keyless submit
/// against a key-only gateway answers 401 and leaves a warn-level record at
/// `GET /v1/debug/logs`, while a bad `level` filter is a 400.
#[test]
fn auth_rejects_leave_warn_records_in_the_log_ring() {
    let mut keys = HashMap::new();
    keys.insert("secret-key".to_owned(), "acme".to_owned());
    let (_service, gateway) = start_gateway(GatewayConfig {
        auth: AuthConfig {
            keys,
            allow_body_tenant: false,
        },
        ..GatewayConfig::default()
    });
    let mut client = Client::connect(gateway.local_addr());

    let refused = client.request("POST", "/v1/jobs", Some(&wire_body("acme", 80)));
    assert_eq!(refused.status, 401, "{}", refused.body);

    let logs = client.request("GET", "/v1/debug/logs?level=warn", None);
    assert_eq!(logs.status, 200, "{}", logs.body);
    let body = logs.json();
    let records = match field(&body, "records") {
        Value::Arr(records) => records,
        other => panic!("records is not an array: {other:?}"),
    };
    assert!(
        records.iter().any(|record| {
            as_str(field(record, "target")) == "gateway" && as_str(field(record, "level")) == "warn"
        }),
        "no gateway warn record in {}",
        logs.body
    );

    let bad = client.request("GET", "/v1/debug/logs?level=loud", None);
    assert_eq!(bad.status, 400, "{}", bad.body);
    assert_eq!(bad.error_code(), "bad_request");

    gateway.shutdown();
}

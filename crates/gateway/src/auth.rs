//! At-rest hardening for API keys: the wire-facing [`AuthConfig`] still
//! carries `key → tenant` in plain text (config files, env injection — the
//! contract is unchanged), but the running gateway never holds the keys
//! themselves. At startup every key is folded into a salted, iterated
//! digest ([`HashedKeys`]); lookups re-derive the digest from the presented
//! credential and compare in constant time, so neither a heap dump nor a
//! comparison-timing probe recovers a key.
//!
//! The digest is a PBKDF-shaped construction over FNV-1a (the only hash
//! this std-only workspace has): four independently-offset 64-bit lanes
//! over `salt ‖ key`, re-folded `ITERATIONS` (2048) times with the lane index
//! and round counter mixed in, yielding a 32-byte digest. This is a
//! work-factor construction against offline guessing of *leaked digests*,
//! not a cryptographic MAC — the threat model is accidental exposure
//! (logs, dumps, debug endpoints), which is exactly what storing plaintext
//! keys loses to.
//!
//! [`AuthConfig`]: crate::AuthConfig

use std::collections::HashMap;

/// Rounds of re-folding per lane. High enough that bulk offline guessing
/// of a leaked digest costs real work, low enough that the per-request
/// lookup (one derivation per configured key) stays in the tens of
/// microseconds.
const ITERATIONS: u32 = 2048;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Derives the 32-byte digest of `key` under `salt`.
fn derive(salt: &[u8; 16], key: &str) -> [u8; 32] {
    let mut lanes = [0u64; 4];
    for (lane, out) in lanes.iter_mut().enumerate() {
        // Independent lane seeds, then the salted key.
        let mut hash = fnv1a(FNV_OFFSET ^ (lane as u64).wrapping_mul(FNV_PRIME), salt);
        hash = fnv1a(hash, key.as_bytes());
        for round in 0..ITERATIONS {
            hash = fnv1a(hash, &u64::from(round).to_le_bytes());
            hash = fnv1a(hash, salt);
        }
        *out = hash;
    }
    let mut digest = [0u8; 32];
    for (i, lane) in lanes.iter().enumerate() {
        digest[i * 8..(i + 1) * 8].copy_from_slice(&lane.to_le_bytes());
    }
    digest
}

/// Constant-time equality over fixed-width digests: the comparison touches
/// every byte regardless of where the first mismatch sits.
fn digests_match(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

struct HashedKey {
    salt: [u8; 16],
    digest: [u8; 32],
    tenant: String,
}

/// The gateway's in-memory credential set: salted iterated digests only,
/// built once at startup from the plaintext `key → tenant` map and then
/// the sole authority for [`HashedKeys::tenant_for`] lookups.
pub struct HashedKeys {
    keys: Vec<HashedKey>,
}

impl HashedKeys {
    /// Hashes every configured key under a fresh per-key random salt. The
    /// plaintext map is consumed here and dropped by the caller — after
    /// this returns, the process holds digests only.
    pub fn build(plain: &HashMap<String, String>) -> HashedKeys {
        let keys = plain
            .iter()
            .map(|(key, tenant)| {
                let salt = crowdtune_obs::span::random_trace_id().0.to_le_bytes();
                HashedKey {
                    salt,
                    digest: derive(&salt, key),
                    tenant: tenant.clone(),
                }
            })
            .collect();
        HashedKeys { keys }
    }

    /// Whether any keys are configured at all.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Resolves a presented credential to its tenant: re-derives the
    /// digest under each stored salt and compares in constant time. Cost
    /// is one derivation per configured key — fine for the handful of
    /// keys a deployment carries.
    pub fn tenant_for(&self, presented: &str) -> Option<&str> {
        let mut found: Option<&str> = None;
        for key in &self.keys {
            let candidate = derive(&key.salt, presented);
            if digests_match(&candidate, &key.digest) && found.is_none() {
                found = Some(&key.tenant);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(pairs: &[(&str, &str)]) -> HashedKeys {
        let plain: HashMap<String, String> = pairs
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        HashedKeys::build(&plain)
    }

    #[test]
    fn configured_keys_resolve_to_their_tenants() {
        let hashed = keys(&[("secret-a", "acme"), ("secret-b", "globex")]);
        assert_eq!(hashed.tenant_for("secret-a"), Some("acme"));
        assert_eq!(hashed.tenant_for("secret-b"), Some("globex"));
    }

    #[test]
    fn unknown_and_near_miss_keys_are_refused() {
        let hashed = keys(&[("secret-a", "acme")]);
        assert_eq!(hashed.tenant_for("secret-A"), None);
        assert_eq!(hashed.tenant_for("secret-a "), None);
        assert_eq!(hashed.tenant_for(""), None);
        assert_eq!(hashed.tenant_for("secret-aa"), None);
    }

    #[test]
    fn salts_differ_so_equal_keys_hash_differently() {
        let plain: HashMap<String, String> = [("same".to_owned(), "t1".to_owned())].into();
        let a = HashedKeys::build(&plain);
        let b = HashedKeys::build(&plain);
        assert_ne!(
            (a.keys[0].salt, a.keys[0].digest),
            (b.keys[0].salt, b.keys[0].digest),
            "fresh salts must make digests non-comparable across builds"
        );
        assert_eq!(a.tenant_for("same"), Some("t1"));
        assert_eq!(b.tenant_for("same"), Some("t1"));
    }

    #[test]
    fn digest_derivation_is_deterministic_under_a_fixed_salt() {
        let salt = [7u8; 16];
        assert_eq!(derive(&salt, "key"), derive(&salt, "key"));
        assert_ne!(derive(&salt, "key"), derive(&salt, "kez"));
        assert_ne!(derive(&[8u8; 16], "key"), derive(&salt, "key"));
    }

    #[test]
    fn constant_time_compare_is_correct() {
        let a = [1u8; 32];
        let mut b = a;
        assert!(digests_match(&a, &b));
        b[31] ^= 0x80;
        assert!(!digests_match(&a, &b));
    }
}

//! # crowdtune-gateway
//!
//! A **std-only HTTP/1.1 + JSON front-end** for the transport-agnostic
//! [`TuningService`](crowdtune_serve::TuningService): the first network
//! boundary of the crowdtune stack. No async runtime, no HTTP crate — a
//! hand-rolled bounded parser ([`http`]) over `TcpListener`, a
//! thread-per-connection worker pool with keep-alive and graceful drain
//! ([`server`]), and self-contained JSON wire forms ([`wire`]) built on the
//! same `RateSpec`/`TaskGroupSpec` catalogue the durable store persists —
//! anything a client can submit is journal-able, and every plan served over
//! the wire is **bit-identical** to an in-process `submit` of the same job
//! (the `gateway_loadgen` example asserts this over real sockets).
//!
//! ```text
//!  clients ──HTTP/1.1──▶ acceptor ──bounded hand-off──▶ connection pool
//!                           │ (503 when saturated)           │ keep-alive,
//!                           ▼                                ▼ pipelining
//!                     graceful drain                router ─▶ TuningService
//!                                                     │   submit / JobHandle
//!                                                     ▼
//!                                    POST /v1/jobs   (202 + id, or ?wait=1)
//!                                    GET  /v1/jobs/{id}      status / plan
//!                                    GET  /v1/metrics        counters (JSON)
//!                                      …?format=prometheus   text exposition
//!                                    GET  /v1/debug/slowest  slowest traces
//!                                    GET  /healthz           liveness + drain
//! ```
//!
//! Admission control surfaces as HTTP semantics: per-tenant rejections are
//! `429`, global queue-full and draining are `503`, malformed requests are
//! `400` with structured error bodies, and every response carrying a plan
//! reports its [`PlanSource`](crowdtune_serve::PlanSource) (`cache` /
//! `family` / `cold`) so clients can observe the reuse layers at work.
//!
//! The gateway is itself instrumented into the service's metric registry
//! (connections accepted/shed/timed-out, parse rejects by class, request
//! counts and latency histograms per endpoint × status class, bytes in/out),
//! so one scrape of `/v1/metrics?format=prometheus` covers transport and
//! solver alike; `GET /v1/debug/slowest` exposes the service's ring of
//! slowest completed job traces ([`SlowestBody`]) stage by stage.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod http;
mod metrics;
pub mod server;
pub mod wire;

pub use http::{Limits, Request, RequestError, Response};
pub use server::{Gateway, GatewayConfig};
pub use wire::{
    CacheBody, ErrorBody, FamiliesBody, HealthBody, JobBody, JobRequestWire, MetricsBody,
    SlowestBody, StoreBody, SubmittedBody, TraceBody,
};

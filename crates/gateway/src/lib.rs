//! # crowdtune-gateway
//!
//! A **std-only HTTP/1.1 + JSON front-end** for the transport-agnostic
//! [`TuningService`](crowdtune_serve::TuningService): the first network
//! boundary of the crowdtune stack. No async runtime, no HTTP crate — an
//! **event-driven reactor** over non-blocking sockets ([`server`], readiness
//! from an epoll-backed poller) drives every connection as a
//! small state machine, a hand-rolled bounded parser ([`http`]) handles
//! incremental reads, and self-contained JSON wire forms ([`wire`]) are
//! built on the same `RateSpec`/`TaskGroupSpec` catalogue the durable store
//! persists — anything a client can submit is journal-able, and every plan
//! served over the wire is **bit-identical** to an in-process `submit` of
//! the same job (the `gateway_loadgen` example asserts this over real
//! sockets).
//!
//! ```text
//!  clients ──HTTP/1.1──▶ reactor threads (epoll readiness loop)
//!                           │ accept / shed 503 at the connection cap
//!                           ▼
//!                   connection state machines          TuningService
//!                   idle ─ reading ─ dispatched ──────▶ tuner pool
//!                     ▲                │ completion        │
//!                     └── writing ◀────┘ notify (waker)  solver work
//!                                                     ▼
//!                                    POST   /v1/jobs (202 + id, or ?wait=1)
//!                                    GET    /v1/jobs/{id}    status / plan
//!                                    DELETE /v1/jobs/{id}    release result
//!                                    GET    /v1/metrics      counters (JSON)
//!                                      …?format=prometheus   text exposition
//!                                    GET    /v1/debug/slowest slowest traces
//!                                    GET    /v1/debug/traces  sampled span trees
//!                                    GET    /v1/debug/traces/{trace_id}
//!                                    GET    /v1/debug/logs    structured log ring
//!                                    GET    /healthz         liveness + drain
//! ```
//!
//! A handful of reactor threads (one by default) holds tens of thousands of
//! keep-alive connections: parked clients cost a registered fd and a timer
//! entry, never a thread. Synchronous submits (`?wait=1`) park the
//! *connection*, not a thread — the tuner pool signals completion through a
//! per-reactor waker and the response is written on the next readiness turn.
//! Request deadlines, idle keep-alive timeouts, write-stall bounds, and
//! graceful drain all ride one timer heap.
//!
//! The v1 API is authenticated and metered: API keys
//! (`Authorization: Bearer` or `X-Api-Key`) resolve the tenant a submit
//! runs under ([`AuthConfig`]; the legacy self-declared body tenant remains
//! available behind a flag). Configured keys are held in memory only as
//! salted iterated digests with constant-time comparison ([`auth`]) — the
//! plaintext map is consumed at startup. Per-tenant token buckets answer `429` with
//! `Retry-After` when a tenant outruns its quota ([`QuotaConfig`]), and
//! completed results live until a TTL, a FIFO cap, or an idempotent
//! `DELETE /v1/jobs/{id}` releases them.
//!
//! Admission control surfaces as HTTP semantics: quota and per-tenant depth
//! rejections are `429`, global queue-full and draining are `503`,
//! unauthenticated submits are `401`, key/tenant contradictions are `403`,
//! malformed requests are `400` with structured error bodies, and every
//! response carrying a plan reports its
//! [`PlanSource`](crowdtune_serve::PlanSource) (`cache` / `family` /
//! `cold`) so clients can observe the reuse layers at work.
//!
//! The gateway is itself instrumented into the service's metric registry
//! (connections accepted/shed/timed-out, parse rejects by class, request
//! counts and latency histograms per endpoint × status class, bytes in/out),
//! so one scrape of `/v1/metrics?format=prometheus` covers transport and
//! solver alike; `GET /v1/debug/slowest` exposes the service's ring of
//! slowest completed job traces ([`SlowestBody`]) stage by stage.
//!
//! Causal request tracing rides the same socket: a `traceparent` request
//! header (W3C Trace Context) joins the submit to the caller's trace, the
//! job's whole span tree — gateway parse/auth/quota/dispatch, queue wait,
//! solve, store persist — lands in the service's span store under the
//! caller's trace id, the response echoes `traceparent` so clients learn
//! minted ids, and `GET /v1/debug/traces[/{trace_id}]` serves the sampled
//! trees ([`TracesBody`], [`TraceTreeBody`]). `GET /v1/debug/logs` exposes
//! the structured log ring ([`LogsBody`]), each record stamped with the
//! trace/span that was active when it was emitted.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod auth;
pub mod http;
mod metrics;
mod reactor;
pub mod server;
pub mod wire;

pub use auth::HashedKeys;
pub use http::{Limits, Request, RequestError, Response};
pub use server::{AuthConfig, Gateway, GatewayConfig, QuotaConfig};
pub use wire::{
    CacheBody, ErrorBody, FamiliesBody, HealthBody, JobBody, JobRequestWire, LogRecordBody,
    LogsBody, MetricsBody, SlowestBody, SpanBody, StoreBody, SubmittedBody, TraceBody,
    TraceSummaryBody, TraceTreeBody, TracesBody,
};

//! Gateway-side instrumentation: connection accounting, parse rejects by
//! class, per-endpoint × status-class request counters and latency
//! histograms, and byte totals in both directions.
//!
//! All cells live in the **service's** registry (the gateway has no registry
//! of its own), so one scrape of `/v1/metrics?format=prometheus` covers the
//! whole process: solver stage timings and transport health side by side.
//! Handles are fetched with the registry's get-or-create calls, so two
//! gateways wrapping the same service share cells instead of double
//! registering.

use crate::http::RequestError;
use crowdtune_obs::{Counter, Gauge, Histogram, Registry};

/// The `endpoint` label values, one per route plus a catch-all for requests
/// that never matched a route (404s, unparseable job ids).
pub(crate) const ENDPOINT_LABELS: [&str; 9] = [
    "post_jobs",
    "get_job",
    "delete_job",
    "get_metrics",
    "get_healthz",
    "get_debug_slowest",
    "get_debug_traces",
    "get_debug_logs",
    "other",
];

/// The `class` label values for [`GatewayMetrics::observe`]. The gateway
/// never emits 1xx/3xx, so anything outside 2xx/4xx folds into `5xx`.
const CLASS_LABELS: [&str; 3] = ["2xx", "4xx", "5xx"];

/// The `class` label values for parse rejects, mirroring the
/// [`RequestError`] variants that map to a response.
const REJECT_LABELS: [&str; 4] = [
    "malformed",
    "headers_too_large",
    "body_too_large",
    "unsupported",
];

/// The `reason` label values for auth rejects.
const AUTH_REJECT_LABELS: [&str; 2] = ["unauthenticated", "tenant_mismatch"];

/// Which route a request resolved to, for the `endpoint` label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    /// `POST /v1/jobs`.
    PostJobs = 0,
    /// `GET /v1/jobs/{id}`.
    GetJob = 1,
    /// `DELETE /v1/jobs/{id}`.
    DeleteJob = 2,
    /// `GET /v1/metrics`.
    GetMetrics = 3,
    /// `GET /healthz`.
    GetHealthz = 4,
    /// `GET /v1/debug/slowest`.
    GetDebugSlowest = 5,
    /// `GET /v1/debug/traces` and `GET /v1/debug/traces/{trace_id}`.
    GetDebugTraces = 6,
    /// `GET /v1/debug/logs`.
    GetDebugLogs = 7,
    /// No route matched (404) or the method was wrong (405).
    Other = 8,
}

/// Why an authenticated-principal check refused a submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AuthReject {
    /// No usable credential (missing or unknown key) → 401.
    Unauthenticated = 0,
    /// Valid key, but the body named a different tenant → 403.
    TenantMismatch = 1,
}

/// Every gateway-owned metric handle. Cheap to clone counters are held
/// directly; the per-endpoint families are pre-created arrays so the
/// request path never takes the registry lock.
pub(crate) struct GatewayMetrics {
    /// Connections the reactor took on (shed ones not included).
    pub connections_accepted: Counter,
    /// Connections shed with `503` because the connection cap was reached.
    pub connections_shed: Counter,
    /// Connections closed by the keep-alive timeout or request deadline.
    pub connections_timed_out: Counter,
    /// Connections currently registered with a reactor.
    pub connections_open: Gauge,
    /// Bytes read off sockets (request heads and bodies).
    pub bytes_in: Counter,
    /// Bytes written to sockets (response heads and bodies).
    pub bytes_out: Counter,
    /// Submits refused by the authenticated-principal check, by reason.
    auth_rejects: [Counter; 2],
    /// Submits refused by the per-tenant token-bucket quota (429 +
    /// `Retry-After`), distinct from queue-depth admission 429s.
    pub quota_rejects: Counter,
    /// Completed job outcomes currently retained for polling.
    pub jobs_retained: Gauge,
    /// Retained outcomes dropped by TTL expiry.
    pub jobs_expired: Counter,
    /// Jobs removed by `DELETE /v1/jobs/{id}`.
    pub jobs_deleted: Counter,
    /// Submits whose `traceparent` header failed W3C Trace Context
    /// validation (the header is ignored and a fresh trace minted).
    pub traceparent_invalid: Counter,
    /// Parse rejects by [`RequestError`] class, [`REJECT_LABELS`] order.
    parse_rejects: [Counter; 4],
    /// Requests by endpoint × status class.
    requests: [[Counter; 3]; 9],
    /// Request service time (route dispatch through handler return) by
    /// endpoint, recorded in nanoseconds, exposed in seconds.
    latency: [Histogram; 9],
}

impl GatewayMetrics {
    /// Fetches (creating on first use) every gateway cell from `registry`.
    pub fn new(registry: &Registry) -> Self {
        let conn = |state: &str, help: &str| {
            registry.counter(
                &format!("crowdtune_gateway_connections_{state}_total"),
                help,
                &[],
            )
        };
        GatewayMetrics {
            connections_accepted: conn("accepted", "Connections taken on by a reactor."),
            connections_shed: conn(
                "shed",
                "Connections answered 503 at the door (connection cap reached).",
            ),
            connections_timed_out: conn(
                "timed_out",
                "Connections closed by the keep-alive timeout or request deadline.",
            ),
            connections_open: registry.gauge(
                "crowdtune_gateway_connections_open",
                "Connections currently registered with a reactor.",
                &[],
            ),
            auth_rejects: std::array::from_fn(|i| {
                registry.counter(
                    "crowdtune_gateway_auth_rejects_total",
                    "Submits refused by the authenticated-principal check, by reason.",
                    &[("reason", AUTH_REJECT_LABELS[i])],
                )
            }),
            quota_rejects: registry.counter(
                "crowdtune_gateway_quota_rejects_total",
                "Submits refused by the per-tenant request quota (429 + Retry-After).",
                &[],
            ),
            jobs_retained: registry.gauge(
                "crowdtune_gateway_jobs_retained",
                "Completed job outcomes currently retained for polling.",
                &[],
            ),
            jobs_expired: registry.counter(
                "crowdtune_gateway_jobs_expired_total",
                "Retained job outcomes dropped by TTL expiry.",
                &[],
            ),
            jobs_deleted: registry.counter(
                "crowdtune_gateway_jobs_deleted_total",
                "Jobs removed by DELETE /v1/jobs/{id}.",
                &[],
            ),
            bytes_in: registry.counter(
                "crowdtune_gateway_bytes_in_total",
                "Bytes read from client sockets.",
                &[],
            ),
            bytes_out: registry.counter(
                "crowdtune_gateway_bytes_out_total",
                "Bytes written to client sockets.",
                &[],
            ),
            traceparent_invalid: registry.counter(
                "crowdtune_gateway_traceparent_invalid_total",
                "Submits carrying a traceparent header that failed W3C validation.",
                &[],
            ),
            parse_rejects: std::array::from_fn(|i| {
                registry.counter(
                    "crowdtune_gateway_parse_rejects_total",
                    "Requests refused before routing, by parse-failure class.",
                    &[("class", REJECT_LABELS[i])],
                )
            }),
            requests: std::array::from_fn(|e| {
                std::array::from_fn(|c| {
                    registry.counter(
                        "crowdtune_gateway_requests_total",
                        "Routed requests by endpoint and status class.",
                        &[("endpoint", ENDPOINT_LABELS[e]), ("class", CLASS_LABELS[c])],
                    )
                })
            }),
            latency: std::array::from_fn(|e| {
                registry.histogram(
                    "crowdtune_gateway_request_seconds",
                    "Request service time (dispatch to handler return) by endpoint.",
                    &[("endpoint", ENDPOINT_LABELS[e])],
                    1e9,
                )
            }),
        }
    }

    /// Records one routed request: its endpoint, response status, and
    /// service time in nanoseconds.
    pub fn observe(&self, endpoint: Endpoint, status: u16, nanos: u64) {
        let class = match status / 100 {
            2 => 0,
            4 => 1,
            _ => 2,
        };
        self.requests[endpoint as usize][class].inc();
        self.latency[endpoint as usize].record(nanos);
    }

    /// Counts a submit refused by the authenticated-principal check.
    pub fn auth_rejected(&self, reason: AuthReject) {
        self.auth_rejects[reason as usize].inc();
    }

    /// Counts a request that failed before routing. Parse failures bump the
    /// classed reject counter; a timed-out transport bumps the timeout
    /// counter; other transport failures (torn sockets, clean disconnects
    /// mid-request) are not an error class worth a series.
    pub fn request_failed(&self, error: &RequestError) {
        match error {
            RequestError::Malformed(_) => self.parse_rejects[0].inc(),
            RequestError::HeadersTooLarge => self.parse_rejects[1].inc(),
            RequestError::BodyTooLarge { .. } => self.parse_rejects[2].inc(),
            RequestError::Unsupported(_) => self.parse_rejects[3].inc(),
            // The deadline stream reports `TimedOut`; an expired socket read
            // timeout (idle keep-alive) surfaces as `WouldBlock` on Unix.
            RequestError::Io(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                ) =>
            {
                self.connections_timed_out.inc();
            }
            RequestError::Io(_) => {}
        }
    }
}

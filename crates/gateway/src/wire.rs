//! The gateway's JSON wire forms: the job-submission schema clients POST,
//! the response bodies the server renders, and the conversion into the
//! serve layer's [`JobRequest`].
//!
//! A [`JobRequestWire`] is deliberately *self-contained and declarative*: it
//! carries the tenant, the task-group shapes ([`TaskGroupSpec`]), the budget,
//! the serializable market belief ([`RateSpec`]) and the strategy/scenario
//! override ([`StrategyChoice`]) — exactly the durable description the
//! store's crash journal already persists, so anything expressible over the
//! wire is also journal-able. Conversion re-runs every constructor
//! validation, so a hostile body can produce a structured 4xx but never a
//! panicking solve.

use crowdtune_core::market::MarketId;
use crowdtune_core::money::Budget;
use crowdtune_core::rate::RateSpec;
use crowdtune_core::task::{TaskGroupSpec, TaskSet};
use crowdtune_core::tuner::StrategyChoice;
use crowdtune_serve::{JobRequest, JobTrace, PlanSource, ServedPlan};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A job submission as it travels over the wire (`POST /v1/jobs`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobRequestWire {
    /// Submitting tenant; fairness and per-tenant admission key on it.
    /// Optional on the wire: authenticated submits derive the tenant from
    /// the API key and may omit (or empty) this field entirely — when
    /// present alongside a key it must *agree* with the key's tenant (403
    /// otherwise). Unauthenticated submits in legacy body-tenant mode still
    /// require it non-empty.
    pub tenant: String,
    /// Target market; absent (or `null`) means the default market, so every
    /// pre-federation client body keeps working unchanged. Unknown ids are
    /// rejected by the service, not the wire layer — the gateway cannot know
    /// which markets the service registered.
    pub market: Option<MarketId>,
    /// The job's task groups (converted via [`TaskSet::from_group_specs`]).
    pub groups: Vec<TaskGroupSpec>,
    /// Total budget in units.
    pub budget: u64,
    /// The tenant's market belief.
    pub rate: RateSpec,
    /// Strategy override; `Auto` picks EA/RA/HA per scenario.
    pub strategy: StrategyChoice,
}

// Hand-written so `market` and `tenant` can be *absent* from client JSON:
// the derived impl treats every field as mandatory, which would break
// existing clients (and authenticated bodies need no tenant at all).
impl Deserialize for JobRequestWire {
    fn deserialize_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(JobRequestWire {
            tenant: match value.opt_field("tenant")? {
                Some(tenant) => Deserialize::deserialize_value(tenant)?,
                None => String::new(),
            },
            market: match value.opt_field("market")? {
                Some(market) => Deserialize::deserialize_value(market)?,
                None => None,
            },
            groups: Deserialize::deserialize_value(value.field("groups")?)?,
            budget: Deserialize::deserialize_value(value.field("budget")?)?,
            rate: Deserialize::deserialize_value(value.field("rate")?)?,
            strategy: Deserialize::deserialize_value(value.field("strategy")?)?,
        })
    }
}

/// A semantically invalid (but well-formed) submission → HTTP 422.
#[derive(Debug)]
pub struct InvalidJob {
    detail: String,
}

impl fmt::Display for InvalidJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

impl std::error::Error for InvalidJob {}

impl JobRequestWire {
    /// Converts the wire form into a validated [`JobRequest`].
    ///
    /// `max_slots` bounds the job's total repetition slots (Σ tasks·reps),
    /// checked **before** the task set materialises so a tiny JSON body
    /// declaring an enormous job is refused without allocating it.
    pub fn to_request(&self, max_slots: u64) -> Result<JobRequest, InvalidJob> {
        let invalid = |detail: String| InvalidJob { detail };
        if self.tenant.is_empty() {
            return Err(invalid("tenant must be non-empty".to_owned()));
        }
        if self.groups.is_empty() {
            return Err(invalid("a job needs at least one task group".to_owned()));
        }
        let slots = self
            .groups
            .iter()
            .map(|g| g.tasks.saturating_mul(u64::from(g.repetitions)))
            .fold(0u64, u64::saturating_add);
        if slots > max_slots {
            return Err(invalid(format!(
                "job declares {slots} repetition slots, above the {max_slots} cap"
            )));
        }
        let task_set = TaskSet::from_group_specs(&self.groups)
            .map_err(|e| invalid(format!("invalid task groups: {e}")))?;
        let rate_model = self
            .rate
            .build()
            .map_err(|e| invalid(format!("invalid rate spec: {e}")))?;
        Ok(JobRequest {
            tenant: self.tenant.clone(),
            market: self.market.unwrap_or(MarketId::DEFAULT),
            task_set,
            budget: Budget::units(self.budget),
            rate_model,
            strategy: self.strategy,
        })
    }
}

/// The wire spelling of a [`PlanSource`], so clients can observe which reuse
/// layer answered (`"cache"`, `"family"`, `"cold"`).
pub fn plan_source_label(source: PlanSource) -> &'static str {
    match source {
        PlanSource::CacheHit => "cache",
        PlanSource::FamilyHit => "family",
        PlanSource::ColdSolve => "cold",
    }
}

/// The structured error body every non-2xx response carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable machine-readable code (`bad_request`, `invalid_job`,
    /// `tenant_over_limit`, `queue_full`, `draining`, `tuning_failed`,
    /// `not_found`, `method_not_allowed`, ...).
    pub error: String,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorBody {
    /// Builds an error body.
    pub fn new(error: &str, detail: impl Into<String>) -> Self {
        ErrorBody {
            error: error.to_owned(),
            detail: detail.into(),
        }
    }
}

/// Response to an asynchronous submission (`202 Accepted`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmittedBody {
    /// Service-assigned job id, for `GET /v1/jobs/{id}`.
    pub job_id: u64,
    /// Always `"pending"`.
    pub status: String,
}

/// Response describing a job (`GET /v1/jobs/{id}`, and `POST ?wait=1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobBody {
    /// Service-assigned job id.
    pub job_id: u64,
    /// `"pending"`, `"done"` or `"failed"`.
    pub status: String,
    /// Which reuse layer answered (`"cache"`/`"family"`/`"cold"`); only on
    /// `"done"`.
    pub source: Option<String>,
    /// The tuned plan; only on `"done"`. Bit-identical to an in-process
    /// solve of the same request by construction. `Arc`ed so the body
    /// shares the served plan (possibly the cache's own copy) instead of
    /// deep-cloning payment vectors on every response.
    pub plan: Option<std::sync::Arc<crowdtune_core::tuner::TunedPlan>>,
    /// Why the job failed; only on `"failed"`.
    pub error: Option<ErrorBody>,
}

impl JobBody {
    /// A still-pending job.
    pub fn pending(job_id: u64) -> Self {
        JobBody {
            job_id,
            status: "pending".to_owned(),
            source: None,
            plan: None,
            error: None,
        }
    }

    /// A completed job.
    pub fn done(served: &ServedPlan) -> Self {
        JobBody {
            job_id: served.job_id,
            status: "done".to_owned(),
            source: Some(plan_source_label(served.source).to_owned()),
            plan: Some(served.plan.clone()),
            error: None,
        }
    }

    /// A failed job.
    pub fn failed(job_id: u64, error: ErrorBody) -> Self {
        JobBody {
            job_id,
            status: "failed".to_owned(),
            source: None,
            plan: None,
            error: Some(error),
        }
    }
}

/// Response of `GET /v1/debug/slowest`: the retained ring of slowest
/// completed jobs, slowest first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowestBody {
    /// Traces ordered by descending total time.
    pub traces: Vec<TraceBody>,
}

/// One completed job's stage timeline, flattened to per-stage durations in
/// seconds (the stamps themselves are process-relative and meaningless over
/// the wire).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceBody {
    /// Service-assigned job id.
    pub job_id: u64,
    /// Submitting tenant.
    pub tenant: String,
    /// Scenario the solver actually ran (`"EA"`/`"RA"`/`"HA"`).
    pub scenario: String,
    /// Which reuse layer answered (`"cache"`/`"family"`/`"cold"`).
    pub source: String,
    /// How the job ended: `"ok"`, `"failed"`, `"panicked"` or `"lost"` —
    /// failed jobs sit in the ring alongside slow ones, so the status is
    /// part of the wire shape.
    pub status: String,
    /// Admission (or enqueue) to worker pickup.
    pub queue_wait_seconds: f64,
    /// Fingerprint to plan-in-hand (cache lookup, family serve or DP solve).
    pub solve_seconds: f64,
    /// Quality/cost estimation of the chosen plan.
    pub estimate_seconds: f64,
    /// Time blocked on a plan family's table lock (zero off the family path).
    pub family_lock_wait_seconds: f64,
    /// Admission to response delivered.
    pub total_seconds: f64,
}

impl TraceBody {
    /// Flattens a [`JobTrace`] into the wire shape.
    pub fn from_trace(trace: &JobTrace) -> Self {
        let seconds = |ns: u64| ns as f64 / 1e9;
        TraceBody {
            job_id: trace.job_id,
            tenant: trace.tenant.clone(),
            scenario: trace.scenario.to_owned(),
            source: trace.source.to_owned(),
            status: trace.status_str().to_owned(),
            queue_wait_seconds: seconds(trace.queue_wait_ns()),
            solve_seconds: seconds(trace.solve_ns()),
            estimate_seconds: seconds(trace.estimate_ns()),
            family_lock_wait_seconds: seconds(trace.family_lock_wait_ns),
            total_seconds: seconds(trace.total_ns()),
        }
    }
}

/// Response of `GET /v1/debug/traces`: the span store's sampled traces,
/// newest first, after any query filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracesBody {
    /// One summary per sampled trace.
    pub traces: Vec<TraceSummaryBody>,
}

/// One sampled trace in the `GET /v1/debug/traces` listing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummaryBody {
    /// The 32-hex-digit W3C trace id; fetch the tree at
    /// `GET /v1/debug/traces/{trace_id}`.
    pub trace_id: String,
    /// Root operation name (`"http.request"`, `"job.submit"`, ...).
    pub name: String,
    /// Submitting tenant (empty when the request failed before one was
    /// resolved).
    pub tenant: String,
    /// Market the job tuned against (empty off the job path).
    pub market: String,
    /// Paper scenario (`"EA"`/`"RA"`/`"HA"`, empty off the solve path).
    pub scenario: String,
    /// Root status: `"ok"` or `"error"`.
    pub status: String,
    /// Why the trace was kept: `"head"`, `"tail_slow"` or `"tail_error"`.
    pub sampled: String,
    /// Wall-clock length of the root span, in seconds.
    pub duration_seconds: f64,
    /// Number of spans in the tree.
    pub spans: u64,
}

impl TraceSummaryBody {
    /// Flattens a stored trace into the listing shape.
    pub fn from_stored(trace: &crowdtune_obs::StoredTrace) -> Self {
        TraceSummaryBody {
            trace_id: trace.trace_id.to_hex(),
            name: trace.name.to_owned(),
            tenant: trace.tenant.clone(),
            market: trace.market.clone(),
            scenario: trace.scenario.to_owned(),
            status: trace.status.as_str().to_owned(),
            sampled: trace.reason.as_str().to_owned(),
            duration_seconds: trace.duration_ns as f64 / 1e9,
            spans: trace.spans.len() as u64,
        }
    }
}

/// Response of `GET /v1/debug/traces/{trace_id}`: one sampled trace with
/// its full span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceTreeBody {
    /// The trace's summary line.
    pub trace: TraceSummaryBody,
    /// Every span of the tree, parents before children.
    pub spans: Vec<SpanBody>,
}

impl TraceTreeBody {
    /// Renders a stored trace and its spans.
    pub fn from_stored(trace: &crowdtune_obs::StoredTrace) -> Self {
        TraceTreeBody {
            trace: TraceSummaryBody::from_stored(trace),
            spans: trace.spans.iter().map(SpanBody::from_span).collect(),
        }
    }
}

/// One span inside a [`TraceTreeBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanBody {
    /// The span's 16-hex-digit id.
    pub span_id: String,
    /// The parent span's id; `null` only on the root.
    pub parent: Option<String>,
    /// Operation name (`"gateway.auth"`, `"queue.wait"`, `"solve"`, ...).
    pub name: String,
    /// Start offset from the tracer epoch, in nanoseconds.
    pub start_ns: u64,
    /// Span length in nanoseconds.
    pub duration_ns: u64,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// Typed attributes, rendered as strings.
    pub attrs: Vec<SpanAttrBody>,
}

impl SpanBody {
    /// Flattens one span (attribute values render via their JSON forms).
    pub fn from_span(span: &crowdtune_obs::Span) -> Self {
        SpanBody {
            span_id: span.span_id.to_hex(),
            parent: span.parent.map(|p| p.to_hex()),
            name: span.name.to_owned(),
            start_ns: span.start_ns,
            duration_ns: span.duration_ns,
            status: span.status.as_str().to_owned(),
            attrs: span
                .attrs
                .iter()
                .map(|(key, value)| SpanAttrBody {
                    key: (*key).to_owned(),
                    value: value.render(),
                })
                .collect(),
        }
    }
}

/// One `key = value` span attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanAttrBody {
    /// Attribute key.
    pub key: String,
    /// Attribute value, rendered as text.
    pub value: String,
}

/// Response of `GET /v1/debug/logs`: the structured log ring, oldest
/// surviving record first, after the level filter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogsBody {
    /// The retained records.
    pub records: Vec<LogRecordBody>,
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecordBody {
    /// Unix timestamp of the record, in nanoseconds.
    pub ts_unix_ns: u64,
    /// `"debug"`, `"info"`, `"warn"` or `"error"`.
    pub level: String,
    /// Emitting subsystem (`"gateway"`, `"serve::worker"`, ...).
    pub target: String,
    /// The message text.
    pub message: String,
    /// 32-hex trace id active at emission; `null` outside any trace.
    pub trace_id: Option<String>,
    /// 16-hex span id active at emission; `null` outside any span.
    pub span_id: Option<String>,
    /// Structured fields, rendered as strings.
    pub fields: Vec<SpanAttrBody>,
}

impl LogRecordBody {
    /// Flattens a log record into the wire shape.
    pub fn from_record(record: &crowdtune_obs::LogRecord) -> Self {
        LogRecordBody {
            ts_unix_ns: record.ts_unix_ns,
            level: record.level.as_str().to_owned(),
            target: record.target.to_owned(),
            message: record.message.clone(),
            trace_id: record.trace_id.map(|id| id.to_hex()),
            span_id: record.span_id.map(|id| id.to_hex()),
            fields: record
                .fields
                .iter()
                .map(|(key, value)| SpanAttrBody {
                    key: (*key).to_owned(),
                    value: value.clone(),
                })
                .collect(),
        }
    }
}

/// Response of `GET /healthz`: the health state machine's wire form.
/// `healthy`/`degraded` ride a 200, `draining` a 503.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthBody {
    /// `"healthy"`, `"degraded"` or `"draining"`
    /// (see [`crowdtune_serve::HealthState::label`]).
    pub status: String,
    /// Machine-readable degradation reasons
    /// ([`crowdtune_serve::HealthReason::as_str`]); empty unless degraded.
    pub reasons: Vec<String>,
    /// Whether the gateway/service pair is draining.
    pub draining: bool,
}

/// Response of `GET /v1/metrics`: every service counter surface in one
/// snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsBody {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Exact-match plan-cache answers.
    pub cache_hits: u64,
    /// Cross-budget family answers.
    pub family_hits: u64,
    /// Full cold solves.
    pub cold_solves: u64,
    /// Jobs whose solve failed.
    pub solve_errors: u64,
    /// Jobs currently queued.
    pub pending: u64,
    /// Whether the service is draining.
    pub draining: bool,
    /// Plan-cache counters.
    pub cache: CacheBody,
    /// Plan-family counters.
    pub families: FamiliesBody,
    /// Durable-store write-behind counters (`null` without a store).
    pub store: Option<StoreBody>,
}

/// Plan-cache counters within [`MetricsBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheBody {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// Plan-family counters within [`MetricsBody`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamiliesBody {
    /// Families currently resident.
    pub families: u64,
    /// Jobs answered from a resident family table.
    pub hits: u64,
    /// Hits that first grew the table.
    pub extensions: u64,
    /// Cold solves that seeded a family.
    pub builds: u64,
    /// Families displaced by the LRU bound.
    pub evictions: u64,
    /// Families rehydrated from a persisted snapshot.
    pub reloads: u64,
}

/// Durable-store counters within [`MetricsBody`]. `dropped` is the
/// write-behind backpressure loss — records shed because the bounded queue
/// was full — previously visible only in logs/tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreBody {
    /// Records accepted onto the write-behind queue.
    pub enqueued: u64,
    /// Records the writer retired.
    pub retired: u64,
    /// Records dropped under backpressure (queue full, oldest evicted).
    pub dropped: u64,
    /// Records whose disk write failed.
    pub write_errors: u64,
    /// `fsync` calls issued under the configured policy.
    pub fsyncs: u64,
}

impl MetricsBody {
    /// Flattens a [`ServiceStatus`](crowdtune_serve::ServiceStatus) into the
    /// wire shape.
    pub fn from_status(status: &crowdtune_serve::ServiceStatus) -> Self {
        MetricsBody {
            submitted: status.metrics.submitted,
            rejected: status.metrics.rejected,
            cache_hits: status.metrics.cache_hits,
            family_hits: status.metrics.family_hits,
            cold_solves: status.metrics.cold_solves,
            solve_errors: status.metrics.solve_errors,
            pending: status.pending as u64,
            draining: status.draining,
            cache: CacheBody {
                hits: status.cache.hits,
                misses: status.cache.misses,
                evictions: status.cache.evictions,
                entries: status.cache.entries,
            },
            families: FamiliesBody {
                families: status.families.families,
                hits: status.families.hits,
                extensions: status.families.extensions,
                builds: status.families.builds,
                evictions: status.families.evictions,
                reloads: status.families.reloads,
            },
            store: status.store.map(|store| StoreBody {
                enqueued: store.enqueued,
                retired: store.retired,
                dropped: store.dropped,
                write_errors: store.write_errors,
                fsyncs: store.fsyncs,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_core::rate::LinearRate;

    fn wire(budget: u64) -> JobRequestWire {
        JobRequestWire {
            tenant: "acme".to_owned(),
            market: None,
            groups: vec![
                TaskGroupSpec {
                    name: "vote".to_owned(),
                    processing_rate: 2.0,
                    tasks: 3,
                    repetitions: 3,
                },
                TaskGroupSpec {
                    name: "vote".to_owned(),
                    processing_rate: 2.0,
                    tasks: 4,
                    repetitions: 5,
                },
            ],
            budget,
            rate: RateSpec::Linear(LinearRate::unit_slope()),
            strategy: StrategyChoice::Auto,
        }
    }

    #[test]
    fn wire_round_trips_and_converts() {
        let wire = wire(120);
        let text = serde_json::to_string(&wire).unwrap();
        let back: JobRequestWire = serde_json::from_str(&text).unwrap();
        assert_eq!(back, wire);
        let request = wire.to_request(10_000).unwrap();
        assert_eq!(request.tenant, "acme");
        assert_eq!(request.task_set.len(), 7);
        assert_eq!(request.budget.as_units(), 120);
        // The conversion reuses the core group-spec path, so the set is
        // identical to a hand-built one (Scenario II shape here).
        assert!(request.task_set.is_homogeneous_type());
    }

    #[test]
    fn conversion_rejects_invalid_jobs_without_allocating() {
        let mut empty_tenant = wire(120);
        empty_tenant.tenant.clear();
        assert!(empty_tenant.to_request(10_000).is_err());

        let mut no_groups = wire(120);
        no_groups.groups.clear();
        assert!(no_groups.to_request(10_000).is_err());

        // An absurd declared size trips the slot cap before any task set is
        // built (u64 arithmetic saturates instead of overflowing).
        let mut huge = wire(120);
        huge.groups[0].tasks = u64::MAX;
        assert!(huge.to_request(10_000).is_err());

        let mut bad_rate = wire(120);
        bad_rate.rate = RateSpec::Linear(LinearRate { k: -1.0, b: 0.0 });
        assert!(bad_rate.to_request(10_000).is_err());

        let mut zero_reps = wire(120);
        zero_reps.groups[0].repetitions = 0;
        assert!(zero_reps.to_request(10_000).is_err());
    }

    /// Wire back-compat: pre-federation client bodies carry no `market`
    /// key at all — they must keep parsing and land on the default market.
    #[test]
    fn bodies_without_a_market_key_land_on_the_default_market() {
        let text = r#"{
            "tenant": "acme",
            "groups": [{"name": "vote", "processing_rate": 2.0, "tasks": 3, "repetitions": 3}],
            "budget": 60,
            "rate": {"Linear": {"k": 1.0, "b": 1.0}},
            "strategy": "Auto"
        }"#;
        let wire: JobRequestWire = serde_json::from_str(text).unwrap();
        assert_eq!(wire.market, None);
        let request = wire.to_request(10_000).unwrap();
        assert_eq!(request.market, MarketId::DEFAULT);
    }

    #[test]
    fn explicit_market_ids_travel_over_the_wire() {
        let mut with_market = wire(120);
        with_market.market = Some(MarketId(3));
        let text = serde_json::to_string(&with_market).unwrap();
        assert!(text.contains("\"market\":3"), "{text}");
        let back: JobRequestWire = serde_json::from_str(&text).unwrap();
        assert_eq!(back, with_market);
        assert_eq!(back.to_request(10_000).unwrap().market, MarketId(3));
    }

    #[test]
    fn plan_sources_have_stable_labels() {
        assert_eq!(plan_source_label(PlanSource::CacheHit), "cache");
        assert_eq!(plan_source_label(PlanSource::FamilyHit), "family");
        assert_eq!(plan_source_label(PlanSource::ColdSolve), "cold");
    }
}

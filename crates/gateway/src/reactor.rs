//! Readiness polling for the event-driven gateway: a thin, std-only wrapper
//! over the OS readiness facility plus a cross-thread [`Waker`].
//!
//! ## The vetted-crate seam
//!
//! This module is the one place the gateway talks to the readiness syscall
//! surface, and its API is deliberately shaped like the `polling`/`mio`
//! registration model (`register`/`modify`/`deregister`/`wait` with opaque
//! `u64` tokens). When a crate registry is reachable, swapping the body of
//! [`Poller`] for a vetted crate is a local change — nothing above this
//! module names epoll.
//!
//! On Linux the implementation is `epoll` called directly through the C ABI
//! (std already links libc on `*-linux-gnu`; the `sys` module below is the
//! crate's only `unsafe` and is kept small enough to audit by eye). On other
//! Unixes a degraded fallback reports every registered token as ready on a
//! short tick — correct (connection handlers treat spurious readiness as
//! `WouldBlock` and move on) but O(connections) per tick, documented as
//! such, and only ever compiled off-Linux.
//!
//! Readiness is **level-triggered**: a socket with unread bytes (or writable
//! space) keeps reporting ready, so handlers may consume as little or as
//! much as they like per event without missing data.

use std::io;

/// Which readiness a registration wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the fd is readable (or the peer closed).
    pub read: bool,
    /// Wake when the fd accepts writes.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes peer half/full close — a read will tell).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition; the owner should read to collect the error
    /// and close.
    pub closed: bool,
}

#[cfg(target_os = "linux")]
pub(crate) use linux::Poller;

#[cfg(target_os = "linux")]
mod linux {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    /// The epoll FFI surface. `std` on `*-linux-gnu` links libc, so these
    /// symbols resolve without any crate dependency. Kept to the three
    /// syscall wrappers and the constants they need.
    #[allow(unsafe_code)]
    mod sys {
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLL_CLOEXEC: i32 = 0x80000;

        /// `struct epoll_event`: packed on x86-64 (the kernel ABI), natural
        /// alignment elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        }

        pub fn create() -> std::io::Result<i32> {
            // SAFETY: no pointers involved; the return value is checked.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(fd)
        }

        pub fn ctl(epfd: i32, op: i32, fd: i32, event: Option<EpollEvent>) -> std::io::Result<()> {
            let mut event = event;
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live, properly
            // laid-out `EpollEvent` for the duration of the call.
            let rc = unsafe { epoll_ctl(epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(
            epfd: i32,
            events: &mut [EpollEvent],
            timeout_ms: i32,
        ) -> std::io::Result<usize> {
            // SAFETY: the buffer pointer/length come from a live slice and
            // the kernel writes at most `len` entries.
            let rc =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(rc as usize)
        }
    }

    /// Level-triggered epoll instance. One per reactor thread.
    pub(crate) struct Poller {
        epfd: OwnedFd,
        /// Scratch buffer for `epoll_wait` output.
        buf: Vec<sys::EpollEvent>,
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut mask = sys::EPOLLRDHUP; // always watch for peer close
        if interest.read {
            mask |= sys::EPOLLIN;
        }
        if interest.write {
            mask |= sys::EPOLLOUT;
        }
        mask
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let raw = sys::create()?;
            // SAFETY: `raw` is a freshly created, owned epoll fd.
            #[allow(unsafe_code)]
            let epfd = unsafe { OwnedFd::from_raw_fd(raw) };
            Ok(Poller {
                epfd,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                fd,
                Some(sys::EpollEvent {
                    events: mask_of(interest),
                    data: token,
                }),
            )
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                fd,
                Some(sys::EpollEvent {
                    events: mask_of(interest),
                    data: token,
                }),
            )
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            sys::ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, None)
        }

        /// Blocks until readiness or `timeout` (None = indefinitely),
        /// appending events to `out`. A signal interruption returns cleanly
        /// with no events.
        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = match timeout {
                None => -1,
                // Round up so a 100µs timer does not busy-spin at 0ms.
                Some(t) => t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
            };
            let n = match sys::wait(self.epfd.as_raw_fd(), &mut self.buf, timeout_ms) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(PollEvent {
                    token: data,
                    readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: events & sys::EPOLLOUT != 0,
                    closed: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            if n == self.buf.len() {
                // Saturated the buffer: more events may be pending; grow so
                // a busy reactor drains in fewer syscalls next round.
                let len = self.buf.len() * 2;
                self.buf.resize(len, sys::EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }
    }
}

#[cfg(not(target_os = "linux"))]
pub(crate) use fallback::Poller;

#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::{Interest, PollEvent};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Degraded portable poller: reports every registered token as ready on
    /// a short tick. Correct — handlers treat spurious readiness as
    /// `WouldBlock` — but O(registrations) per tick; the Linux build uses
    /// real epoll above.
    pub(crate) struct Poller {
        registered: HashMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let tick = Duration::from_millis(2);
            std::thread::sleep(timeout.map_or(tick, |t| t.min(tick)));
            for (&_fd, &(token, interest)) in &self.registered {
                out.push(PollEvent {
                    token,
                    readable: interest.read,
                    writable: interest.write,
                    closed: false,
                });
            }
            Ok(())
        }
    }
}

/// Cross-thread wake-up for a parked [`Poller::wait`]: a non-blocking
/// socketpair whose read end is registered in the poller (the reactor owns
/// the read end; clones of the write end travel with completion hooks).
/// Waking writes one byte; the reactor drains on readiness. The pipe being
/// full is success — the reactor is already guaranteed a wake-up.
#[derive(Clone)]
pub(crate) struct Waker {
    tx: std::sync::Arc<std::os::unix::net::UnixStream>,
}

/// The read end of a [`Waker`], owned by the reactor and registered in its
/// poller under the waker token.
pub(crate) struct WakeReceiver {
    rx: std::os::unix::net::UnixStream,
}

/// A connected waker pair.
pub(crate) fn waker() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Waker {
            tx: std::sync::Arc::new(tx),
        },
        WakeReceiver { rx },
    ))
}

impl Waker {
    /// Wakes the owning reactor. Never blocks; a full pipe already implies a
    /// pending wake-up.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1]);
    }
}

impl WakeReceiver {
    /// The fd to register under the reactor's waker token.
    pub fn as_raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(&self.rx)
    }

    /// Drains every pending wake byte (level-triggered pollers would
    /// otherwise re-report forever).
    pub fn drain(&mut self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_wakes_a_parked_wait() {
        let mut poller = Poller::new().unwrap();
        let (waker, mut rx) = waker().unwrap();
        poller.register(rx.as_raw_fd(), 0, Interest::READ).unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
            waker.wake(); // coalesces
            waker // keep the write end alive: dropping it reads as a close
        });
        let mut events: Vec<PollEvent> = Vec::new();
        let started = Instant::now();
        while events.is_empty() && started.elapsed() < Duration::from_secs(5) {
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
        }
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        // Join first: a wake issued after the drain would re-arm readiness.
        let _waker = handle.join().unwrap();
        rx.drain();
        // After the drain, a bounded wait sees no waker readiness.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token == 0 && e.readable));
    }

    #[test]
    fn readiness_tracks_data_and_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(server.as_raw_fd(), 7, Interest::READ)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events: Vec<PollEvent> = Vec::new();
        let started = Instant::now();
        while !events.iter().any(|e| e.token == 7 && e.readable) {
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "no readable event"
            );
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
        }

        // Consume the bytes; ask for write interest and see writability.
        let mut buf = [0u8; 16];
        let mut server = &server;
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        poller
            .modify(
                server.as_raw_fd(),
                7,
                Interest {
                    read: true,
                    write: true,
                },
            )
            .unwrap();
        events.clear();
        let started = Instant::now();
        while !events.iter().any(|e| e.token == 7 && e.writable) {
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "no writable event"
            );
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
        }
        poller.deregister(server.as_raw_fd()).unwrap();
    }
}

//! A hand-rolled, std-only HTTP/1.1 message layer: bounded request parsing
//! and response writing over any `BufRead`/`Write` pair.
//!
//! The parser is deliberately small — exactly the subset the gateway's JSON
//! API needs — but strict about resource bounds: the request line, each
//! header line, the header count and the body length are all capped by
//! [`Limits`], and every torn, malformed or oversized input maps to a typed
//! [`RequestError`] the server turns into a 4xx response (or a silent close
//! for I/O failures) — never a panic, never unbounded buffering. Torn reads
//! are first-class: the parser only ever consumes through a `BufRead`, so a
//! request split at any byte boundary (slow clients, small MTUs) parses
//! identically to one arriving whole, and bytes after a request stay in the
//! reader — pipelined requests are simply parsed back to back.

use std::fmt;
use std::io::{BufRead, Write};

/// Resource bounds applied while parsing one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line, in bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, in bytes.
    pub max_header_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted body, in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb, as sent (e.g. `GET`, `POST`).
    pub method: String,
    /// The target path, up to but excluding any `?`.
    pub path: String,
    /// Decoded `k=v` query pairs in target order (no percent-decoding — the
    /// gateway's API uses none).
    pub query: Vec<(String, String)>,
    /// Lower-cased header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client may reuse the connection (HTTP/1.1 default, or an
    /// explicit `Connection: keep-alive`; `Connection: close` wins).
    pub keep_alive: bool,
}

impl Request {
    /// First value of a (lower-cased) header, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Every variant except [`Io`] maps to an
/// HTTP status via [`RequestError::status`]; [`Io`] means the transport
/// failed mid-request (torn connection, read timeout) and the only honest
/// answer is closing the socket.
///
/// [`Io`]: RequestError::Io
#[derive(Debug)]
pub enum RequestError {
    /// Syntactically invalid request (bad request line, header or body
    /// framing) → 400.
    Malformed(String),
    /// Request line or a header line exceeded its byte bound, or too many
    /// headers → 431.
    HeadersTooLarge,
    /// Declared `Content-Length` beyond [`Limits::max_body`] → 413.
    BodyTooLarge {
        /// The configured bound the declaration exceeded.
        limit: usize,
    },
    /// A feature this parser deliberately does not speak (chunked transfer
    /// encoding, unknown HTTP version) → 501.
    Unsupported(String),
    /// The transport failed mid-request; no response can be delivered.
    Io(std::io::Error),
}

impl RequestError {
    /// The response status this error maps to (`None` for [`RequestError::Io`]:
    /// close without answering).
    pub fn status(&self) -> Option<u16> {
        match self {
            RequestError::Malformed(_) => Some(400),
            RequestError::HeadersTooLarge => Some(431),
            RequestError::BodyTooLarge { .. } => Some(413),
            RequestError::Unsupported(_) => Some(501),
            RequestError::Io(_) => None,
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            RequestError::HeadersTooLarge => f.write_str("request head exceeds configured bounds"),
            RequestError::BodyTooLarge { limit } => {
                write!(f, "request body exceeds the {limit}-byte bound")
            }
            RequestError::Unsupported(what) => write!(f, "unsupported: {what}"),
            RequestError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Reads one `\n`-terminated line (dropping the terminator and an optional
/// preceding `\r`), consuming at most `limit` bytes. `Ok(None)` is a clean
/// EOF before the first byte — the keep-alive "no further request" signal.
fn read_line(reader: &mut impl BufRead, limit: usize) -> Result<Option<Vec<u8>>, RequestError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(RequestError::Io(e)),
        };
        if buf.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(RequestError::Malformed(
                    "connection closed mid-line".to_owned(),
                ))
            };
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map(|i| i + 1).unwrap_or(buf.len());
        if line.len() + take > limit + 2 {
            // +2: allow the terminator itself on a limit-sized line.
            return Err(RequestError::HeadersTooLarge);
        }
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if newline.is_some() {
            line.pop(); // '\n'
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.len() > limit {
                return Err(RequestError::HeadersTooLarge);
            }
            return Ok(Some(line));
        }
    }
}

/// Parses one request from the reader. `Ok(None)` means the connection was
/// closed cleanly before a request started (normal keep-alive end).
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<Request>, RequestError> {
    // Tolerate a little leading emptiness (RFC 9112 §2.2 asks servers to
    // ignore at least one stray CRLF between pipelined requests).
    let mut request_line = None;
    for _ in 0..4 {
        match read_line(reader, limits.max_request_line)? {
            None => return Ok(None),
            Some(line) if line.is_empty() => continue,
            Some(line) => {
                request_line = Some(line);
                break;
            }
        }
    }
    let Some(line) = request_line else {
        return Err(RequestError::Malformed(
            "blank lines where a request line was expected".to_owned(),
        ));
    };
    let line = String::from_utf8(line)
        .map_err(|_| RequestError::Malformed("request line is not UTF-8".to_owned()))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "request line is not `METHOD TARGET VERSION`: {line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::Malformed(format!(
            "method is not an uppercase token: {method:?}"
        )));
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other if other.starts_with("HTTP/") => {
            return Err(RequestError::Unsupported(format!("version {other}")))
        }
        other => {
            return Err(RequestError::Malformed(format!(
                "not an HTTP version: {other:?}"
            )))
        }
    };
    if !target.starts_with('/') {
        return Err(RequestError::Malformed(format!(
            "target must be origin-form: {target:?}"
        )));
    }
    let (path, query_text) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect();

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = read_line(reader, limits.max_header_line)?.ok_or_else(|| {
            RequestError::Malformed("connection closed inside the header block".to_owned())
        })?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(RequestError::HeadersTooLarge);
        }
        let line = String::from_utf8(line)
            .map_err(|_| RequestError::Malformed("header line is not UTF-8".to_owned()))?;
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!(
                "header line without a colon: {line:?}"
            )));
        };
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(RequestError::Malformed(format!(
                "invalid header name: {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut keep_alive = keep_alive_default;
    if let Some(connection) = header_value(&headers, "connection") {
        let tokens: Vec<String> = connection
            .split(',')
            .map(|t| t.trim().to_ascii_lowercase())
            .collect();
        if tokens.iter().any(|t| t == "close") {
            keep_alive = false;
        } else if tokens.iter().any(|t| t == "keep-alive") {
            keep_alive = true;
        }
    }

    if header_value(&headers, "transfer-encoding").is_some() {
        return Err(RequestError::Unsupported(
            "transfer-encoding (use Content-Length)".to_owned(),
        ));
    }
    // Repeated Content-Length headers are rejected outright (even when the
    // values agree): behind a fronting proxy, any disagreement over which
    // declaration frames the body is a request-smuggling desync vector
    // (RFC 9112 §6.3 requires refusing differing values; refusing
    // repetition entirely is the conservative superset).
    let mut content_lengths = headers
        .iter()
        .filter(|(name, _)| name == "content-length")
        .map(|(_, value)| value.as_str());
    let declared_length = content_lengths.next();
    if content_lengths.next().is_some() {
        return Err(RequestError::Malformed(
            "repeated Content-Length headers".to_owned(),
        ));
    }
    let body = match declared_length {
        None => Vec::new(),
        Some(text) => {
            let declared: u64 = text.trim().parse().map_err(|_| {
                RequestError::Malformed(format!("invalid Content-Length: {text:?}"))
            })?;
            if declared > limits.max_body as u64 {
                return Err(RequestError::BodyTooLarge {
                    limit: limits.max_body,
                });
            }
            let mut body = vec![0u8; declared as usize];
            match reader.read_exact(&mut body) {
                Ok(()) => body,
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    return Err(RequestError::Malformed(
                        "connection closed inside the declared body".to_owned(),
                    ))
                }
                Err(e) => return Err(RequestError::Io(e)),
            }
        }
    };

    Ok(Some(Request {
        method: method.to_owned(),
        path: path.to_owned(),
        query,
        headers,
        body,
        keep_alive,
    }))
}

fn header_value<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Outcome of [`parse_buffered`]: either one complete request (and how many
/// buffer bytes it consumed), or a signal that the buffer ends before the
/// request does and more bytes must arrive first.
#[derive(Debug)]
pub enum ParsedRequest {
    /// A complete request parsed from the front of the buffer. `consumed`
    /// bytes belong to it; the caller drains them and may parse again
    /// (pipelining).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer the request occupied.
        consumed: usize,
    },
    /// The buffer holds only a request prefix. Not an error: read more
    /// bytes and retry. (An actual peer close with a non-empty buffer is
    /// the caller's torn-request case — the parser cannot see the socket.)
    Incomplete,
}

/// A `BufRead` over the front of a byte slice that reports `WouldBlock`
/// instead of EOF when it runs out, so the shared request parser
/// distinguishes "buffer exhausted, more may arrive" (→ [`ParsedRequest::Incomplete`])
/// from a real connection close. Tracks how many bytes parsing consumed.
struct PartialSlice<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl std::io::Read for PartialSlice<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.buf.len() {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for PartialSlice<'_> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
    }
}

/// Non-blocking entry point to the same parser [`read_request`] uses:
/// attempts to parse one complete request from the front of `buf`.
///
/// This is how an event-driven server uses the blocking-oriented
/// incremental parser: accumulate socket bytes into a buffer, call this on
/// every readable event, and on [`ParsedRequest::Incomplete`] simply wait
/// for more bytes (the partial parse is discarded — re-parsing from the
/// buffer start is O(head) and request heads are bounded by [`Limits`], so
/// the worst-case total cost of a trickled request stays bounded too). All
/// resource bounds apply to the *buffered prefix* exactly as they do on the
/// blocking path, so an over-limit head or body declaration is refused
/// before the request ever completes.
pub fn parse_buffered(buf: &[u8], limits: &Limits) -> Result<ParsedRequest, RequestError> {
    let mut slice = PartialSlice { buf, pos: 0 };
    match read_request(&mut slice, limits) {
        Ok(Some(request)) => Ok(ParsedRequest::Complete {
            request,
            consumed: slice.pos,
        }),
        // `read_request` only reports a clean pre-request EOF through a
        // reader that can signal EOF; `PartialSlice` never does.
        Ok(None) => Ok(ParsedRequest::Incomplete),
        Err(RequestError::Io(e)) if e.kind() == std::io::ErrorKind::WouldBlock => {
            Ok(ParsedRequest::Incomplete)
        }
        Err(e) => Err(e),
    }
}

/// One response about to be written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value (JSON for the API; the Prometheus
    /// exposition of `/v1/metrics` negotiates plain text).
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// When set, a `Retry-After: <seconds>` header is emitted (quota and
    /// shed 429/503 responses tell clients when to come back).
    pub retry_after: Option<u64>,
    /// Additional response headers (name, value), emitted verbatim after
    /// the framing headers — the gateway uses this to echo `traceparent`
    /// so clients learn the trace id of each submit.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
            headers: Vec::new(),
        }
    }

    /// A response with an explicit content type (e.g. the Prometheus text
    /// exposition, `text/plain; version=0.0.4`).
    pub fn text(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type,
            body: body.into(),
            retry_after: None,
            headers: Vec::new(),
        }
    }

    /// Attach a `Retry-After` hint (whole seconds, rounded up by callers).
    pub fn with_retry_after(mut self, seconds: u64) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Attach an arbitrary response header. The value must already be a
    /// valid header value (no CR/LF); the gateway only passes values it
    /// rendered itself.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

/// The reason phrase for the statuses this gateway emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Serializes one response to the bytes that go on the wire (head and body
/// together, so a socket path can put it out in one write). The reactor
/// queues these bytes and drains them as the socket accepts them.
pub fn render_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut message = String::with_capacity(response.body.len() + 128);
    message.push_str(&format!(
        "HTTP/1.1 {} {}\r\n",
        response.status,
        reason_phrase(response.status)
    ));
    message.push_str(&format!("Content-Type: {}\r\n", response.content_type));
    message.push_str(&format!("Content-Length: {}\r\n", response.body.len()));
    if let Some(seconds) = response.retry_after {
        message.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    for (name, value) in &response.headers {
        message.push_str(&format!("{name}: {value}\r\n"));
    }
    if !keep_alive {
        message.push_str("Connection: close\r\n");
    }
    message.push_str("\r\n");
    message.push_str(&response.body);
    message.into_bytes()
}

/// Serializes and writes one response in a single `write_all` (one syscall
/// per response on a blocking socket — used by the accept-time shed path and
/// tests). Returns the bytes put on the wire, for egress accounting.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<usize> {
    let message = render_response(response, keep_alive);
    writer.write_all(&message)?;
    writer.flush()?;
    Ok(message.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, RequestError> {
        read_request(&mut BufReader::new(text.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_query_and_body() {
        let req = parse("POST /v1/jobs?wait=1&x=y HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query_param("wait"), Some("1"));
        assert_eq!(req.query_param("x"), Some("y"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn clean_eof_is_none_and_torn_requests_are_malformed() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(
            parse("GET /x HT"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nHost: y"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nabc"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_inputs_map_to_400_shaped_errors() {
        for bad in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x FTP/9\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: y\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status(), Some(400), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn oversized_inputs_map_to_4xx() {
        let limits = Limits {
            max_request_line: 32,
            max_header_line: 32,
            max_headers: 2,
            max_body: 8,
        };
        let parse = |text: &str| read_request(&mut BufReader::new(text.as_bytes()), &limits);
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        assert_eq!(
            parse(&long_target).unwrap_err().status(),
            Some(431),
            "oversized request line"
        );
        let long_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "v".repeat(64));
        assert_eq!(parse(&long_header).unwrap_err().status(), Some(431));
        assert_eq!(
            parse("GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(431),
            "too many headers"
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789")
                .unwrap_err()
                .status(),
            Some(413),
            "oversized body is refused from the declaration alone"
        );
    }

    /// Repeated `Content-Length` headers — agreeing or not — are refused:
    /// ambiguity over which declaration frames the body is the classic
    /// request-smuggling desync behind a fronting proxy.
    #[test]
    fn repeated_content_length_headers_are_rejected() {
        for bad in [
            "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 50\r\n\r\nhello",
            "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status(), Some(400), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn chunked_transfer_encoding_is_unsupported() {
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), Some(501));
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let text = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                    GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(text.as_bytes());
        let limits = Limits::default();
        let a = read_request(&mut reader, &limits).unwrap().unwrap();
        let b = read_request(&mut reader, &limits).unwrap().unwrap();
        let c = read_request(&mut reader, &limits).unwrap().unwrap();
        assert_eq!(
            (a.path.as_str(), b.path.as_str(), c.path.as_str()),
            ("/a", "/b", "/c")
        );
        assert_eq!(b.body, b"hi");
        assert!(!c.keep_alive);
        assert!(read_request(&mut reader, &limits).unwrap().is_none());
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let req = parse("GET /x HTTP/1.1\nHost: y\n\n").unwrap().unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(req.header("host"), Some("y"));
    }

    #[test]
    fn responses_render_with_length_and_close_header() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(202, "{}"), true).unwrap();
        assert!(!String::from_utf8(out).unwrap().contains("Connection:"));
    }

    #[test]
    fn extra_headers_render_verbatim() {
        let rendered = render_response(
            &Response::json(202, "{}").with_header(
                "traceparent",
                "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01",
            ),
            true,
        );
        let text = String::from_utf8(rendered).unwrap();
        assert!(text
            .contains("traceparent: 00-0123456789abcdef0123456789abcdef-0123456789abcdef-01\r\n"));
    }

    #[test]
    fn retry_after_header_renders_when_requested() {
        let rendered = render_response(&Response::json(429, "{}").with_retry_after(3), true);
        let text = String::from_utf8(rendered).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 3\r\n"));
        let plain = render_response(&Response::json(429, "{}"), true);
        assert!(!String::from_utf8(plain).unwrap().contains("Retry-After"));
    }

    /// Every proper prefix of a request is `Incomplete`, never an error,
    /// and the full buffer parses with an exact consumed count — the
    /// invariant the reactor leans on when bytes trickle in.
    #[test]
    fn buffered_parse_is_incomplete_at_every_split_point() {
        let text = "POST /v1/jobs?wait=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let limits = Limits::default();
        for cut in 0..text.len() {
            match parse_buffered(&text.as_bytes()[..cut], &limits) {
                Ok(ParsedRequest::Incomplete) => {}
                other => panic!("prefix of {cut} bytes: expected Incomplete, got {other:?}"),
            }
        }
        match parse_buffered(text.as_bytes(), &limits).unwrap() {
            ParsedRequest::Complete { request, consumed } => {
                assert_eq!(consumed, text.len());
                assert_eq!(request.path, "/v1/jobs");
                assert_eq!(request.body, b"abcd");
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    /// A buffer holding several pipelined requests yields them one at a
    /// time, with `consumed` advancing the drain point exactly.
    #[test]
    fn buffered_parse_walks_pipelined_requests_by_consumed() {
        let text = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                    GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        let limits = Limits::default();
        let mut at = 0;
        let mut paths = Vec::new();
        while at < text.len() {
            match parse_buffered(&text.as_bytes()[at..], &limits).unwrap() {
                ParsedRequest::Complete { request, consumed } => {
                    paths.push(request.path);
                    at += consumed;
                }
                ParsedRequest::Incomplete => panic!("unexpected Incomplete at {at}"),
            }
        }
        assert_eq!(at, text.len());
        assert_eq!(paths, ["/a", "/b", "/c"]);
    }

    /// Resource bounds bite on the buffered path even before the request
    /// completes: a too-long head prefix or an over-limit Content-Length
    /// declaration is a hard error, not an Incomplete that grows forever.
    #[test]
    fn buffered_parse_enforces_limits_on_partial_input() {
        let limits = Limits {
            max_request_line: 64,
            max_header_line: 64,
            max_headers: 4,
            max_body: 16,
        };
        let long_line = format!("GET /{} HTTP", "x".repeat(200));
        assert_eq!(
            parse_buffered(long_line.as_bytes(), &limits)
                .unwrap_err()
                .status(),
            Some(431)
        );
        let big_body = "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        assert_eq!(
            parse_buffered(big_body.as_bytes(), &limits)
                .unwrap_err()
                .status(),
            Some(413)
        );
        let garbage = "NOT AN HTTP REQUEST LINE\r\n\r\n";
        assert_eq!(
            parse_buffered(garbage.as_bytes(), &limits)
                .unwrap_err()
                .status(),
            Some(400)
        );
    }
}

//! The gateway server: a thread-per-connection pool over a `TcpListener`
//! exposing the [`TuningService`] as a JSON API.
//!
//! ## Endpoints
//!
//! | method & path        | meaning                                          |
//! |----------------------|--------------------------------------------------|
//! | `POST /v1/jobs`      | submit a [`JobRequestWire`]; `202` + job id. With `?wait=1`, block and return the plan (`200`). |
//! | `GET /v1/jobs/{id}`  | job status: `pending`, `done` (plan + source) or `failed` |
//! | `GET /v1/metrics`    | [`MetricsBody`] JSON by default; the full Prometheus text exposition with `?format=prometheus` or `Accept: text/plain` |
//! | `GET /v1/debug/slowest` | [`SlowestBody`]: the N slowest completed job traces, stage by stage |
//! | `GET /healthz`       | liveness + drain flag                            |
//!
//! ## Error mapping
//!
//! | condition                               | status |
//! |-----------------------------------------|--------|
//! | malformed HTTP or JSON                  | 400    |
//! | unknown path / job id                   | 404    |
//! | known path, wrong method                | 405    |
//! | body over the configured bound          | 413    |
//! | well-formed but invalid job / no plan   | 422    |
//! | per-tenant admission rejection          | 429    |
//! | oversized request head                  | 431    |
//! | unsupported HTTP feature                | 501    |
//! | queue full, draining, or shut down      | 503    |
//!
//! ## Threading and drain
//!
//! One acceptor thread hands sockets to a fixed pool of connection workers
//! over a bounded channel (overflow answers `503` and closes — shedding at
//! the door mirrors the service's own admission control). Each worker owns
//! its connection for the keep-alive duration; pipelined requests are served
//! in order from the buffered reader. [`Gateway::shutdown`] drains
//! gracefully: the acceptor stops, in-flight requests finish (their
//! responses carry `Connection: close`), idle keep-alive connections expire
//! via the read timeout, and only then do the pool threads join.

use crate::http::{read_request, write_response, Limits, Request, RequestError, Response};
use crate::metrics::{Endpoint, GatewayMetrics};
use crate::wire::{
    ErrorBody, HealthBody, JobBody, JobRequestWire, MetricsBody, SlowestBody, SubmittedBody,
    TraceBody,
};
use crowdtune_obs::Counter;
use crowdtune_serve::{
    AdmissionError, HealthState, JobHandle, ServeError, ServedPlan, TuningService,
};
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing and bounds of the gateway.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Connection-worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Accepted-but-unclaimed connections the acceptor may queue before
    /// shedding with `503`.
    pub connection_backlog: usize,
    /// HTTP parse bounds (request line, headers, body).
    pub limits: Limits,
    /// Socket read timeout: how long an idle keep-alive connection may hold
    /// a pool thread, and the bound on a drain waiting for idle clients.
    pub keep_alive_timeout: Duration,
    /// Total wall-clock bound on receiving one request (head **and** body).
    /// The per-read keep-alive timeout resets on every byte, so without
    /// this a client trickling one byte per interval would pin a pool
    /// thread indefinitely; the deadline closes such connections.
    pub request_deadline: Duration,
    /// Completed jobs retained for `GET /v1/jobs/{id}` (oldest evicted).
    /// Also bounds never-polled async submissions: past the cap the oldest
    /// pending entry is resolved into the retained set if its worker has
    /// answered, or dropped (its id then answers 404) if not.
    pub max_completed_jobs: usize,
    /// Largest job accepted over the wire, in total repetition slots.
    pub max_job_slots: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 8,
            connection_backlog: 64,
            limits: Limits::default(),
            keep_alive_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            max_completed_jobs: 4096,
            max_job_slots: 1_000_000,
        }
    }
}

/// One tracked job: still in flight, or its retained rendered outcome.
enum JobSlot {
    Pending(JobHandle),
    Done(Arc<JobBody>),
}

/// Jobs submitted asynchronously, keyed by service job id. Completed
/// outcomes are retained (bounded, FIFO-evicted) so clients can poll after
/// completion. Pending entries are bounded too: clients that fire and
/// forget must not grow the registry, so past the cap the oldest pending
/// entry is reaped — resolved into the retained set if its worker already
/// answered, dropped (404 from then on) if not.
struct JobRegistry {
    slots: HashMap<u64, JobSlot>,
    completed_order: VecDeque<u64>,
    /// Pending ids in insertion order. May contain stale ids whose slot has
    /// since transitioned to `Done` (or been evicted); reaping skips those.
    pending_order: VecDeque<u64>,
    max_completed: usize,
}

impl JobRegistry {
    fn store_done(&mut self, job_id: u64, body: JobBody) -> Arc<JobBody> {
        let body = Arc::new(body);
        let was_done = matches!(self.slots.get(&job_id), Some(JobSlot::Done(_)));
        self.slots.insert(job_id, JobSlot::Done(body.clone()));
        if !was_done {
            self.completed_order.push_back(job_id);
        }
        while self.completed_order.len() > self.max_completed {
            if let Some(evicted) = self.completed_order.pop_front() {
                self.slots.remove(&evicted);
            }
        }
        body
    }

    fn store_pending(&mut self, job_id: u64, handle: JobHandle) {
        self.slots.insert(job_id, JobSlot::Pending(handle));
        self.pending_order.push_back(job_id);
        // Reap never-polled submissions past the cap (stale ids — already
        // polled to completion — just pop off).
        while self.pending_order.len() > self.max_completed {
            let Some(oldest) = self.pending_order.pop_front() else {
                break;
            };
            if !matches!(self.slots.get(&oldest), Some(JobSlot::Pending(_))) {
                continue; // stale: resolved via GET earlier
            }
            let Some(JobSlot::Pending(handle)) = self.slots.remove(&oldest) else {
                continue;
            };
            if let Some(outcome) = handle.try_result() {
                self.store_done(oldest, outcome_body(oldest, outcome));
            }
            // Still in flight: the handle is dropped and the id answers 404
            // from now on — the bound wins over fire-and-forget clients.
        }
    }
}

struct GatewayState {
    service: Arc<TuningService>,
    jobs: Mutex<JobRegistry>,
    draining: AtomicBool,
    config: GatewayConfig,
    metrics: GatewayMetrics,
}

/// The running gateway. Dropping it (or calling [`Gateway::shutdown`])
/// drains connections and joins every thread; the wrapped service is left
/// running and untouched.
pub struct Gateway {
    addr: SocketAddr,
    state: Arc<GatewayState>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Gateway {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back with
    /// [`Gateway::local_addr`]) and starts the acceptor and worker pool.
    pub fn start(
        service: Arc<TuningService>,
        addr: impl ToSocketAddrs,
        config: GatewayConfig,
    ) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Gateway cells live in the service's registry: one scrape covers
        // the whole process, and a second gateway on the same service
        // shares cells via the registry's get-or-create semantics.
        let metrics = GatewayMetrics::new(&service.registry());
        let state = Arc::new(GatewayState {
            service,
            jobs: Mutex::new(JobRegistry {
                slots: HashMap::new(),
                completed_order: VecDeque::new(),
                pending_order: VecDeque::new(),
                max_completed: config.max_completed_jobs.max(1),
            }),
            draining: AtomicBool::new(false),
            config,
            metrics,
        });
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.connection_backlog.max(1));
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let state = state.clone();
                let conn_rx = conn_rx.clone();
                std::thread::Builder::new()
                    .name(format!("gateway-conn-{index}"))
                    .spawn(move || connection_worker(&state, &conn_rx))
                    .expect("spawn gateway worker")
            })
            .collect();
        let acceptor = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("gateway-accept".to_owned())
                .spawn(move || accept_loop(&state, &listener, &conn_tx))
                .expect("spawn gateway acceptor")
        };
        Ok(Gateway {
            addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the gateway has begun draining.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, finish in-flight requests (responses
    /// carry `Connection: close`), wait out idle keep-alive connections
    /// (bounded by [`GatewayConfig::keep_alive_timeout`]) and join every
    /// thread. The wrapped [`TuningService`] keeps running — drain it
    /// separately via [`TuningService::begin_drain`]/`shutdown` when the
    /// whole process is going away.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        self.state.draining.store(true, Ordering::Release);
        // Wake the acceptor blocked in `accept` so it observes the flag; the
        // probe connection itself is served a clean close by a worker.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor dropped the sender side; workers exit once the queue
        // and their current connections drain.
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.drain_and_join();
        }
    }
}

fn accept_loop(
    state: &GatewayState,
    listener: &TcpListener,
    conn_tx: &mpsc::SyncSender<TcpStream>,
) {
    loop {
        let accepted = listener.accept();
        if state.draining.load(Ordering::Acquire) {
            return; // drops conn_tx: workers drain and exit
        }
        let Ok((stream, _peer)) = accepted else {
            // Transient accept failures (e.g. aborted handshakes) are not
            // fatal to the listener.
            continue;
        };
        match conn_tx.try_send(stream) {
            Ok(()) => state.metrics.connections_accepted.inc(),
            Err(mpsc::TrySendError::Full(mut stream)) => {
                // Every pool thread busy and the hand-off queue full: shed at
                // the door like the service's admission control does. Bound
                // the write so a non-reading client cannot stall the
                // acceptor.
                state.metrics.connections_shed.inc();
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let body = error_response(
                    503,
                    ErrorBody::new("overloaded", "all gateway connections are busy"),
                );
                if let Ok(sent) = write_response(&mut stream, &body, false) {
                    state.metrics.bytes_out.add(sent as u64);
                }
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return,
        }
    }
}

fn connection_worker(state: &GatewayState, conn_rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        let stream = {
            let rx = conn_rx.lock().expect("gateway connection queue poisoned");
            rx.recv()
        };
        match stream {
            Ok(stream) => handle_connection(state, stream),
            Err(_) => return, // acceptor gone and queue drained
        }
    }
}

/// The read half of a connection with a total per-request deadline. The
/// socket read timeout alone resets on every byte — a client trickling one
/// byte per interval would never trip it — so each read additionally checks
/// (and shrinks the socket timeout toward) a wall-clock deadline armed at
/// the start of every request.
struct DeadlineStream {
    stream: TcpStream,
    keep_alive_timeout: Duration,
    deadline: std::cell::Cell<Option<std::time::Instant>>,
    /// Ingress accounting: every byte read off the socket.
    bytes_in: Counter,
}

impl std::io::Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline.get() {
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|r| !r.is_zero())
            else {
                return Err(std::io::ErrorKind::TimedOut.into());
            };
            let _ = self
                .stream
                .set_read_timeout(Some(remaining.min(self.keep_alive_timeout)));
        }
        let n = self.stream.read(buf)?;
        self.bytes_in.add(n as u64);
        Ok(n)
    }
}

/// Serves one connection for its keep-alive lifetime.
fn handle_connection(state: &GatewayState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.keep_alive_timeout));
    // Writes get the same bound: a client that stops *reading* would
    // otherwise block `write_all` forever once the kernel send buffer
    // fills — the mirror image of the trickled-read attack.
    let _ = stream.set_write_timeout(Some(state.config.keep_alive_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(DeadlineStream {
        stream: read_half,
        keep_alive_timeout: state.config.keep_alive_timeout,
        deadline: std::cell::Cell::new(None),
        bytes_in: state.metrics.bytes_in.clone(),
    });
    loop {
        // Arm the whole-request deadline. The idle wait for the first byte
        // counts against it too, but the (shorter) keep-alive timeout still
        // closes idle connections first.
        reader.get_ref().deadline.set(Some(
            std::time::Instant::now() + state.config.request_deadline,
        ));
        match read_request(&mut reader, &state.config.limits) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => {
                let endpoint = endpoint_of(&request);
                let started = std::time::Instant::now();
                let response = route(state, &request);
                let nanos = started.elapsed().as_nanos() as u64;
                state.metrics.observe(endpoint, response.status, nanos);
                // Draining closes after the in-flight response; so does an
                // explicit client `Connection: close`.
                let keep_alive = request.keep_alive && !state.draining.load(Ordering::Acquire);
                match write_response(&mut stream, &response, keep_alive) {
                    Ok(sent) => state.metrics.bytes_out.add(sent as u64),
                    Err(_) => return,
                }
                if !keep_alive {
                    return;
                }
            }
            Err(error) => {
                // Malformed/oversized input: answer the mapped 4xx/5xx and
                // close — framing can no longer be trusted. Transport
                // failures (torn socket, idle timeout) just close.
                state.metrics.request_failed(&error);
                if let Some(status) = error.status() {
                    let body = error_response(status, request_error_body(&error));
                    if let Ok(sent) = write_response(&mut stream, &body, false) {
                        state.metrics.bytes_out.add(sent as u64);
                    }
                }
                return;
            }
        }
    }
}

/// Classifies a request for the `endpoint` metric label, mirroring the
/// [`route`] table. Requests no route will claim (404s, wrong methods,
/// unparseable job ids) fold into `other` so the label set stays bounded
/// whatever clients throw at the socket.
fn endpoint_of(request: &Request) -> Endpoint {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => Endpoint::PostJobs,
        ("GET", "/v1/metrics") => Endpoint::GetMetrics,
        ("GET", "/healthz") => Endpoint::GetHealthz,
        ("GET", "/v1/debug/slowest") => Endpoint::GetDebugSlowest,
        ("GET", path)
            if path
                .strip_prefix("/v1/jobs/")
                .is_some_and(|id| id.parse::<u64>().is_ok()) =>
        {
            Endpoint::GetJob
        }
        _ => Endpoint::Other,
    }
}

fn request_error_body(error: &RequestError) -> ErrorBody {
    let code = match error {
        RequestError::Malformed(_) => "bad_request",
        RequestError::HeadersTooLarge => "headers_too_large",
        RequestError::BodyTooLarge { .. } => "body_too_large",
        RequestError::Unsupported(_) => "unsupported",
        RequestError::Io(_) => "transport",
    };
    ErrorBody::new(code, error.to_string())
}

fn json_response<T: serde::Serialize>(status: u16, body: &T) -> Response {
    match serde_json::to_string(body) {
        Ok(text) => Response::json(status, text),
        Err(_) => Response::json(
            500,
            "{\"error\":\"render\",\"detail\":\"response serialization failed\"}".to_owned(),
        ),
    }
}

fn error_response(status: u16, body: ErrorBody) -> Response {
    json_response(status, &body)
}

/// Dispatches one parsed request to its handler. Known paths with the
/// wrong method answer 405; unknown paths (including unparseable job ids)
/// answer 404.
fn route(state: &GatewayState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => post_job(state, request),
        ("GET", "/v1/metrics") => get_metrics(state, request),
        ("GET", "/v1/debug/slowest") => get_slowest(state),
        ("GET", "/healthz") => get_health(state),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            match path["/v1/jobs/".len()..].parse::<u64>() {
                Ok(id) => get_job(state, id),
                Err(_) => error_response(
                    404,
                    ErrorBody::new(
                        "not_found",
                        format!("not a job id: {:?}", &path["/v1/jobs/".len()..]),
                    ),
                ),
            }
        }
        (_, path)
            if path == "/v1/jobs"
                || path == "/v1/metrics"
                || path == "/v1/debug/slowest"
                || path == "/healthz"
                || path.starts_with("/v1/jobs/") =>
        {
            error_response(
                405,
                ErrorBody::new(
                    "method_not_allowed",
                    format!("{} is not supported on {}", request.method, request.path),
                ),
            )
        }
        _ => not_found(request),
    }
}

fn not_found(request: &Request) -> Response {
    error_response(
        404,
        ErrorBody::new("not_found", format!("no route for {}", request.path)),
    )
}

/// Maps a submission failure to its response. Per-tenant admission is the
/// client's fault (429, back off per tenant); global capacity and drain are
/// the service's state (503, retry elsewhere/later).
fn serve_error_response(error: &ServeError) -> Response {
    match error {
        ServeError::Admission(AdmissionError::TenantOverLimit { limit }) => error_response(
            429,
            ErrorBody::new(
                "tenant_over_limit",
                format!("tenant exceeded its pending-job limit of {limit}"),
            ),
        ),
        ServeError::Admission(AdmissionError::QueueFull { limit }) => error_response(
            503,
            ErrorBody::new(
                "queue_full",
                format!("service queue is full ({limit} jobs pending)"),
            ),
        ),
        ServeError::Admission(AdmissionError::Closed) => error_response(
            503,
            ErrorBody::new("draining", "service is draining; resubmit elsewhere"),
        ),
        ServeError::Tuning(e) => {
            error_response(422, ErrorBody::new("tuning_failed", e.to_string()))
        }
        ServeError::WorkerGone => error_response(
            503,
            ErrorBody::new("shutdown", "service stopped before the job completed"),
        ),
        ServeError::WorkerPanic { .. } => {
            error_response(500, ErrorBody::new("worker_panic", error.to_string()))
        }
        ServeError::WorkerLost => {
            error_response(500, ErrorBody::new("worker_lost", error.to_string()))
        }
        ServeError::Store(e) => error_response(500, ErrorBody::new("store", e.to_string())),
    }
}

fn post_job(state: &GatewayState, request: &Request) -> Response {
    if request.body.is_empty() {
        return error_response(
            400,
            ErrorBody::new("bad_request", "POST /v1/jobs requires a JSON body"),
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return error_response(400, ErrorBody::new("bad_request", "body is not UTF-8"));
    };
    let wire: JobRequestWire = match serde_json::from_str(text) {
        Ok(wire) => wire,
        Err(e) => {
            return error_response(
                400,
                ErrorBody::new("bad_request", format!("invalid job JSON: {e}")),
            )
        }
    };
    let job = match wire.to_request(state.config.max_job_slots) {
        Ok(job) => job,
        Err(e) => return error_response(422, ErrorBody::new("invalid_job", e.to_string())),
    };
    let wait = matches!(request.query_param("wait"), Some("1") | Some("true"));
    let handle = match state.service.submit(job) {
        Ok(handle) => handle,
        Err(e) => return serve_error_response(&e),
    };
    let job_id = handle.job_id;
    if wait {
        // Synchronous mode: resolve inline (thread-per-connection makes the
        // block honest) and retain the outcome for later GETs too. The body
        // is built once and shared between the response and the registry.
        let outcome = handle.wait();
        let error = match &outcome {
            Ok(_) => None,
            Err(e) => Some(serve_error_response(e)),
        };
        let body = outcome_body(job_id, outcome);
        let mut jobs = state.jobs.lock().expect("gateway job registry poisoned");
        let body = jobs.store_done(job_id, body);
        drop(jobs);
        match error {
            Some(response) => response,
            None => json_response(200, &*body),
        }
    } else {
        let mut jobs = state.jobs.lock().expect("gateway job registry poisoned");
        jobs.store_pending(job_id, handle);
        drop(jobs);
        json_response(
            202,
            &SubmittedBody {
                job_id,
                status: "pending".to_owned(),
            },
        )
    }
}

/// Renders a job outcome into the body retained for `GET /v1/jobs/{id}`.
/// Failures keep the job-status schema (pollers see `status: "failed"` with
/// the same error codes the synchronous path uses).
fn outcome_body(job_id: u64, outcome: Result<ServedPlan, ServeError>) -> JobBody {
    match outcome {
        Ok(served) => JobBody::done(&served),
        Err(e) => {
            let code = match &e {
                ServeError::Tuning(_) => "tuning_failed",
                ServeError::Admission(_) => "admission",
                ServeError::WorkerGone => "shutdown",
                ServeError::WorkerPanic { .. } => "worker_panic",
                ServeError::WorkerLost => "worker_lost",
                ServeError::Store(_) => "store",
            };
            JobBody::failed(job_id, ErrorBody::new(code, e.to_string()))
        }
    }
}

fn get_job(state: &GatewayState, job_id: u64) -> Response {
    let mut jobs = state.jobs.lock().expect("gateway job registry poisoned");
    match jobs.slots.get(&job_id) {
        None => error_response(
            404,
            ErrorBody::new("not_found", format!("no such job: {job_id}")),
        ),
        Some(JobSlot::Done(body)) => {
            let body = body.clone();
            drop(jobs);
            json_response(200, &*body)
        }
        Some(JobSlot::Pending(handle)) => match handle.try_result() {
            None => json_response(200, &JobBody::pending(job_id)),
            Some(outcome) => {
                let body = jobs.store_done(job_id, outcome_body(job_id, outcome));
                drop(jobs);
                json_response(200, &*body)
            }
        },
    }
}

/// `GET /v1/metrics`, content-negotiated: the JSON [`MetricsBody`] snapshot
/// by default (wire back-compat), the full Prometheus text exposition when
/// asked for via `?format=prometheus` or `Accept: text/plain`. An explicit
/// `format` query parameter outranks the `Accept` header.
fn get_metrics(state: &GatewayState, request: &Request) -> Response {
    let prometheus = match request.query_param("format") {
        Some(format) => format.eq_ignore_ascii_case("prometheus"),
        None => request
            .header("accept")
            .is_some_and(|accept| accept.contains("text/plain")),
    };
    if prometheus {
        Response::text(
            200,
            "text/plain; version=0.0.4",
            state.service.render_prometheus(),
        )
    } else {
        json_response(200, &MetricsBody::from_status(&state.service.status()))
    }
}

/// `GET /v1/debug/slowest`: the retained ring of slowest completed job
/// traces, slowest first, with per-stage timings in seconds.
fn get_slowest(state: &GatewayState) -> Response {
    let traces: Vec<TraceBody> = state
        .service
        .slowest_traces()
        .iter()
        .map(TraceBody::from_trace)
        .collect();
    json_response(200, &SlowestBody { traces })
}

/// `GET /healthz`: the service-wide health state machine. `healthy` and
/// `degraded` answer 200 (a degraded service still serves bit-correct plans
/// — load balancers should keep routing to it), `draining` answers 503 so
/// probes take the instance out of rotation. The gateway's own drain (its
/// listener is closing) outranks whatever the service reports.
fn get_health(state: &GatewayState) -> Response {
    let draining = state.draining.load(Ordering::Acquire) || state.service.is_draining();
    let health = if draining {
        HealthState::Draining
    } else {
        state.service.health()
    };
    let status = match health {
        HealthState::Draining => 503,
        _ => 200,
    };
    json_response(
        status,
        &HealthBody {
            status: health.label().to_owned(),
            reasons: health
                .reasons()
                .iter()
                .map(|reason| reason.as_str().to_owned())
                .collect(),
            draining,
        },
    )
}

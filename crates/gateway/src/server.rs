//! The gateway server: an event-driven reactor over non-blocking sockets
//! exposing the [`TuningService`] as a JSON API.
//!
//! ## Endpoints
//!
//! | method & path           | meaning                                       |
//! |-------------------------|-----------------------------------------------|
//! | `POST /v1/jobs`         | submit a [`JobRequestWire`]; `202` + job id. With `?wait=1`, the response is held until the plan is ready (`200`) — without parking a thread. |
//! | `GET /v1/jobs/{id}`     | job status: `pending`, `done` (plan + source) or `failed` |
//! | `DELETE /v1/jobs/{id}`  | drop a retained/pending result: `204` once, `404` after |
//! | `GET /v1/metrics`       | [`MetricsBody`] JSON by default; the full Prometheus text exposition with `?format=prometheus` or `Accept: text/plain` |
//! | `GET /v1/debug/slowest` | [`SlowestBody`]: the N slowest completed job traces, stage by stage |
//! | `GET /v1/debug/traces`  | [`TracesBody`]: sampled span trees, newest first; filters `tenant`, `market`, `scenario`, `status`, `sampled`, `min_duration_ms` |
//! | `GET /v1/debug/traces/{trace_id}` | [`TraceTreeBody`]: one trace's full span tree by 32-hex trace id |
//! | `GET /v1/debug/logs`    | [`LogsBody`]: the structured log ring; filters `level`, `limit` |
//! | `GET /healthz`          | liveness + drain flag                         |
//!
//! ## Causal tracing
//!
//! `POST /v1/jobs` participates in W3C Trace Context: a valid `traceparent`
//! request header joins the submit to the caller's trace (invalid headers
//! are counted and ignored), and every submit response echoes `traceparent`
//! so clients learn minted ids. The gateway records `gateway.parse`,
//! `gateway.auth`, `gateway.quota` and `gateway.dispatch` spans under the
//! request root; the serve layer appends queue wait, solve and store
//! persist. Gateway-refused submits (4xx/5xx) mark the trace errored so the
//! tail sampler always keeps them.
//!
//! ## Error mapping
//!
//! | condition                               | status |
//! |-----------------------------------------|--------|
//! | malformed HTTP or JSON                  | 400    |
//! | missing or unknown API key              | 401    |
//! | body tenant contradicts the key's       | 403    |
//! | unknown path / job id                   | 404    |
//! | known path, wrong method                | 405    |
//! | body over the configured bound          | 413    |
//! | well-formed but invalid job / no plan   | 422    |
//! | per-tenant admission or request quota   | 429    |
//! | oversized request head                  | 431    |
//! | unsupported HTTP feature                | 501    |
//! | queue full, connection cap, draining    | 503    |
//!
//! Quota 429s carry a `Retry-After` header and the code `quota_exceeded`,
//! distinct from the queue-depth `tenant_over_limit` 429.
//!
//! ## The reactor
//!
//! Each reactor thread owns a readiness poller (the `reactor` module), the
//! listener, and every connection it accepted. A connection is a small state
//! machine — reading (accumulate + incrementally parse), dispatched (job
//! handed to the tuner pool), then writing from a buffer — driven entirely
//! by readiness events and a timer heap, so **idle keep-alive connections
//! cost a registration, not a thread**: tens of thousands of idle clients
//! are held by `reactors + tuner` threads total.
//!
//! `?wait=1` submits never park the reactor: the job goes to the tuner pool
//! with a completion hook ([`TuningService::submit_with_notify`]) that wakes
//! the owning reactor when the outcome is readable, and the response is
//! rendered then. Pipelined requests behind a dispatched one wait in the
//! read buffer so responses keep request order.
//!
//! Request deadlines are wall-clock timers armed at the first byte of every
//! request (a trickling client cannot pin anything); the same timer wheel
//! bounds idle keep-alive lifetimes and stalled response writes. Graceful
//! drain stops accepting, closes idle connections, lets in-flight requests
//! (including dispatched jobs) finish with `Connection: close`, and bounds
//! the whole farewell by the configured deadlines.

use crate::auth::HashedKeys;
use crate::http::{
    parse_buffered, render_response, write_response, Limits, ParsedRequest, Request, RequestError,
    Response,
};
use crate::metrics::{AuthReject, Endpoint, GatewayMetrics};
use crate::reactor::{waker, Interest, PollEvent, Poller, WakeReceiver, Waker};
use crate::wire::{
    ErrorBody, HealthBody, JobBody, JobRequestWire, LogRecordBody, LogsBody, MetricsBody,
    SlowestBody, SubmittedBody, TraceBody, TraceSummaryBody, TraceTreeBody, TracesBody,
};
use crowdtune_obs::span::enter_span;
use crowdtune_obs::{
    ActiveTrace, AttrValue, LogLevel, SpanStatus, StoredTrace, TraceContext, TraceId,
};
use crowdtune_serve::{
    AdmissionError, HealthState, JobHandle, ServeError, ServedPlan, TuningService,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The authenticated-principal policy: how `POST /v1/jobs` resolves the
/// tenant a job is billed and admission-controlled under.
///
/// With a key configured, clients authenticate with `Authorization: Bearer
/// <key>` or `X-Api-Key: <key>` and the tenant comes from this map — the
/// body's `tenant` field may be omitted, and if present it must agree (403
/// otherwise). Requests with an unknown key are refused 401 regardless of
/// mode. Requests with *no* key fall back to the legacy self-declared body
/// tenant only while [`AuthConfig::allow_body_tenant`] is set.
#[derive(Debug, Clone)]
pub struct AuthConfig {
    /// API key → tenant. Empty map + `allow_body_tenant` = the pre-auth
    /// contract, unchanged. The plaintext map is **consumed at startup**:
    /// [`Gateway::start`] folds it into salted iterated digests
    /// ([`crate::auth::HashedKeys`]) and clears this field, so a running
    /// gateway can verify keys but never reveal them.
    pub keys: HashMap<String, String>,
    /// Accept keyless submits that self-declare a body tenant (legacy
    /// wire contract). Defaults to `true` for back-compat; production
    /// deployments and the loadgen turn it off.
    pub allow_body_tenant: bool,
}

impl Default for AuthConfig {
    fn default() -> Self {
        AuthConfig {
            keys: HashMap::new(),
            allow_body_tenant: true,
        }
    }
}

/// Per-tenant request quota: a token bucket refilled continuously at
/// [`QuotaConfig::requests_per_sec`] up to [`QuotaConfig::burst`]. Each
/// `POST /v1/jobs` spends one token; an empty bucket answers 429
/// `quota_exceeded` with a `Retry-After` header. This prices *request
/// arrival rate* at the door, upstream of (and distinct from) the queue's
/// depth-based `tenant_over_limit` admission control.
#[derive(Debug, Clone, Copy)]
pub struct QuotaConfig {
    /// Sustained submits per second per tenant.
    pub requests_per_sec: f64,
    /// Bucket capacity: the burst a quiet tenant may spend at once.
    pub burst: f64,
}

/// Sizing and bounds of the gateway.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Reactor (event-loop) threads. Each owns its accepted connections;
    /// one is plenty below ~50k req/s — the tuner pool does the real work.
    pub reactors: usize,
    /// Connections held concurrently across all reactors; the door sheds
    /// `503` above it (mirrors the service's own admission control).
    pub max_connections: usize,
    /// HTTP parse bounds (request line, headers, body).
    pub limits: Limits,
    /// How long an idle keep-alive connection stays registered, and the
    /// bound on a stalled response write.
    pub keep_alive_timeout: Duration,
    /// Total wall-clock bound on receiving one request (head **and**
    /// body), armed at its first byte — a client trickling one byte per
    /// interval is closed at the deadline.
    pub request_deadline: Duration,
    /// Completed jobs retained for `GET /v1/jobs/{id}` (oldest evicted).
    /// Also bounds never-polled async submissions: past the cap the oldest
    /// pending entry is resolved into the retained set if its worker has
    /// answered, or dropped (its id then answers 404) if not.
    pub max_completed_jobs: usize,
    /// Retention TTL for completed outcomes: expired results answer 404
    /// and count `jobs_expired_total`. `None` retains until the FIFO cap
    /// or an explicit `DELETE` evicts.
    pub result_ttl: Option<Duration>,
    /// Largest job accepted over the wire, in total repetition slots.
    pub max_job_slots: u64,
    /// Tenant resolution for submits.
    pub auth: AuthConfig,
    /// Per-tenant submit quota; `None` disables the bucket entirely.
    pub quota: Option<QuotaConfig>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            reactors: 1,
            max_connections: 8192,
            limits: Limits::default(),
            keep_alive_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            max_completed_jobs: 4096,
            result_ttl: None,
            max_job_slots: 1_000_000,
            auth: AuthConfig::default(),
            quota: None,
        }
    }
}

/// One tracked job: still in flight, or its retained rendered outcome.
enum JobSlot {
    Pending(JobHandle),
    Done {
        body: Arc<JobBody>,
        done_at: Instant,
    },
}

/// Jobs submitted over the wire, keyed by service job id. Completed
/// outcomes are retained (bounded FIFO, optional TTL, explicit `DELETE`) so
/// clients can poll after completion. Pending entries are bounded too:
/// clients that fire and forget must not grow the registry, so past the cap
/// the oldest pending entry is reaped — resolved into the retained set if
/// its worker already answered, dropped (404 from then on) if not.
struct JobRegistry {
    slots: HashMap<u64, JobSlot>,
    /// Done ids in completion order (== expiry order under a fixed TTL).
    /// May hold stale ids whose slot was deleted; sweeps skip those.
    completed_order: VecDeque<u64>,
    /// Pending ids in insertion order. May contain stale ids whose slot has
    /// since transitioned to `Done` (or been evicted); reaping skips those.
    pending_order: VecDeque<u64>,
    max_completed: usize,
    result_ttl: Option<Duration>,
    /// Live `Done` slots, mirrored into the `jobs_retained` gauge.
    done_count: usize,
    retained_gauge: crowdtune_obs::Gauge,
    expired_total: crowdtune_obs::Counter,
}

impl JobRegistry {
    /// Drops every retained outcome whose TTL has lapsed. `completed_order`
    /// is in completion order and the TTL is constant, so expiry stops at
    /// the first still-fresh entry.
    fn expire_stale(&mut self, now: Instant) {
        let Some(ttl) = self.result_ttl else { return };
        while let Some(&oldest) = self.completed_order.front() {
            match self.slots.get(&oldest) {
                Some(JobSlot::Done { done_at, .. }) => {
                    if now.duration_since(*done_at) < ttl {
                        break;
                    }
                    self.slots.remove(&oldest);
                    self.completed_order.pop_front();
                    self.done_count -= 1;
                    self.expired_total.inc();
                }
                // Deleted (or long since evicted) id: drop the stale entry.
                _ => {
                    self.completed_order.pop_front();
                }
            }
        }
        self.retained_gauge.set(self.done_count as i64);
    }

    fn store_done(&mut self, job_id: u64, body: JobBody) -> Arc<JobBody> {
        let now = Instant::now();
        self.expire_stale(now);
        let body = Arc::new(body);
        let was_done = matches!(self.slots.get(&job_id), Some(JobSlot::Done { .. }));
        self.slots.insert(
            job_id,
            JobSlot::Done {
                body: body.clone(),
                done_at: now,
            },
        );
        if !was_done {
            self.completed_order.push_back(job_id);
            self.done_count += 1;
        }
        while self.completed_order.len() > self.max_completed {
            if let Some(evicted) = self.completed_order.pop_front() {
                if self.slots.remove(&evicted).is_some() {
                    self.done_count -= 1;
                }
            }
        }
        self.retained_gauge.set(self.done_count as i64);
        body
    }

    fn store_pending(&mut self, job_id: u64, handle: JobHandle) {
        self.slots.insert(job_id, JobSlot::Pending(handle));
        self.pending_order.push_back(job_id);
        // Reap never-polled submissions past the cap (stale ids — already
        // polled to completion — just pop off).
        while self.pending_order.len() > self.max_completed {
            let Some(oldest) = self.pending_order.pop_front() else {
                break;
            };
            if !matches!(self.slots.get(&oldest), Some(JobSlot::Pending(_))) {
                continue; // stale: resolved via GET earlier
            }
            let Some(JobSlot::Pending(handle)) = self.slots.remove(&oldest) else {
                continue;
            };
            if let Some(outcome) = handle.try_result() {
                self.store_done(oldest, outcome_body(oldest, outcome));
            }
            // Still in flight: the handle is dropped and the id answers 404
            // from now on — the bound wins over fire-and-forget clients.
        }
    }

    /// `DELETE /v1/jobs/{id}`: drops the slot whatever its state. Returns
    /// whether anything was there (the 204-vs-404 decision). Stale ids left
    /// in the order queues are skipped by the sweeps.
    fn delete(&mut self, job_id: u64) -> bool {
        self.expire_stale(Instant::now());
        match self.slots.remove(&job_id) {
            Some(JobSlot::Done { .. }) => {
                self.done_count -= 1;
                self.retained_gauge.set(self.done_count as i64);
                true
            }
            Some(JobSlot::Pending(_)) => true,
            None => false,
        }
    }
}

struct GatewayState {
    service: Arc<TuningService>,
    jobs: Mutex<JobRegistry>,
    /// Configured API keys as salted iterated digests (the plaintext map in
    /// `config.auth` is consumed and cleared at startup).
    auth_keys: HashedKeys,
    draining: AtomicBool,
    /// Connections currently registered, across every reactor (the
    /// `max_connections` shed decision needs the global count).
    open_connections: AtomicUsize,
    /// Token buckets by tenant, lazily created on first submit.
    quota_buckets: Mutex<HashMap<String, TokenBucket>>,
    config: GatewayConfig,
    metrics: GatewayMetrics,
}

struct TokenBucket {
    tokens: f64,
    refilled_at: Instant,
}

/// Spends one token from `tenant`'s bucket, or reports how many whole
/// seconds until one accrues (the `Retry-After` value, at least 1).
fn try_take_token(state: &GatewayState, tenant: &str, quota: &QuotaConfig) -> Result<(), u64> {
    let rate = quota.requests_per_sec.max(1e-9);
    let burst = quota.burst.max(1.0);
    let now = Instant::now();
    let mut buckets = state.quota_buckets.lock().expect("quota buckets poisoned");
    let bucket = buckets
        .entry(tenant.to_owned())
        .or_insert_with(|| TokenBucket {
            tokens: burst,
            refilled_at: now,
        });
    let elapsed = now.duration_since(bucket.refilled_at).as_secs_f64();
    bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
    bucket.refilled_at = now;
    if bucket.tokens >= 1.0 {
        bucket.tokens -= 1.0;
        Ok(())
    } else {
        Err(((1.0 - bucket.tokens) / rate).ceil().max(1.0) as u64)
    }
}

/// The running gateway. Dropping it (or calling [`Gateway::shutdown`])
/// drains connections and joins every reactor; the wrapped service is left
/// running and untouched.
pub struct Gateway {
    addr: SocketAddr,
    state: Arc<GatewayState>,
    reactors: Vec<JoinHandle<()>>,
    wakers: Vec<Waker>,
}

impl Gateway {
    /// Binds `addr` (use port 0 for an ephemeral port — read it back with
    /// [`Gateway::local_addr`]) and starts the reactor threads.
    pub fn start(
        service: Arc<TuningService>,
        addr: impl ToSocketAddrs,
        mut config: GatewayConfig,
    ) -> std::io::Result<Gateway> {
        // Fold the configured keys into salted digests and drop the
        // plaintext: from here on the process can verify credentials but
        // not reveal them.
        let auth_keys = HashedKeys::build(&config.auth.keys);
        config.auth.keys.clear();
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // Gateway cells live in the service's registry: one scrape covers
        // the whole process, and a second gateway on the same service
        // shares cells via the registry's get-or-create semantics.
        let metrics = GatewayMetrics::new(&service.registry());
        let registry = JobRegistry {
            slots: HashMap::new(),
            completed_order: VecDeque::new(),
            pending_order: VecDeque::new(),
            max_completed: config.max_completed_jobs.max(1),
            result_ttl: config.result_ttl,
            done_count: 0,
            retained_gauge: metrics.jobs_retained.clone(),
            expired_total: metrics.jobs_expired.clone(),
        };
        let state = Arc::new(GatewayState {
            service,
            jobs: Mutex::new(registry),
            auth_keys,
            draining: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            quota_buckets: Mutex::new(HashMap::new()),
            config,
            metrics,
        });
        let mut reactors = Vec::new();
        let mut wakers = Vec::new();
        for index in 0..state.config.reactors.max(1) {
            // Every reactor polls its own dup of the listening socket
            // (shared open file description — a connection is accepted by
            // exactly one of them).
            let listener = listener.try_clone()?;
            let (wake_tx, wake_rx) = waker()?;
            let mut reactor = Reactor::new(state.clone(), listener, wake_tx.clone(), wake_rx)?;
            wakers.push(wake_tx);
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("gateway-reactor-{index}"))
                    .spawn(move || reactor.run())
                    .expect("spawn gateway reactor"),
            );
        }
        Ok(Gateway {
            addr,
            state,
            reactors,
            wakers,
        })
    }

    /// The bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the gateway has begun draining.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::Acquire)
    }

    /// Graceful drain: stop accepting, close idle keep-alive connections,
    /// finish in-flight requests and dispatched jobs (responses carry
    /// `Connection: close`) and join every reactor, all bounded by the
    /// configured deadlines. The wrapped [`TuningService`] keeps running —
    /// drain it separately via [`TuningService::begin_drain`]/`shutdown`
    /// when the whole process is going away.
    pub fn shutdown(mut self) {
        self.drain_and_join();
    }

    fn drain_and_join(&mut self) {
        self.state.draining.store(true, Ordering::Release);
        for waker in &self.wakers {
            waker.wake();
        }
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        if !self.reactors.is_empty() {
            self.drain_and_join();
        }
    }
}

/// What a reactor's completion hooks write into: the tokens of connections
/// whose dispatched job finished, plus the waker that un-parks the poller.
struct ReactorShared {
    completions: Mutex<Vec<u64>>,
    waker: Waker,
}

const WAKER_TOKEN: u64 = 0;
const LISTENER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// Connection lifecycle. Writing is orthogonal (a non-empty write buffer),
/// so it is not a phase: a connection can be parsing request N+1 while
/// response N drains.
enum Phase {
    /// Between requests; the idle keep-alive deadline is armed.
    Idle,
    /// A request prefix sits in the read buffer; its deadline is armed.
    Reading,
    /// A `?wait=1` submit is with the tuner pool; parsing is paused so
    /// pipelined responses keep request order.
    Dispatched {
        handle: JobHandle,
        started: Instant,
        keep_alive: bool,
        /// Rendered `traceparent` to echo on the eventual response (the
        /// trace handle itself rides with the job through the serve layer).
        traceparent: Option<String>,
    },
}

struct Conn {
    stream: TcpStream,
    token: u64,
    /// Bumped whenever the armed deadline changes; stale timer-heap entries
    /// (older gen) are ignored on pop.
    gen: u64,
    deadline: Option<Instant>,
    phase: Phase,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Registered readiness, to skip no-op `modify` syscalls.
    interest: Interest,
    /// Close once the write buffer drains (draining, `Connection: close`,
    /// or a parse error that poisoned framing).
    close_after_write: bool,
    /// Stop reading (peer half-closed or framing poisoned).
    reads_done: bool,
}

impl Conn {
    fn pending_write(&self) -> bool {
        self.written < self.write_buf.len()
    }

    fn wanted_interest(&self) -> Interest {
        Interest {
            read: !self.reads_done && !matches!(self.phase, Phase::Dispatched { .. }),
            write: self.pending_write(),
        }
    }
}

struct Reactor {
    state: Arc<GatewayState>,
    poller: Poller,
    listener: TcpListener,
    wake_rx: WakeReceiver,
    shared: Arc<ReactorShared>,
    conns: HashMap<u64, Conn>,
    /// (deadline, token, gen) min-heap; entries are invalidated by gen.
    timers: BinaryHeap<Reverse<(Instant, u64, u64)>>,
    next_token: u64,
    /// Still registered for accept readiness (false once draining).
    accepting: bool,
    /// Hard bound on the whole drain, armed when draining is observed.
    drain_deadline: Option<Instant>,
    scratch: Vec<u8>,
}

impl Reactor {
    fn new(
        state: Arc<GatewayState>,
        listener: TcpListener,
        wake_tx: Waker,
        wake_rx: WakeReceiver,
    ) -> std::io::Result<Reactor> {
        let mut poller = Poller::new()?;
        poller.register(wake_rx.as_raw_fd(), WAKER_TOKEN, Interest::READ)?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        Ok(Reactor {
            state,
            poller,
            listener,
            wake_rx,
            shared: Arc::new(ReactorShared {
                completions: Mutex::new(Vec::new()),
                waker: wake_tx,
            }),
            conns: HashMap::new(),
            timers: BinaryHeap::new(),
            next_token: FIRST_CONN_TOKEN,
            accepting: true,
            drain_deadline: None,
            scratch: vec![0; 16 * 1024],
        })
    }

    fn run(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing poller cannot drive anything; bail rather than
                // spin. Connections close with the process.
                return;
            }
            let mut woken = false;
            for event in &events {
                match event.token {
                    WAKER_TOKEN => woken = true,
                    LISTENER_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, *event),
                }
            }
            if woken {
                self.wake_rx.drain();
            }
            self.complete_dispatches();
            self.fire_timers(Instant::now());
            if self.drain_tick() {
                return;
            }
        }
    }

    /// The poll timeout: the nearest timer (or drain bound), or park
    /// indefinitely when nothing is scheduled.
    fn next_timeout(&self) -> Option<Duration> {
        let mut next: Option<Instant> = self.timers.peek().map(|Reverse((when, _, _))| *when);
        if let Some(bound) = self.drain_deadline {
            next = Some(next.map_or(bound, |n| n.min(bound)));
        }
        next.map(|when| when.saturating_duration_since(Instant::now()))
    }

    /// Handles drain progression; returns true when the reactor is done.
    fn drain_tick(&mut self) -> bool {
        if !self.state.draining.load(Ordering::Acquire) {
            return false;
        }
        if self.accepting {
            // Drain just became visible: stop accepting and close every
            // connection with nothing in flight. In-flight phases (partial
            // request, dispatched job, undrained response) finish under
            // their own deadlines.
            self.accepting = false;
            let _ = self.poller.deregister(self.listener.as_raw_fd());
            self.drain_deadline = Some(
                Instant::now()
                    + self.state.config.keep_alive_timeout
                    + self.state.config.request_deadline,
            );
            let idle: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| {
                    matches!(c.phase, Phase::Idle) && !c.pending_write() && c.read_buf.is_empty()
                })
                .map(|(&t, _)| t)
                .collect();
            for token in idle {
                self.close_conn(token);
            }
        }
        if self.conns.is_empty() {
            return true;
        }
        if self.drain_deadline.is_some_and(|d| Instant::now() >= d) {
            // Farewell bound hit: force-close stragglers.
            let remaining: Vec<u64> = self.conns.keys().copied().collect();
            for token in remaining {
                self.close_conn(token);
            }
            return true;
        }
        false
    }

    fn accept_ready(&mut self) {
        if !self.accepting {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.take_connection(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Transient accept failures (aborted handshakes, fd
                // pressure) are not fatal to the listener.
                Err(_) => return,
            }
        }
    }

    fn take_connection(&mut self, stream: TcpStream) {
        let state = &self.state;
        if state.draining.load(Ordering::Acquire) {
            return; // raced a drain; the listener is about to deregister
        }
        let open = state.open_connections.load(Ordering::Relaxed);
        if open >= state.config.max_connections.max(1) {
            // Shed at the door like the service's admission control does.
            // The accepted socket is still blocking; bound the farewell
            // write so a non-reading client cannot stall the reactor.
            let mut stream = stream;
            state.metrics.connections_shed.inc();
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let body = error_response(
                503,
                ErrorBody::new("overloaded", "gateway is at its connection cap"),
            );
            if let Ok(sent) = write_response(&mut stream, &body, false) {
                state.metrics.bytes_out.add(sent as u64);
            }
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        state.open_connections.fetch_add(1, Ordering::Relaxed);
        state.metrics.connections_open.add(1);
        state.metrics.connections_accepted.inc();
        let mut conn = Conn {
            stream,
            token,
            gen: 0,
            deadline: None,
            phase: Phase::Idle,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            interest: Interest::READ,
            close_after_write: false,
            reads_done: false,
        };
        self.arm_deadline(&mut conn, Instant::now() + state.config.keep_alive_timeout);
        self.conns.insert(token, conn);
    }

    fn arm_deadline(&mut self, conn: &mut Conn, when: Instant) {
        conn.gen += 1;
        conn.deadline = Some(when);
        self.timers.push(Reverse((when, conn.token, conn.gen)));
    }

    fn clear_deadline(conn: &mut Conn) {
        conn.gen += 1;
        conn.deadline = None;
    }

    fn fire_timers(&mut self, now: Instant) {
        while let Some(Reverse((when, token, gen))) = self.timers.peek().copied() {
            if when > now {
                break;
            }
            self.timers.pop();
            let live = self
                .conns
                .get(&token)
                .is_some_and(|conn| conn.gen == gen && conn.deadline == Some(when));
            if live {
                // Whatever was armed — idle keep-alive, request deadline,
                // stalled write — expiry closes the connection.
                self.state.metrics.connections_timed_out.inc();
                self.close_conn(token);
            }
        }
    }

    /// Jobs whose completion hooks fired since the last pass: render their
    /// responses and resume pipelining.
    fn complete_dispatches(&mut self) {
        let tokens = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .expect("completion queue poisoned"),
        );
        for token in tokens {
            let Some(mut conn) = self.conns.remove(&token) else {
                continue; // connection closed while the job ran
            };
            let phase = std::mem::replace(&mut conn.phase, Phase::Idle);
            let Phase::Dispatched {
                handle,
                started,
                keep_alive,
                traceparent,
            } = phase
            else {
                conn.phase = phase; // spurious token; not dispatched
                self.conns.insert(token, conn);
                continue;
            };
            let job_id = handle.job_id;
            // The hook fires after the worker's send, so the outcome is
            // readable now; a dropped worker reads as `WorkerGone`.
            let outcome = handle.try_result().unwrap_or(Err(ServeError::WorkerGone));
            let error = match &outcome {
                Ok(_) => None,
                Err(e) => Some(serve_error_response(e)),
            };
            let body = outcome_body(job_id, outcome);
            let response = {
                let mut jobs = self
                    .state
                    .jobs
                    .lock()
                    .expect("gateway job registry poisoned");
                let body = jobs.store_done(job_id, body);
                match error {
                    Some(response) => response,
                    None => json_response(200, &*body),
                }
            };
            let response = match traceparent {
                Some(value) => response.with_header("traceparent", value),
                None => response,
            };
            let nanos = started.elapsed().as_nanos() as u64;
            self.state
                .metrics
                .observe(Endpoint::PostJobs, response.status, nanos);
            let keep_alive = keep_alive && !self.state.draining.load(Ordering::Acquire);
            self.queue_response(&mut conn, response, keep_alive);
            // Pipelined requests read before the dispatch are sitting in
            // the buffer with no readiness event to reparse them — resume
            // here.
            let mut alive = true;
            if !conn.close_after_write {
                alive = self.process_buffer(&mut conn);
            }
            let alive = alive && self.after_work(&mut conn);
            self.finish_event(token, conn, alive);
        }
    }

    fn conn_event(&mut self, token: u64, event: PollEvent) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return; // stale event for a just-closed connection
        };
        let mut alive = true;
        if event.writable && alive {
            alive = self.flush(&mut conn);
        }
        if event.readable && alive {
            alive = self.readable(&mut conn);
        }
        if event.closed && alive && !event.readable {
            // Pure error/hangup with nothing to read: the connection is
            // gone.
            alive = false;
        }
        if alive {
            alive = self.after_work(&mut conn);
        }
        self.finish_event(token, conn, alive);
    }

    /// Post-processing common to socket events and job completions:
    /// close-after-write resolution. Returns whether the connection stays.
    fn after_work(&mut self, conn: &mut Conn) -> bool {
        if !conn.pending_write() && conn.close_after_write {
            return false;
        }
        if !conn.pending_write() && conn.reads_done && matches!(conn.phase, Phase::Idle) {
            // Peer half-closed and nothing left to say.
            return false;
        }
        true
    }

    /// Reinserts a live connection (refreshing poller interest) or finishes
    /// closing it.
    fn finish_event(&mut self, token: u64, mut conn: Conn, alive: bool) {
        if !alive {
            self.release_conn(conn);
            return;
        }
        let wanted = conn.wanted_interest();
        if wanted != conn.interest {
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, wanted)
                .is_err()
            {
                self.release_conn(conn);
                return;
            }
            conn.interest = wanted;
        }
        self.conns.insert(token, conn);
    }

    /// Closes a connection still present in the map.
    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.release_conn(conn);
        }
    }

    /// Deregisters and accounts a connection on its way out. A dispatched
    /// job's handle moves to the registry so the outcome is retained for
    /// polling even though the submitting connection died.
    fn release_conn(&mut self, conn: Conn) {
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.state.open_connections.fetch_sub(1, Ordering::Relaxed);
        self.state.metrics.connections_open.add(-1);
        if let Phase::Dispatched { handle, .. } = conn.phase {
            let job_id = handle.job_id;
            self.state
                .jobs
                .lock()
                .expect("gateway job registry poisoned")
                .store_pending(job_id, handle);
        }
    }

    /// Drains readable bytes into the buffer and advances parsing. Returns
    /// whether the connection survives.
    fn readable(&mut self, conn: &mut Conn) -> bool {
        if conn.reads_done {
            return true;
        }
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.reads_done = true;
                    if !conn.read_buf.is_empty() || matches!(conn.phase, Phase::Reading) {
                        // Peer quit mid-request: framing is torn. No
                        // response can be framed; just close (flushing any
                        // queued earlier responses first).
                        conn.read_buf.clear();
                        conn.close_after_write = true;
                    }
                    break;
                }
                Ok(n) => {
                    self.state.metrics.bytes_in.add(n as u64);
                    conn.read_buf.extend_from_slice(&self.scratch[..n]);
                    if conn.read_buf.len() > 4 * 1024 * 1024 {
                        // Backstop: the parser bounds any *single* request
                        // well below this, so a buffer this deep means a
                        // pipelining flood behind a dispatched job. Stop
                        // reading until it drains (level-triggered
                        // readiness re-fires later).
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false, // torn transport
            }
        }
        self.process_buffer(conn)
    }

    /// Parses and serves as many complete pipelined requests as the buffer
    /// holds, stopping at a dispatch (ordering) or an incomplete tail.
    fn process_buffer(&mut self, conn: &mut Conn) -> bool {
        loop {
            if matches!(conn.phase, Phase::Dispatched { .. }) {
                return true; // resume once the job completes
            }
            if conn.read_buf.is_empty() {
                conn.phase = Phase::Idle;
                if conn.deadline.is_none() {
                    // Nothing armed (a request just completed): the idle
                    // keep-alive clock starts. A pending write's stall
                    // deadline, if armed, already covers the connection.
                    self.arm_deadline(conn, Instant::now() + self.state.config.keep_alive_timeout);
                }
                return true;
            }
            if matches!(conn.phase, Phase::Idle) {
                // First byte of a new request: arm its wall-clock deadline.
                conn.phase = Phase::Reading;
                self.arm_deadline(conn, Instant::now() + self.state.config.request_deadline);
            }
            match parse_buffered(&conn.read_buf, &self.state.config.limits) {
                Ok(ParsedRequest::Incomplete) => return true, // need more bytes
                Ok(ParsedRequest::Complete { request, consumed }) => {
                    conn.read_buf.drain(..consumed);
                    // The request is fully received: its receive deadline is
                    // done. Handler deadlines are the dispatch path's job.
                    Self::clear_deadline(conn);
                    conn.phase = Phase::Idle;
                    self.serve_request(conn, request);
                    if conn.close_after_write {
                        // `Connection: close` (or draining): later pipelined
                        // bytes get no responses.
                        conn.read_buf.clear();
                        conn.reads_done = true;
                        return true;
                    }
                }
                Err(error) => {
                    // Malformed/oversized input: answer the mapped 4xx/5xx
                    // and close — framing can no longer be trusted.
                    self.state.metrics.request_failed(&error);
                    conn.read_buf.clear();
                    conn.reads_done = true;
                    Self::clear_deadline(conn);
                    conn.phase = Phase::Idle;
                    if let Some(status) = error.status() {
                        let body = error_response(status, request_error_body(&error));
                        self.queue_response(conn, body, false);
                    } else {
                        return false;
                    }
                    return true;
                }
            }
        }
    }

    /// Routes one parsed request: everything but a `?wait=1` submit is
    /// answered inline; a waiting submit parks the *connection* (never a
    /// thread) in `Dispatched` until the tuner pool's completion hook fires.
    fn serve_request(&mut self, conn: &mut Conn, request: Request) {
        let endpoint = endpoint_of(&request);
        let started = Instant::now();
        let keep_alive = request.keep_alive && !self.state.draining.load(Ordering::Acquire);
        if endpoint == Endpoint::PostJobs {
            let shared = self.shared.clone();
            let token = conn.token;
            let notify = move || -> crowdtune_serve::CompletionNotify {
                Arc::new(move |_job_id| {
                    shared
                        .completions
                        .lock()
                        .expect("completion queue poisoned")
                        .push(token);
                    shared.waker.wake();
                })
            };
            match post_job(&self.state, &request, notify) {
                PostOutcome::Respond(response) => {
                    let nanos = started.elapsed().as_nanos() as u64;
                    self.state.metrics.observe(endpoint, response.status, nanos);
                    self.queue_response(conn, response, keep_alive);
                }
                PostOutcome::Dispatched {
                    handle,
                    traceparent,
                } => {
                    Self::clear_deadline(conn);
                    conn.phase = Phase::Dispatched {
                        handle,
                        started,
                        keep_alive,
                        traceparent,
                    };
                }
            }
        } else {
            let response = route(&self.state, &request);
            let nanos = started.elapsed().as_nanos() as u64;
            self.state.metrics.observe(endpoint, response.status, nanos);
            self.queue_response(conn, response, keep_alive);
        }
    }

    /// Renders a response into the write buffer and optimistically flushes.
    fn queue_response(&mut self, conn: &mut Conn, response: Response, keep_alive: bool) {
        let bytes = render_response(&response, keep_alive);
        if conn.written == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.written = 0;
        }
        conn.write_buf.extend_from_slice(&bytes);
        if !keep_alive {
            conn.close_after_write = true;
        }
        if !self.flush(conn) {
            // Transport died mid-write; drop what's left and let the
            // event path close us.
            conn.write_buf.clear();
            conn.written = 0;
            conn.close_after_write = true;
            conn.reads_done = true;
        } else if conn.pending_write() {
            // Kernel buffer full: bound the stall like the old write
            // timeout did.
            self.arm_deadline(conn, Instant::now() + self.state.config.keep_alive_timeout);
        }
    }

    /// Writes as much buffered response as the socket accepts. Returns
    /// whether the transport survives.
    fn flush(&mut self, conn: &mut Conn) -> bool {
        while conn.pending_write() {
            match conn.stream.write(&conn.write_buf[conn.written..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.written += n;
                    self.state.metrics.bytes_out.add(n as u64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.write_buf.capacity() > 64 * 1024 {
            conn.write_buf = Vec::new();
        } else {
            conn.write_buf.clear();
        }
        conn.written = 0;
        true
    }
}

/// Classifies a request for the `endpoint` metric label, mirroring the
/// [`route`] table. Requests no route will claim (404s, wrong methods,
/// unparseable job ids) fold into `other` so the label set stays bounded
/// whatever clients throw at the socket.
fn endpoint_of(request: &Request) -> Endpoint {
    let job_path = |path: &str| {
        path.strip_prefix("/v1/jobs/")
            .is_some_and(|id| id.parse::<u64>().is_ok())
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => Endpoint::PostJobs,
        ("GET", "/v1/metrics") => Endpoint::GetMetrics,
        ("GET", "/healthz") => Endpoint::GetHealthz,
        ("GET", "/v1/debug/slowest") => Endpoint::GetDebugSlowest,
        ("GET", "/v1/debug/traces") => Endpoint::GetDebugTraces,
        ("GET", path) if path.starts_with("/v1/debug/traces/") => Endpoint::GetDebugTraces,
        ("GET", "/v1/debug/logs") => Endpoint::GetDebugLogs,
        ("GET", path) if job_path(path) => Endpoint::GetJob,
        ("DELETE", path) if job_path(path) => Endpoint::DeleteJob,
        _ => Endpoint::Other,
    }
}

fn request_error_body(error: &RequestError) -> ErrorBody {
    let code = match error {
        RequestError::Malformed(_) => "bad_request",
        RequestError::HeadersTooLarge => "headers_too_large",
        RequestError::BodyTooLarge { .. } => "body_too_large",
        RequestError::Unsupported(_) => "unsupported",
        RequestError::Io(_) => "transport",
    };
    ErrorBody::new(code, error.to_string())
}

fn json_response<T: serde::Serialize>(status: u16, body: &T) -> Response {
    match serde_json::to_string(body) {
        Ok(text) => Response::json(status, text),
        Err(_) => Response::json(
            500,
            "{\"error\":\"render\",\"detail\":\"response serialization failed\"}".to_owned(),
        ),
    }
}

fn error_response(status: u16, body: ErrorBody) -> Response {
    json_response(status, &body)
}

/// Dispatches one parsed request to its handler. Known paths with the
/// wrong method answer 405; unknown paths (including unparseable job ids)
/// answer 404. `POST /v1/jobs` is routed by the reactor itself (it may
/// dispatch instead of respond) and never reaches this table.
fn route(state: &GatewayState, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/metrics") => get_metrics(state, request),
        ("GET", "/v1/debug/slowest") => get_slowest(state),
        ("GET", "/v1/debug/traces") => get_traces(state, request),
        ("GET", path) if path.starts_with("/v1/debug/traces/") => {
            get_trace(state, &path["/v1/debug/traces/".len()..])
        }
        ("GET", "/v1/debug/logs") => get_logs(state, request),
        ("GET", "/healthz") => get_health(state),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            match path["/v1/jobs/".len()..].parse::<u64>() {
                Ok(id) => get_job(state, id),
                Err(_) => error_response(
                    404,
                    ErrorBody::new(
                        "not_found",
                        format!("not a job id: {:?}", &path["/v1/jobs/".len()..]),
                    ),
                ),
            }
        }
        ("DELETE", path) if path.starts_with("/v1/jobs/") => {
            match path["/v1/jobs/".len()..].parse::<u64>() {
                Ok(id) => delete_job(state, id),
                Err(_) => error_response(
                    404,
                    ErrorBody::new(
                        "not_found",
                        format!("not a job id: {:?}", &path["/v1/jobs/".len()..]),
                    ),
                ),
            }
        }
        (_, path)
            if path == "/v1/jobs"
                || path == "/v1/metrics"
                || path == "/v1/debug/slowest"
                || path == "/v1/debug/traces"
                || path == "/v1/debug/logs"
                || path.starts_with("/v1/debug/traces/")
                || path == "/healthz"
                || path.starts_with("/v1/jobs/") =>
        {
            error_response(
                405,
                ErrorBody::new(
                    "method_not_allowed",
                    format!("{} is not supported on {}", request.method, request.path),
                ),
            )
        }
        _ => not_found(request),
    }
}

fn not_found(request: &Request) -> Response {
    error_response(
        404,
        ErrorBody::new("not_found", format!("no route for {}", request.path)),
    )
}

/// Maps a submission failure to its response. Per-tenant admission is the
/// client's fault (429, back off per tenant); global capacity and drain are
/// the service's state (503, retry elsewhere/later).
fn serve_error_response(error: &ServeError) -> Response {
    match error {
        ServeError::Admission(AdmissionError::TenantOverLimit { limit }) => error_response(
            429,
            ErrorBody::new(
                "tenant_over_limit",
                format!("tenant exceeded its pending-job limit of {limit}"),
            ),
        ),
        ServeError::Admission(AdmissionError::QueueFull { limit }) => error_response(
            503,
            ErrorBody::new(
                "queue_full",
                format!("service queue is full ({limit} jobs pending)"),
            ),
        ),
        ServeError::Admission(AdmissionError::Closed) => error_response(
            503,
            ErrorBody::new("draining", "service is draining; resubmit elsewhere"),
        ),
        ServeError::Tuning(e) => {
            error_response(422, ErrorBody::new("tuning_failed", e.to_string()))
        }
        ServeError::WorkerGone => error_response(
            503,
            ErrorBody::new("shutdown", "service stopped before the job completed"),
        ),
        ServeError::WorkerPanic { .. } => {
            error_response(500, ErrorBody::new("worker_panic", error.to_string()))
        }
        ServeError::WorkerLost => {
            error_response(500, ErrorBody::new("worker_lost", error.to_string()))
        }
        ServeError::Store(e) => error_response(500, ErrorBody::new("store", e.to_string())),
    }
}

/// How a `POST /v1/jobs` resolves: an immediate response, or a job parked
/// with the tuner pool (`?wait=1`) whose completion hook will wake the
/// reactor.
enum PostOutcome {
    Respond(Response),
    Dispatched {
        handle: JobHandle,
        /// Rendered `traceparent` to echo once the response exists.
        traceparent: Option<String>,
    },
}

/// Extracts the API key, if any: `Authorization: Bearer <key>` wins,
/// `X-Api-Key: <key>` is the curl-friendly fallback.
fn api_key(request: &Request) -> Option<&str> {
    if let Some(auth) = request.header("authorization") {
        let mut parts = auth.splitn(2, char::is_whitespace);
        let scheme = parts.next().unwrap_or("");
        if scheme.eq_ignore_ascii_case("bearer") {
            return Some(parts.next().unwrap_or("").trim());
        }
        // An Authorization header in a scheme we don't speak is not
        // silently ignored — that would fall through to the legacy path
        // and bill the self-declared tenant.
        return Some("");
    }
    request.header("x-api-key").map(str::trim)
}

/// Resolves the tenant a submit runs under, per [`AuthConfig`]. `Err` is
/// the finished 401/403 response.
fn resolve_tenant(
    state: &GatewayState,
    request: &Request,
    body_tenant: &str,
) -> Result<String, Response> {
    let auth = &state.config.auth;
    match api_key(request) {
        Some(key) => match state.auth_keys.tenant_for(key) {
            Some(tenant) => {
                if !body_tenant.is_empty() && body_tenant != tenant {
                    state.metrics.auth_rejected(AuthReject::TenantMismatch);
                    Err(error_response(
                        403,
                        ErrorBody::new(
                            "tenant_mismatch",
                            format!(
                                "the API key belongs to tenant {tenant:?}, not {body_tenant:?}"
                            ),
                        ),
                    ))
                } else {
                    Ok(tenant.to_owned())
                }
            }
            None => {
                state.metrics.auth_rejected(AuthReject::Unauthenticated);
                Err(error_response(
                    401,
                    ErrorBody::new("unauthenticated", "unknown API key"),
                ))
            }
        },
        None if auth.allow_body_tenant => Ok(body_tenant.to_owned()),
        None => {
            state.metrics.auth_rejected(AuthReject::Unauthenticated);
            Err(error_response(
                401,
                ErrorBody::new(
                    "unauthenticated",
                    "submit requires Authorization: Bearer <key> or X-Api-Key",
                ),
            ))
        }
    }
}

/// Records one gateway-side stage span at the request root (no-op when the
/// request is untraced).
fn gateway_span(trace: &Option<ActiveTrace>, name: &'static str, start_ns: Option<u64>, ok: bool) {
    if let (Some(active), Some(start_ns)) = (trace, start_ns) {
        let status = if ok {
            SpanStatus::Ok
        } else {
            SpanStatus::Error
        };
        active.span_with(name, None, start_ns, active.now_ns(), status, Vec::new());
    }
}

/// Finishes a gateway-answered submit: 4xx/5xx marks the trace errored (so
/// the tail sampler keeps it), and every response echoes `traceparent`.
fn finish_post(
    trace: &Option<ActiveTrace>,
    echo: &Option<String>,
    response: Response,
) -> PostOutcome {
    if response.status >= 400 {
        if let Some(active) = trace {
            active.mark_error();
        }
    }
    let response = match echo {
        Some(value) => response.with_header("traceparent", value.clone()),
        None => response,
    };
    PostOutcome::Respond(response)
}

fn post_job(
    state: &GatewayState,
    request: &Request,
    notify: impl FnOnce() -> crowdtune_serve::CompletionNotify,
) -> PostOutcome {
    // Trace context first: a valid `traceparent` joins the caller's trace;
    // an invalid one is counted and ignored (fresh ids, per W3C guidance).
    let context = request.header("traceparent").and_then(|header| {
        let parsed = TraceContext::parse_traceparent(header);
        if parsed.is_none() {
            state.metrics.traceparent_invalid.inc();
        }
        parsed
    });
    let trace = state
        .service
        .tracer()
        .map(|tracer| tracer.start_trace("http.request", context));
    // Logs emitted while this submit is handled carry the request's ids.
    let _log_scope = trace
        .as_ref()
        .map(|active| enter_span(active.trace_id(), active.root_span_id()));
    // The echoed header names the *root span* as parent, so a client that
    // keeps tracing downstream work parents it correctly.
    let echo = trace
        .as_ref()
        .map(|active| active.context(active.root_span_id()).render_traceparent());

    let parse_start = trace.as_ref().map(|active| active.now_ns());
    if request.body.is_empty() {
        gateway_span(&trace, "gateway.parse", parse_start, false);
        return finish_post(
            &trace,
            &echo,
            error_response(
                400,
                ErrorBody::new("bad_request", "POST /v1/jobs requires a JSON body"),
            ),
        );
    }
    let Ok(text) = std::str::from_utf8(&request.body) else {
        gateway_span(&trace, "gateway.parse", parse_start, false);
        return finish_post(
            &trace,
            &echo,
            error_response(400, ErrorBody::new("bad_request", "body is not UTF-8")),
        );
    };
    let mut wire: JobRequestWire = match serde_json::from_str(text) {
        Ok(wire) => wire,
        Err(e) => {
            gateway_span(&trace, "gateway.parse", parse_start, false);
            return finish_post(
                &trace,
                &echo,
                error_response(
                    400,
                    ErrorBody::new("bad_request", format!("invalid job JSON: {e}")),
                ),
            );
        }
    };
    gateway_span(&trace, "gateway.parse", parse_start, true);
    // Authenticated principal first: nothing downstream (quota, admission,
    // the solve) may see a tenant the credentials don't vouch for.
    let auth_start = trace.as_ref().map(|active| active.now_ns());
    wire.tenant = match resolve_tenant(state, request, &wire.tenant) {
        Ok(tenant) => tenant,
        Err(response) => {
            gateway_span(&trace, "gateway.auth", auth_start, false);
            state.service.logger().log_with(
                LogLevel::Warn,
                "gateway",
                "submit refused by the authenticated-principal check",
                vec![("status", response.status.to_string())],
            );
            return finish_post(&trace, &echo, response);
        }
    };
    gateway_span(&trace, "gateway.auth", auth_start, true);
    if let Some(active) = &trace {
        active.annotate(&wire.tenant, "", "");
    }
    if let Some(quota) = &state.config.quota {
        if !wire.tenant.is_empty() {
            let quota_start = trace.as_ref().map(|active| active.now_ns());
            if let Err(retry_after) = try_take_token(state, &wire.tenant, quota) {
                state.metrics.quota_rejects.inc();
                gateway_span(&trace, "gateway.quota", quota_start, false);
                state.service.logger().log_with(
                    LogLevel::Warn,
                    "gateway",
                    "submit refused by the per-tenant quota",
                    vec![
                        ("tenant", wire.tenant.clone()),
                        ("retry_after_s", retry_after.to_string()),
                    ],
                );
                return finish_post(
                    &trace,
                    &echo,
                    error_response(
                        429,
                        ErrorBody::new(
                            "quota_exceeded",
                            format!(
                                "tenant {:?} is over its request quota; retry in {retry_after}s",
                                wire.tenant
                            ),
                        ),
                    )
                    .with_retry_after(retry_after),
                );
            }
            gateway_span(&trace, "gateway.quota", quota_start, true);
        }
    }
    let job = match wire.to_request(state.config.max_job_slots) {
        Ok(job) => job,
        Err(e) => {
            return finish_post(
                &trace,
                &echo,
                error_response(422, ErrorBody::new("invalid_job", e.to_string())),
            )
        }
    };
    let wait = matches!(request.query_param("wait"), Some("1") | Some("true"));
    // The trace handle is *cloned* into the serve layer: the job's spans
    // (queue wait, solve, store persist) land in this same tree, and the
    // trace flushes when the last handle drops — after persist, off the
    // submitter's latency path.
    let dispatch_start = trace.as_ref().map(|active| active.now_ns());
    if wait {
        // Waiting mode: hand the job to the tuner pool with a completion
        // hook; the reactor renders the response when it fires. The
        // connection parks — no thread does.
        match state
            .service
            .submit_observed(job, Some(notify()), trace.clone())
        {
            Ok(handle) => {
                if let Some(active) = &trace {
                    active.span_with(
                        "gateway.dispatch",
                        None,
                        dispatch_start.unwrap_or(0),
                        active.now_ns(),
                        SpanStatus::Ok,
                        vec![("job_id", AttrValue::U64(handle.job_id))],
                    );
                }
                PostOutcome::Dispatched {
                    handle,
                    traceparent: echo,
                }
            }
            Err(e) => {
                gateway_span(&trace, "gateway.dispatch", dispatch_start, false);
                finish_post(&trace, &echo, serve_error_response(&e))
            }
        }
    } else {
        let handle = match state.service.submit_observed(job, None, trace.clone()) {
            Ok(handle) => handle,
            Err(e) => {
                gateway_span(&trace, "gateway.dispatch", dispatch_start, false);
                return finish_post(&trace, &echo, serve_error_response(&e));
            }
        };
        let job_id = handle.job_id;
        if let Some(active) = &trace {
            active.span_with(
                "gateway.dispatch",
                None,
                dispatch_start.unwrap_or(0),
                active.now_ns(),
                SpanStatus::Ok,
                vec![("job_id", AttrValue::U64(job_id))],
            );
        }
        let mut jobs = state.jobs.lock().expect("gateway job registry poisoned");
        jobs.store_pending(job_id, handle);
        drop(jobs);
        finish_post(
            &trace,
            &echo,
            json_response(
                202,
                &SubmittedBody {
                    job_id,
                    status: "pending".to_owned(),
                },
            ),
        )
    }
}

/// Renders a job outcome into the body retained for `GET /v1/jobs/{id}`.
/// Failures keep the job-status schema (pollers see `status: "failed"` with
/// the same error codes the synchronous path uses).
fn outcome_body(job_id: u64, outcome: Result<ServedPlan, ServeError>) -> JobBody {
    match outcome {
        Ok(served) => JobBody::done(&served),
        Err(e) => {
            let code = match &e {
                ServeError::Tuning(_) => "tuning_failed",
                ServeError::Admission(_) => "admission",
                ServeError::WorkerGone => "shutdown",
                ServeError::WorkerPanic { .. } => "worker_panic",
                ServeError::WorkerLost => "worker_lost",
                ServeError::Store(_) => "store",
            };
            JobBody::failed(job_id, ErrorBody::new(code, e.to_string()))
        }
    }
}

fn get_job(state: &GatewayState, job_id: u64) -> Response {
    let mut jobs = state.jobs.lock().expect("gateway job registry poisoned");
    jobs.expire_stale(Instant::now());
    match jobs.slots.get(&job_id) {
        None => error_response(
            404,
            ErrorBody::new("not_found", format!("no such job: {job_id}")),
        ),
        Some(JobSlot::Done { body, .. }) => {
            let body = body.clone();
            drop(jobs);
            json_response(200, &*body)
        }
        Some(JobSlot::Pending(handle)) => match handle.try_result() {
            None => json_response(200, &JobBody::pending(job_id)),
            Some(outcome) => {
                let body = jobs.store_done(job_id, outcome_body(job_id, outcome));
                drop(jobs);
                json_response(200, &*body)
            }
        },
    }
}

/// `DELETE /v1/jobs/{id}`: idempotent removal of a pending or retained job
/// — `204` the time it existed, `404` ever after. Lets fire-and-forget
/// clients release results deterministically instead of leaning on the
/// bounded-FIFO reaping order.
fn delete_job(state: &GatewayState, job_id: u64) -> Response {
    let deleted = state
        .jobs
        .lock()
        .expect("gateway job registry poisoned")
        .delete(job_id);
    if deleted {
        state.metrics.jobs_deleted.inc();
        Response::json(204, String::new())
    } else {
        error_response(
            404,
            ErrorBody::new("not_found", format!("no such job: {job_id}")),
        )
    }
}

/// `GET /v1/metrics`, content-negotiated: the JSON [`MetricsBody`] snapshot
/// by default (wire back-compat), the full Prometheus text exposition when
/// asked for via `?format=prometheus` or `Accept: text/plain`. An explicit
/// `format` query parameter outranks the `Accept` header.
fn get_metrics(state: &GatewayState, request: &Request) -> Response {
    let prometheus = match request.query_param("format") {
        Some(format) => format.eq_ignore_ascii_case("prometheus"),
        None => request
            .header("accept")
            .is_some_and(|accept| accept.contains("text/plain")),
    };
    if prometheus {
        Response::text(
            200,
            "text/plain; version=0.0.4",
            state.service.render_prometheus(),
        )
    } else {
        json_response(200, &MetricsBody::from_status(&state.service.status()))
    }
}

/// `GET /v1/debug/slowest`: the retained ring of slowest completed job
/// traces, slowest first, with per-stage timings in seconds.
fn get_slowest(state: &GatewayState) -> Response {
    let traces: Vec<TraceBody> = state
        .service
        .slowest_traces()
        .iter()
        .map(TraceBody::from_trace)
        .collect();
    json_response(200, &SlowestBody { traces })
}

/// `GET /v1/debug/traces`: summaries of sampled traces, newest first.
/// Optional query filters: `tenant`, `market`, `scenario`, `status`
/// (`ok`/`error`), `sampled` (`head`/`tail_slow`/`tail_error`), and
/// `min_duration_ms`. With tracing disabled the list is simply empty.
fn get_traces(state: &GatewayState, request: &Request) -> Response {
    let min_duration_ns = match request.query_param("min_duration_ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => ms.saturating_mul(1_000_000),
            Err(_) => {
                return error_response(
                    400,
                    ErrorBody::new(
                        "bad_request",
                        format!("min_duration_ms must be an integer, got {raw:?}"),
                    ),
                )
            }
        },
        None => 0,
    };
    let keep = |trace: &StoredTrace| {
        let field_matches = |param: Option<&str>, value: &str| match param {
            Some(want) => want == value,
            None => true,
        };
        field_matches(request.query_param("tenant"), &trace.tenant)
            && field_matches(request.query_param("market"), &trace.market)
            && field_matches(request.query_param("scenario"), trace.scenario)
            && field_matches(request.query_param("status"), trace.status.as_str())
            && field_matches(request.query_param("sampled"), trace.reason.as_str())
            && trace.duration_ns >= min_duration_ns
    };
    let traces: Vec<TraceSummaryBody> = match state.service.tracer() {
        Some(tracer) => tracer
            .store()
            .snapshot()
            .iter()
            .filter(|trace| keep(trace))
            .map(|trace| TraceSummaryBody::from_stored(trace))
            .collect(),
        None => Vec::new(),
    };
    json_response(200, &TracesBody { traces })
}

/// `GET /v1/debug/traces/{trace_id}`: the full span tree of one sampled
/// trace, by 32-hex-digit W3C trace id. 404 when the id is not hex or the
/// trace was never sampled (or has since been evicted from the ring).
fn get_trace(state: &GatewayState, raw_id: &str) -> Response {
    let Some(trace_id) = TraceId::from_hex(raw_id) else {
        return error_response(
            404,
            ErrorBody::new("not_found", format!("not a trace id: {raw_id:?}")),
        );
    };
    let stored = state
        .service
        .tracer()
        .and_then(|tracer| tracer.store().get(trace_id));
    match stored {
        Some(trace) => json_response(200, &TraceTreeBody::from_stored(&trace)),
        None => error_response(
            404,
            ErrorBody::new(
                "not_found",
                format!("trace {raw_id} is not in the sampled ring"),
            ),
        ),
    }
}

/// `GET /v1/debug/logs`: the structured log ring, newest first, each record
/// stamped with the trace/span active when it was emitted. Optional query
/// filters: `level` (minimum severity) and `limit` (default 256).
fn get_logs(state: &GatewayState, request: &Request) -> Response {
    let min_level = match request.query_param("level") {
        Some(raw) => match LogLevel::parse(raw) {
            Some(level) => Some(level),
            None => {
                return error_response(
                    400,
                    ErrorBody::new(
                        "bad_request",
                        format!("unknown log level {raw:?} (want debug/info/warn/error)"),
                    ),
                )
            }
        },
        None => None,
    };
    let limit = match request.query_param("limit") {
        Some(raw) => match raw.parse::<usize>() {
            Ok(limit) => limit,
            Err(_) => {
                return error_response(
                    400,
                    ErrorBody::new(
                        "bad_request",
                        format!("limit must be an integer, got {raw:?}"),
                    ),
                )
            }
        },
        None => 256,
    };
    let records: Vec<LogRecordBody> = state
        .service
        .logger()
        .snapshot(min_level, limit)
        .iter()
        .map(LogRecordBody::from_record)
        .collect();
    json_response(200, &LogsBody { records })
}

/// `GET /healthz`: the service-wide health state machine. `healthy` and
/// `degraded` answer 200 (a degraded service still serves bit-correct plans
/// — load balancers should keep routing to it), `draining` answers 503 so
/// probes take the instance out of rotation. The gateway's own drain (its
/// listener is closing) outranks whatever the service reports.
fn get_health(state: &GatewayState) -> Response {
    let draining = state.draining.load(Ordering::Acquire) || state.service.is_draining();
    let health = if draining {
        HealthState::Draining
    } else {
        state.service.health()
    };
    let status = match health {
        HealthState::Draining => 503,
        _ => 200,
    };
    json_response(
        status,
        &HealthBody {
            status: health.label().to_owned(),
            reasons: health
                .reasons()
                .iter()
                .map(|reason| reason.as_str().to_owned())
                .collect(),
            draining,
        },
    )
}

//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stand-in. No `syn`/`quote`: the item definition is parsed
//! directly from the raw token stream (attributes skipped, visibility
//! skipped, generics captured, fields and variants enumerated) and the impl
//! is emitted as source text and re-parsed.
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields, tuple structs (newtype or wider), unit
//!   structs;
//! * enums with unit variants, tuple variants and struct variants;
//! * generic type parameters (each receives a `Serialize`/`Deserialize`
//!   bound on the emitted impl).
//!
//! `#[serde(...)]` field attributes are not supported and are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the item's body looks like.
enum Body {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with the given arity.
    Tuple(usize),
    /// Unit struct.
    Unit,
    /// Enum variants.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Item {
    name: String,
    /// `<...>` contents for the impl header, bounds included, or empty.
    impl_generics: String,
    /// `<...>` contents for the type position (names only), or empty.
    type_args: String,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Serialize");
    emit_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Deserialize");
    emit_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream, trait_name: &str) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => panic!("derive({trait_name}): expected struct or enum, found {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({trait_name}): expected item name, found {other:?}"),
    };
    i += 1;

    let (impl_generics, type_args) = parse_generics(&tokens, &mut i, trait_name);

    // Skip a possible `where` clause: scan forward to the body. Parenthesised
    // or braced groups inside where clauses are not supported (none in this
    // workspace).
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if kind == "struct" {
                    break Body::Struct(parse_named_fields(&inner));
                }
                break Body::Enum(parse_variants(&inner));
            }
            Some(TokenTree::Group(g))
                if g.delimiter() == Delimiter::Parenthesis && kind == "struct" =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                break Body::Tuple(count_tuple_fields(&inner));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Body::Unit,
            Some(_) => i += 1,
            None => panic!("derive({trait_name}): item `{name}` has no body"),
        }
    };

    Item {
        name,
        impl_generics,
        type_args,
        body,
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
            if p.as_char() == '!' {
                *i += 1;
            }
        }
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("malformed attribute: {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super) / pub(in ...)
                }
            }
        }
    }
}

/// Parses `<...>` after the item name. Returns `(impl_generics, type_args)` —
/// both without the surrounding angle brackets, empty when non-generic.
fn parse_generics(tokens: &[TokenTree], i: &mut usize, trait_name: &str) -> (String, String) {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return (String::new(), String::new()),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut raw: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                raw.push(tokens[*i].clone());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    raw.push(tokens[*i].clone());
                }
            }
            Some(t) => raw.push(t.clone()),
            None => panic!("derive({trait_name}): unterminated generics"),
        }
        *i += 1;
    }

    let bound = format!("::serde::{trait_name}");
    let mut impl_parts: Vec<String> = Vec::new();
    let mut arg_parts: Vec<String> = Vec::new();
    for segment in split_top_level_commas(&raw) {
        if segment.is_empty() {
            continue;
        }
        let rendered = render_tokens(&segment);
        match &segment[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                // Lifetime parameter: keep as-is.
                let lt = format!("'{}", segment.get(1).map(token_text).unwrap_or_default());
                impl_parts.push(rendered);
                arg_parts.push(lt);
            }
            TokenTree::Ident(id) if id.to_string() == "const" => {
                let name = segment.get(1).map(token_text).unwrap_or_default();
                impl_parts.push(strip_default(&rendered));
                arg_parts.push(name);
            }
            TokenTree::Ident(id) => {
                // Type parameter, possibly with bounds and/or a default.
                let name = id.to_string();
                let without_default = strip_default(&rendered);
                if without_default.contains(':') {
                    impl_parts.push(format!("{without_default} + {bound}"));
                } else {
                    impl_parts.push(format!("{name}: {bound}"));
                }
                arg_parts.push(name);
            }
            other => panic!("derive({trait_name}): unsupported generic parameter {other:?}"),
        }
    }
    (impl_parts.join(", "), arg_parts.join(", "))
}

/// Drops a trailing ` = default` from a generic-parameter segment.
fn strip_default(segment: &str) -> String {
    match segment.find('=') {
        Some(pos) => segment[..pos].trim_end().to_owned(),
        None => segment.to_owned(),
    }
}

fn token_text(token: &TokenTree) -> String {
    token.to_string()
}

fn render_tokens(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Splits a token list at commas that sit outside `<...>` nesting (groups are
/// atomic tokens, so only angle brackets need tracking).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle = 0usize;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle = angle.saturating_sub(1),
                ',' if angle == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(token.clone());
    }
    if parts.last().map(Vec::is_empty).unwrap_or(false) {
        parts.pop();
    }
    parts
}

/// Extracts field names from the tokens inside a named-field brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level_commas(tokens)
        .into_iter()
        .filter_map(|segment| {
            let mut i = 0;
            skip_attributes(&segment, &mut i);
            skip_visibility(&segment, &mut i);
            match segment.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    split_top_level_commas(tokens)
        .into_iter()
        .filter(|segment| !segment.is_empty())
        .count()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level_commas(tokens)
        .into_iter()
        .filter_map(|segment| {
            let mut i = 0;
            skip_attributes(&segment, &mut i);
            let name = match segment.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            i += 1;
            let shape = match segment.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Tuple(count_tuple_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantShape::Struct(parse_named_fields(&inner))
                }
                // Unit variant, possibly with an explicit discriminant.
                _ => VariantShape::Unit,
            };
            Some(Variant { name, shape })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    let generics = if item.impl_generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", item.impl_generics)
    };
    let ty = if item.type_args.is_empty() {
        item.name.clone()
    } else {
        format!("{}<{}>", item.name, item.type_args)
    };
    format!("impl{generics} ::serde::{trait_name} for {ty}")
}

fn emit_serialize(item: &Item) -> String {
    let header = impl_header(item, "Serialize");
    let body = match &item.body {
        Body::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(vec![{}])", pairs.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_owned(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::serialize_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_owned(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(&item.name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!("{header} {{ fn serialize_value(&self) -> ::serde::Value {{ {body} }} }}")
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{v} => \
             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
        ),
        VariantShape::Tuple(1) => format!(
            "{enum_name}::{v}(f0) => ::serde::Value::Obj(vec![(\
             ::std::string::String::from(\"{v}\"), \
             ::serde::Serialize::serialize_value(f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                .collect();
            format!(
                "{enum_name}::{v}({}) => ::serde::Value::Obj(vec![(\
                 ::std::string::String::from(\"{v}\"), \
                 ::serde::Value::Arr(vec![{}]))]),",
                binders.join(", "),
                items.join(", ")
            )
        }
        VariantShape::Struct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => ::serde::Value::Obj(vec![(\
                 ::std::string::String::from(\"{v}\"), \
                 ::serde::Value::Obj(vec![{}]))]),",
                fields.join(", "),
                pairs.join(", ")
            )
        }
    }
}

fn emit_deserialize(item: &Item) -> String {
    let header = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::deserialize_value(value.field(\"{f}\")?)?")
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Body::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(value)?))")
        }
        Body::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::deserialize_value(&items[{idx}])?"))
                .collect();
            format!(
                "match value {{ \
                   ::serde::Value::Arr(items) if items.len() == {n} => \
                     Ok({name}({inits})), \
                   other => Err(::serde::DeError::new(format!(\
                     \"expected array of {n}, found {{}}\", other.kind()))), \
                 }}",
                inits = inits.join(", ")
            )
        }
        Body::Unit => format!(
            "match value {{ \
               ::serde::Value::Null => Ok({name}), \
               other => Err(::serde::DeError::new(format!(\
                 \"expected null, found {{}}\", other.kind()))), \
             }}"
        ),
        Body::Enum(variants) => emit_enum_deserialize(name, variants),
    };
    format!(
        "{header} {{ fn deserialize_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

fn emit_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let arm = match &v.shape {
                VariantShape::Unit => return None,
                VariantShape::Tuple(1) => format!(
                    "\"{0}\" => Ok({name}::{0}(\
                     ::serde::Deserialize::deserialize_value(inner)?)),",
                    v.name
                ),
                VariantShape::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|idx| {
                            format!("::serde::Deserialize::deserialize_value(&items[{idx}])?")
                        })
                        .collect();
                    format!(
                        "\"{0}\" => match inner {{ \
                           ::serde::Value::Arr(items) if items.len() == {n} => \
                             Ok({name}::{0}({inits})), \
                           other => Err(::serde::DeError::new(format!(\
                             \"variant {0}: expected array of {n}, found {{}}\", \
                             other.kind()))), \
                         }},",
                        v.name,
                        inits = inits.join(", ")
                    )
                }
                VariantShape::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 inner.field(\"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "\"{0}\" => Ok({name}::{0} {{ {1} }}),",
                        v.name,
                        inits.join(", ")
                    )
                }
            };
            Some(arm)
        })
        .collect();

    format!(
        "match value {{ \
           ::serde::Value::Str(s) => match s.as_str() {{ \
             {unit_arms} \
             other => Err(::serde::DeError::new(format!(\
               \"unknown {name} variant `{{other}}`\"))), \
           }}, \
           ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{ \
             let (tag, inner) = &pairs[0]; \
             match tag.as_str() {{ \
               {data_arms} \
               other => Err(::serde::DeError::new(format!(\
                 \"unknown {name} variant `{{other}}`\"))), \
             }} \
           }} \
           other => Err(::serde::DeError::new(format!(\
             \"expected {name} variant, found {{}}\", other.kind()))), \
         }}",
        unit_arms = unit_arms.join(" "),
        data_arms = data_arms.join(" ")
    )
}

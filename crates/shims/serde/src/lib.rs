//! Offline stand-in for `serde`: a self-describing [`Value`] tree, the
//! [`Serialize`] / [`Deserialize`] traits expressed against that tree, and a
//! derive macro (re-exported from `serde_derive`) that implements both traits
//! for structs and enums.
//!
//! The wire behaviour intentionally mirrors `serde_json`'s externally-tagged
//! defaults — unit enum variants serialize as strings, data-carrying variants
//! as single-key objects, newtype structs as their inner value — so code
//! written against real serde round-trips identically through the
//! `serde_json` stand-in in this workspace. Maps serialize as arrays of
//! `[key, value]` pairs, which sidesteps JSON's string-key restriction.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (also covers every unsigned value that fits).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::new(format!("missing field `{name}`"))),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a field of an object value, tolerating absence: `None` when
    /// the key is missing, `Err` when `self` is not an object. This is the
    /// hook hand-written `Deserialize` impls use for fields added to a
    /// persisted format after records without them were already written —
    /// [`Value::field`] treats a missing key as an error, which is right for
    /// mandatory fields but would reject old records wholesale.
    pub fn opt_field(&self, name: &str) -> Result<Option<&Value>, DeError> {
        match self {
            Value::Obj(pairs) => Ok(pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)),
            other => Err(DeError::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::I64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::F64(v) if v.fract() == 0.0 => Ok(v as $t),
                    ref other => Err(DeError::new(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::I64(v as i64) } else { Value::U64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::I64(v) => u64::try_from(v)
                        .ok()
                        .and_then(|v| <$t>::try_from(v).ok())
                        .ok_or_else(|| DeError::new("integer out of range")),
                    Value::U64(v) => <$t>::try_from(v)
                        .map_err(|_| DeError::new("integer out of range")),
                    Value::F64(v) if v.fract() == 0.0 && v >= 0.0 => Ok(v as $t),
                    ref other => Err(DeError::new(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| DeError::new(format!(
                        "expected number, found {}", value.kind()
                    )))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::new(format!(
                "expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Arr(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        T::deserialize_value(value).map(Arc::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Arr(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected {expected}-tuple, found array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected array, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as arrays of `[key, value]` pairs, so non-string keys
/// round-trip without JSON's object-key restriction.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        map_pairs(value)?
            .map(|pair| {
                let (k, v) = pair?;
                Ok((K::deserialize_value(k)?, V::deserialize_value(v)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Arr(
            self.iter()
                .map(|(k, v)| Value::Arr(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        map_pairs(value)?
            .map(|pair| {
                let (k, v) = pair?;
                Ok((K::deserialize_value(k)?, V::deserialize_value(v)?))
            })
            .collect()
    }
}

/// Iterates the `[key, value]` pairs of a serialized map.
#[allow(clippy::type_complexity)]
fn map_pairs(
    value: &Value,
) -> Result<impl Iterator<Item = Result<(&Value, &Value), DeError>>, DeError> {
    match value {
        Value::Arr(items) => Ok(items.iter().map(|item| match item {
            Value::Arr(pair) if pair.len() == 2 => Ok((&pair[0], &pair[1])),
            other => Err(DeError::new(format!(
                "expected [key, value] pair, found {}",
                other.kind()
            ))),
        })),
        other => Err(DeError::new(format!(
            "expected array of pairs, found {}",
            other.kind()
        ))),
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(()),
            other => Err(DeError::new(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

//! A minimal, dependency-free stand-in for the parts of the `rand` crate the
//! crowdtune workspace uses: a seedable deterministic RNG ([`rngs::StdRng`],
//! xoshiro256++ seeded via SplitMix64), the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom`] shuffling.
//!
//! The stream of numbers differs from crates.io `rand`, but every consumer in
//! this workspace only relies on determinism-per-seed, which this
//! implementation provides: the same seed always yields the same sequence.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, span)` without modulo bias (widening-multiply method).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening multiply maps the 64-bit stream onto [0, span) with a bias of
    // at most span / 2^64 — negligible for every span used in this workspace.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded through SplitMix64 as
    /// the reference implementation recommends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::{uniform_u64_below, RngCore};

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
